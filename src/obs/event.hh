/**
 * @file
 * Typed trace events for the observability layer.
 *
 * Every interesting micro-event in the pipeline — prefetch lifecycle
 * transitions, demand-miss service spans, Bundle record/replay
 * activity, metadata traffic, and front-end stalls — is recorded as
 * one fixed-size TraceEvent in a per-simulator ring (obs/event_sink).
 * The schema is deliberately flat: a kind, the cycle it happened, an
 * optional duration (for span events), a block/region address, and one
 * kind-specific argument. The Perfetto exporter (obs/perfetto_export)
 * maps kinds onto per-component tracks; see DESIGN.md Section 9.
 */

#ifndef HP_OBS_EVENT_HH
#define HP_OBS_EVENT_HH

#include <cstdint>

#include "util/types.hh"

namespace hp
{

/** What happened. Span kinds carry a nonzero duration. */
enum class EventKind : std::uint8_t
{
    // ---- Front end (track "frontend") ----
    FtqStallBtbMiss,    ///< Span: prediction stalled on a BTB miss.
    FtqStallMispredict, ///< Span: prediction stalled on a mispredict.
    FetchStall,         ///< Span: fetch waiting on an L1-I miss.
    ItlbWalk,           ///< Span: fetch waiting on an I-TLB walk.

    // ---- Back end (track "backend") ----
    BackendStall, ///< Span: commit blocked on a long-latency inst.

    // ---- L1-I demand path (track "l1i") ----
    DemandMissL2,   ///< Span: demand miss served by the L2.
    DemandMissLlc,  ///< Span: demand miss served by the LLC.
    DemandMissMem,  ///< Span: demand miss served by DRAM.
    DemandMissMshr, ///< Span: demand merged into an in-flight fill.

    // ---- Prefetch lifecycle (tracks "fdip" / "ext") ----
    PrefetchIssued,        ///< Fill initiated for a prefetch.
    PrefetchRedundant,     ///< Target already resident or in flight.
    PrefetchDropped,       ///< No MSHR available; request discarded.
    PrefetchSquashed,      ///< Request queue full; squashed pre-issue.
    PrefetchFill,          ///< Prefetch fill landed in the L1-I.
    PrefetchLate,          ///< Demand merged into the in-flight fill.
    PrefetchEvictedUnused, ///< Evicted from the L1-I without use.

    // ---- Bundle record/replay (tracks "record" / "replay") ----
    BundleBoundary, ///< Tagged call/return committed; arg = Bundle ID.
    BundleRecord,   ///< Span: one Bundle record (open to close).
    CompressionFlush, ///< Region left the Compression Buffer.
    SegmentAllocated, ///< Metadata Buffer segment allocated.
    ReplayStart,      ///< Replay began; arg = chain segments.
    SegmentFetch,     ///< Span: metadata read of one replay segment.

    // ---- Metadata traffic (track "metadata") ----
    MetadataRead,  ///< Span: metadata read; arg = bytes, addr = 1 if DRAM.
    MetadataWrite, ///< Posted metadata write; arg = bytes.

    kCount
};

constexpr unsigned kNumEventKinds =
    static_cast<unsigned>(EventKind::kCount);

/** One recorded event (32 bytes). */
struct TraceEvent
{
    Cycle cycle = 0;         ///< When the event (or span) started.
    Addr addr = 0;           ///< Block/region address when meaningful.
    std::uint64_t arg = 0;   ///< Kind-specific (bytes, Bundle ID, ...).
    std::uint32_t dur = 0;   ///< Span length in cycles (0 = instant).
    EventKind kind = EventKind::PrefetchIssued;
    std::uint8_t origin = 0; ///< Origin enum value for prefetch kinds.
    std::uint16_t pad = 0;
};

static_assert(sizeof(TraceEvent) == 32, "TraceEvent should stay small");

/** Human-readable event name (Perfetto slice names). */
const char *eventKindName(EventKind kind);

/** True when the kind is rendered as a duration (span) event. */
bool eventKindIsSpan(EventKind kind);

} // namespace hp

#endif // HP_OBS_EVENT_HH
