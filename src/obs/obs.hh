/**
 * @file
 * Process-wide observability configuration and output collection.
 *
 * Observability is opt-in and process-global, like the run-report log:
 * it is configured once (from the HP_TRACE_JSON / HP_TIMESERIES /
 * HP_MISS_ATTR / HP_TS_INTERVAL / HP_TRACE_CAP environment variables,
 * or from the `--trace-json` / `--timeseries` bench flags) before any
 * simulation starts. Every Simulator consults obs::config() at
 * construction; when something is enabled it wires an EventSink, the
 * miss-attribution tracker, and/or an IntervalSampler into its
 * components, and flushes what it collected into obs::collector() when
 * the run finishes. The collector is thread-safe (executor workers
 * flush concurrently) and writes the combined Perfetto trace and
 * time-series CSV once, at scope exit of the bench harness.
 *
 * Everything here is observational: enabling it never changes
 * simulated behaviour, and with everything disabled (the default) the
 * simulator's outputs are bit-identical and its hot paths pay at most
 * a few null checks (enforced by the obs_overhead_check ctest).
 */

#ifndef HP_OBS_OBS_HH
#define HP_OBS_OBS_HH

#include <cstdint>
#include <string>
#include <vector>

#include "obs/event.hh"
#include "obs/interval_sampler.hh"

namespace hp::obs
{

struct ObsConfig
{
    /** Perfetto/Chrome trace-event JSON output path ("" = off). */
    std::string tracePath;

    /** Interval time-series CSV output path ("" = off). */
    std::string timeseriesPath;

    /** Attribute every L1-I demand miss to a cause class. Forced on
     *  whenever tracing or time-series sampling is on. */
    bool attribution = false;

    /** Instructions per time-series sample. */
    std::uint64_t intervalInsts = 100'000;

    /** Per-run event-ring capacity (oldest events drop beyond it). */
    std::size_t traceCapacity = 1 << 20;

    bool traceEnabled() const { return !tracePath.empty(); }
    bool timeseriesEnabled() const { return !timeseriesPath.empty(); }
    bool
    attributionEnabled() const
    {
        return attribution || traceEnabled() || timeseriesEnabled();
    }
    bool
    anyEnabled() const
    {
        return attributionEnabled();
    }
};

/**
 * The mutable global config. First access seeds it from the
 * environment; bench flags overwrite fields afterwards. Must not be
 * mutated once simulations are running (the obs tests reset it
 * between scenarios, which is safe because they run serially).
 */
ObsConfig &config();

/** One finished run's observability payload. */
struct RunCapture
{
    std::string label; ///< "<workload>/<prefetcher>".
    std::vector<TraceEvent> events;
    std::uint64_t eventsDropped = 0;
    std::uint64_t tsInterval = 0;
    std::vector<SampleRow> samples;
};

/** Thread-safe sink for finished runs plus the output writers. */
class Collector
{
  public:
    /** Appends one run's capture (assigns its trace pid). */
    static void addRun(RunCapture capture);

    static std::size_t runCount();

    /**
     * Writes the configured outputs (Perfetto JSON and/or CSV) over
     * every collected run. Idempotent; a second call after new runs
     * arrived rewrites the files. Fatal on I/O failure.
     */
    static void writeOutputs();

    /** Drops collected runs (tests). */
    static void clear();
};

/** Writes the interval time-series CSV for @p runs to @p path. */
void writeTimeseriesCsv(const std::string &path,
                        const std::vector<RunCapture> &runs);

} // namespace hp::obs

#endif // HP_OBS_OBS_HH
