/**
 * @file
 * Interval time-series sampling: every N committed instructions, the
 * sampler reads a small set of always-registered counters from the
 * stats registry and records the interval's deltas. The resulting rows
 * — IPC, L1-I miss rate, DRAM and metadata bandwidth per interval —
 * are written as one CSV across every run of the process (see
 * obs/obs.hh), so benches can plot behaviour over time instead of
 * end-of-run aggregates.
 */

#ifndef HP_OBS_INTERVAL_SAMPLER_HH
#define HP_OBS_INTERVAL_SAMPLER_HH

#include <cstdint>
#include <vector>

#include "stats/registry.hh"

namespace hp
{

/** One interval's cumulative position and deltas. */
struct SampleRow
{
    bool measuring = false;       ///< Warmup or measurement phase.
    std::uint64_t insts = 0;      ///< Cumulative committed insts.
    std::uint64_t cycles = 0;     ///< Cumulative cycles.
    std::uint64_t dInsts = 0;
    std::uint64_t dCycles = 0;
    std::uint64_t dL1iAccesses = 0;
    std::uint64_t dL1iMisses = 0;
    std::uint64_t dDramBytes = 0;     ///< Demand + prefetch fills.
    std::uint64_t dMetadataBytes = 0; ///< HP metadata read + write.
};

class IntervalSampler
{
  public:
    /**
     * @param registry Source of counters (must outlive the sampler;
     *                 the sampled paths are registered by the
     *                 simulator core and hierarchy for every config).
     * @param interval Instructions per sample (>= 1).
     */
    IntervalSampler(const StatsRegistry &registry,
                    std::uint64_t interval);

    /**
     * Cheap per-cycle gate: samples when @p committed crossed the next
     * interval boundary. @p measuring tags the row's phase.
     */
    void
    tick(std::uint64_t committed, bool measuring)
    {
        if (committed >= nextAt_)
            sample(committed, measuring);
    }

    /** Forces a final sample at the current position (run end). */
    void finalSample(std::uint64_t committed, bool measuring);

    const std::vector<SampleRow> &rows() const { return rows_; }
    std::vector<SampleRow> takeRows() { return std::move(rows_); }
    std::uint64_t interval() const { return interval_; }

  private:
    void sample(std::uint64_t committed, bool measuring);

    /** Reads the cumulative values backing a row's deltas. */
    struct Cursor
    {
        std::uint64_t cycles = 0;
        std::uint64_t l1iAccesses = 0;
        std::uint64_t l1iMisses = 0;
        std::uint64_t dramBytes = 0;
        std::uint64_t metadataBytes = 0;
    };
    Cursor read() const;

    const StatsRegistry &registry_;
    std::uint64_t interval_;
    std::uint64_t nextAt_;
    std::uint64_t lastInsts_ = 0;
    Cursor last_{};
    std::vector<SampleRow> rows_;
};

} // namespace hp

#endif // HP_OBS_INTERVAL_SAMPLER_HH
