#include "obs/miss_attribution.hh"

namespace hp
{

const char *
missCauseName(MissCause cause)
{
    switch (cause) {
      case MissCause::NeverPrefetched: return "never_prefetched";
      case MissCause::PrefetchLate: return "prefetch_late";
      case MissCause::PrefetchedEvicted: return "prefetched_evicted";
      case MissCause::DemandEvicted: return "demand_evicted";
      case MissCause::ResourceContention: return "resource_contention";
      case MissCause::WrongPath: return "wrong_path";
      case MissCause::kCount: break;
    }
    return "?";
}

void
MissAttribution::onPrefetchAccepted(Addr block)
{
    // An accepted prefetch supersedes a stale drop record: the block
    // now has a live fill in flight, so a subsequent miss is "late",
    // not "contention".
    auto it = lines_.find(block);
    if (it != lines_.end())
        it->second.prefetchDropped = false;
}

void
MissAttribution::onPrefetchDropped(Addr block)
{
    lines_[block].prefetchDropped = true;
}

void
MissAttribution::onEvicted(Addr block, bool prefetch_origin, bool used)
{
    LineState &line = lines_[block];
    if (prefetch_origin && !used)
        line.prefetchEvicted = true;
    else
        line.demandEvicted = true;
}

MissCause
MissAttribution::classify(const LineState &line) const
{
    // Priority order: a prefetched-then-evicted episode is the most
    // specific story (the prefetcher did its part), MSHR contention
    // next, then plain capacity re-misses; anything else was simply
    // never prefetched.
    if (line.prefetchEvicted)
        return MissCause::PrefetchedEvicted;
    if (line.prefetchDropped)
        return MissCause::ResourceContention;
    if (line.demandEvicted)
        return MissCause::DemandEvicted;
    return MissCause::NeverPrefetched;
}

void
MissAttribution::account(MissCause cause, Cycle latency)
{
    unsigned idx = static_cast<unsigned>(cause);
    ++counters_.count[idx];
    counters_.latencyCycles[idx] += latency;
}

void
MissAttribution::onMissMerge(Addr block, bool prefetch_origin, Cycle wait)
{
    if (prefetch_origin) {
        account(MissCause::PrefetchLate, wait);
        return;
    }
    // Merging into a demand fill: this is the same miss episode as the
    // allocation that created the MSHR; repeat its cause.
    auto it = lines_.find(block);
    MissCause cause = it != lines_.end()
        ? it->second.lastCause : MissCause::NeverPrefetched;
    account(cause, wait);
}

void
MissAttribution::onMissRetry(Addr block)
{
    (void)block;
    // The MSHR file itself is the bottleneck; the retry costs a cycle.
    account(MissCause::ResourceContention, 1);
}

void
MissAttribution::onMissFill(Addr block, Cycle latency)
{
    LineState &line = lines_[block];
    MissCause cause = classify(line);
    account(cause, latency);
    // Consume the episode: the history described the path to *this*
    // miss; the block's next story starts from its new residency.
    line.prefetchEvicted = false;
    line.demandEvicted = false;
    line.prefetchDropped = false;
    line.lastCause = cause;
}

void
MissAttribution::registerStats(StatsRegistry &reg,
                               const std::string &prefix) const
{
    const Counters &c = counters_;
    for (unsigned i = 0; i < kNumMissCauses; ++i) {
        MissCause cause = static_cast<MissCause>(i);
        reg.add(prefix + "." + missCauseName(cause),
                [&c, i] { return c.count[i]; });
        reg.add(prefix + "." + std::string(missCauseName(cause)) +
                    "_latency_cycles",
                [&c, i] { return c.latencyCycles[i]; });
    }
}

} // namespace hp
