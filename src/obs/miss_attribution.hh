/**
 * @file
 * Per-line prefetch-lifecycle tracking and L1-I miss attribution.
 *
 * Every L1-I demand miss is attributed to exactly one cause class, so
 * the `missAttribution.*` registry subtree always partitions
 * `l1i.demand_misses` (the invariant the obs tests enforce):
 *
 *  - never_prefetched:   no prefetch targeted the block since it was
 *                        last resident (cold and conflict misses the
 *                        prefetchers never saw coming);
 *  - prefetch_late:      the demand merged into an in-flight prefetch
 *                        (the prefetch was right but not early enough);
 *  - prefetched_evicted: a prefetch filled the block, but it was
 *                        evicted before its first demand use;
 *  - demand_evicted:     the block was demand-resident (or a used
 *                        prefetch) before being evicted — a capacity /
 *                        conflict re-miss;
 *  - resource_contention: MSHR pressure — either the miss itself hit a
 *                        full MSHR file (retry path) or an earlier
 *                        prefetch for the block was dropped for lack
 *                        of an MSHR (demand and metadata traffic
 *                        crowding out the prefetcher);
 *  - wrong_path:         reserved; structurally zero in this model
 *                        because the simulated front end never fetches
 *                        wrong-path blocks (see DESIGN.md Section 5).
 *
 * The tracker keeps a small per-block history (flags + the class of
 * the last miss episode) in a hash map; the cost is confined to miss
 * and prefetch paths and only paid when attribution is enabled. The
 * counter block itself always exists so the registry's shape does not
 * depend on whether observability is on.
 */

#ifndef HP_OBS_MISS_ATTRIBUTION_HH
#define HP_OBS_MISS_ATTRIBUTION_HH

#include <array>
#include <cstdint>
#include <string>
#include <unordered_map>

#include "stats/registry.hh"
#include "util/serialize.hh"
#include "util/types.hh"

namespace hp
{

/** Cause classes; kept in registry/report order. */
enum class MissCause : std::uint8_t
{
    NeverPrefetched,
    PrefetchLate,
    PrefetchedEvicted,
    DemandEvicted,
    ResourceContention,
    WrongPath,
    kCount
};

constexpr unsigned kNumMissCauses =
    static_cast<unsigned>(MissCause::kCount);

/** Registry/report name of a cause class ("never_prefetched", ...). */
const char *missCauseName(MissCause cause);

class MissAttribution
{
  public:
    /** Per-class miss counts and summed service latencies. */
    struct Counters
    {
        std::array<std::uint64_t, kNumMissCauses> count{};
        std::array<std::uint64_t, kNumMissCauses> latencyCycles{};

        std::uint64_t
        total() const
        {
            std::uint64_t sum = 0;
            for (std::uint64_t c : count)
                sum += c;
            return sum;
        }

        template <class Ar>
        void
        serializeState(Ar &ar)
        {
            for (std::uint64_t &v : count)
                ar.value(v);
            for (std::uint64_t &v : latencyCycles)
                ar.value(v);
        }
    };

    bool enabled() const { return enabled_; }
    void setEnabled(bool enabled) { enabled_ = enabled; }

    // ---- Lifecycle hooks (called from the cache hierarchy) ----

    /** A prefetch was accepted into an MSHR for @p block. */
    void onPrefetchAccepted(Addr block);

    /** A prefetch for @p block was dropped (no MSHR). */
    void onPrefetchDropped(Addr block);

    /** @p block left the L1-I. @p prefetch_origin: brought in by a
     *  prefetcher; @p used: had served at least one demand access. */
    void onEvicted(Addr block, bool prefetch_origin, bool used);

    // ---- Demand-miss classification (exactly one per L1-I miss) ----

    /** Miss merged into an in-flight fill. @p prefetch_origin is the
     *  MSHR's originator; @p wait the remaining fill latency. */
    void onMissMerge(Addr block, bool prefetch_origin, Cycle wait);

    /** Miss bounced off a full MSHR file (will be retried). */
    void onMissRetry(Addr block);

    /** Miss that allocated a fresh demand MSHR; @p latency is the
     *  service latency of the level that answers it. */
    void onMissFill(Addr block, Cycle latency);

    const Counters &counters() const { return counters_; }

    /** Zeroes the counters at the warmup boundary (per-line history
     *  persists, like cache contents). */
    void resetCounters() { counters_ = Counters{}; }

    /** Registers the counters under "<prefix>.<class>[_latency_cycles]".
     *  Registered unconditionally so the registry's path set does not
     *  depend on whether attribution is enabled. */
    void registerStats(StatsRegistry &reg,
                       const std::string &prefix) const;

    /** Tracked-line count (tests/diagnostics). */
    std::size_t trackedLines() const { return lines_.size(); }

    /** Serializes per-line state + counters (checkpointing; only
     *  called when attribution is enabled — see Simulator). */
    template <class Ar>
    void
    serializeState(Ar &ar)
    {
        io(ar, lines_);
        counters_.serializeState(ar);
    }

  private:
    /** Per-block history since the block was last resident. */
    struct LineState
    {
        bool prefetchEvicted = false; ///< Prefetched, evicted unused.
        bool demandEvicted = false;   ///< Was resident and used.
        bool prefetchDropped = false; ///< Prefetch lost to MSHR pressure.
        MissCause lastCause = MissCause::NeverPrefetched;

        template <class Ar>
        void
        serializeState(Ar &ar)
        {
            ar.value(prefetchEvicted);
            ar.value(demandEvicted);
            ar.value(prefetchDropped);
            ar.value(lastCause);
        }
    };

    void account(MissCause cause, Cycle latency);
    MissCause classify(const LineState &line) const;

    bool enabled_ = false;
    std::unordered_map<Addr, LineState> lines_;
    Counters counters_;
};

} // namespace hp

#endif // HP_OBS_MISS_ATTRIBUTION_HH
