/**
 * @file
 * Chrome/Perfetto trace-event JSON export.
 *
 * Emits the legacy Chrome trace-event format (a `traceEvents` array of
 * "X"/"i"/"M" records), which both chrome://tracing and the Perfetto
 * UI (ui.perfetto.dev) load directly. Each simulation run becomes one
 * process (pid = run index, named "<workload>/<prefetcher> #n") with
 * one thread per component track — frontend, backend, l1i, fdip, ext,
 * record, replay, metadata — and one simulated cycle maps to one
 * microsecond of trace time. See DESIGN.md Section 9 for the schema.
 */

#ifndef HP_OBS_PERFETTO_EXPORT_HH
#define HP_OBS_PERFETTO_EXPORT_HH

#include <string>
#include <vector>

#include "obs/obs.hh"

namespace hp::obs
{

/** Track (tid) an event kind renders on; 1-based, stable. */
unsigned eventTrack(EventKind kind, std::uint8_t origin);

/** Display name of a track id. */
const char *trackName(unsigned track);

/** Number of defined tracks. */
unsigned numTracks();

/**
 * Writes the Perfetto-loadable JSON for @p runs to @p path.
 * Fatal on I/O failure (short writes included).
 */
void writePerfettoJson(const std::string &path,
                       const std::vector<RunCapture> &runs);

/** Renders the document to a string (tests). */
std::string perfettoJson(const std::vector<RunCapture> &runs);

} // namespace hp::obs

#endif // HP_OBS_PERFETTO_EXPORT_HH
