/**
 * @file
 * The per-simulator event recorder: a bounded ring of TraceEvents.
 *
 * The record path is built to vanish from the simulation's cost model
 * when observability is off. Components hold a plain `EventSink *`
 * that stays nullptr unless tracing was requested, and every emit site
 * goes through HP_EMIT, which compiles to a single null check (or to
 * nothing at all when the library is built with -DHP_NO_OBS). When the
 * ring fills, the oldest events are dropped and counted, so a long run
 * keeps its most recent window — usually the interesting part — at a
 * fixed memory bound.
 */

#ifndef HP_OBS_EVENT_SINK_HH
#define HP_OBS_EVENT_SINK_HH

#include <cstdint>
#include <vector>

#include "obs/event.hh"
#include "util/ring_buffer.hh"

namespace hp
{

class EventSink
{
  public:
    explicit EventSink(std::size_t capacity = 1 << 20)
        : cap_(capacity ? capacity : 1), ring_(cap_)
    {
    }

    /** Records one event; drops (and counts) the oldest when full. */
    void
    emit(EventKind kind, Cycle cycle, Addr addr = 0,
         std::uint32_t dur = 0, std::uint64_t arg = 0,
         std::uint8_t origin = 0)
    {
        if (ring_.size() >= cap_) {
            ring_.pop_front();
            ++dropped_;
        }
        TraceEvent ev;
        ev.cycle = cycle;
        ev.addr = addr;
        ev.arg = arg;
        ev.dur = dur;
        ev.kind = kind;
        ev.origin = origin;
        ring_.push_back(ev);
        ++emitted_;
    }

    /** Span helper: [start, end) in cycles. */
    void
    emitSpan(EventKind kind, Cycle start, Cycle end, Addr addr = 0,
             std::uint64_t arg = 0, std::uint8_t origin = 0)
    {
        std::uint32_t dur = end > start
            ? static_cast<std::uint32_t>(end - start) : 0;
        emit(kind, start, addr, dur, arg, origin);
    }

    std::size_t size() const { return ring_.size(); }
    std::size_t capacity() const { return cap_; }
    std::uint64_t emitted() const { return emitted_; }
    std::uint64_t dropped() const { return dropped_; }

    /** Copies the retained events, oldest first. */
    std::vector<TraceEvent>
    drain()
    {
        std::vector<TraceEvent> out;
        out.reserve(ring_.size());
        for (std::size_t i = 0; i < ring_.size(); ++i)
            out.push_back(ring_[i]);
        ring_.clear();
        return out;
    }

  private:
    std::size_t cap_;
    RingBuffer<TraceEvent> ring_;
    std::uint64_t emitted_ = 0;
    std::uint64_t dropped_ = 0;
};

/**
 * Emit-site macro: `HP_EMIT(obs_, emit(...))`. A null sink (the
 * default) costs one predictable branch; building with -DHP_NO_OBS
 * removes the record path from the binary entirely.
 */
#ifdef HP_NO_OBS
#define HP_EMIT(sink, call)                                               \
    do {                                                                  \
    } while (0)
#else
#define HP_EMIT(sink, call)                                               \
    do {                                                                  \
        if (sink)                                                         \
            (sink)->call;                                                 \
    } while (0)
#endif

} // namespace hp

#endif // HP_OBS_EVENT_SINK_HH
