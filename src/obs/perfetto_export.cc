#include "obs/perfetto_export.hh"

#include <cinttypes>
#include <cstdio>
#include <sstream>

#include "util/logging.hh"

namespace hp
{

const char *
eventKindName(EventKind kind)
{
    switch (kind) {
      case EventKind::FtqStallBtbMiss: return "ftq stall (btb miss)";
      case EventKind::FtqStallMispredict:
        return "ftq stall (mispredict)";
      case EventKind::FetchStall: return "fetch stall";
      case EventKind::ItlbWalk: return "itlb walk";
      case EventKind::BackendStall: return "backend stall";
      case EventKind::DemandMissL2: return "demand miss (l2)";
      case EventKind::DemandMissLlc: return "demand miss (llc)";
      case EventKind::DemandMissMem: return "demand miss (mem)";
      case EventKind::DemandMissMshr: return "demand miss (mshr)";
      case EventKind::PrefetchIssued: return "prefetch issued";
      case EventKind::PrefetchRedundant: return "prefetch redundant";
      case EventKind::PrefetchDropped: return "prefetch dropped";
      case EventKind::PrefetchSquashed: return "prefetch squashed";
      case EventKind::PrefetchFill: return "prefetch fill";
      case EventKind::PrefetchLate: return "prefetch late";
      case EventKind::PrefetchEvictedUnused:
        return "prefetch evicted unused";
      case EventKind::BundleBoundary: return "bundle boundary";
      case EventKind::BundleRecord: return "bundle record";
      case EventKind::CompressionFlush: return "compression flush";
      case EventKind::SegmentAllocated: return "segment allocated";
      case EventKind::ReplayStart: return "replay start";
      case EventKind::SegmentFetch: return "segment fetch";
      case EventKind::MetadataRead: return "metadata read";
      case EventKind::MetadataWrite: return "metadata write";
      case EventKind::kCount: break;
    }
    return "?";
}

bool
eventKindIsSpan(EventKind kind)
{
    switch (kind) {
      case EventKind::FtqStallBtbMiss:
      case EventKind::FtqStallMispredict:
      case EventKind::FetchStall:
      case EventKind::ItlbWalk:
      case EventKind::BackendStall:
      case EventKind::DemandMissL2:
      case EventKind::DemandMissLlc:
      case EventKind::DemandMissMem:
      case EventKind::DemandMissMshr:
      case EventKind::BundleRecord:
      case EventKind::SegmentFetch:
      case EventKind::MetadataRead:
        return true;
      default:
        return false;
    }
}

} // namespace hp

namespace hp::obs
{

namespace
{

enum Track : unsigned
{
    kTrackFrontend = 1,
    kTrackBackend,
    kTrackL1i,
    kTrackFdip,
    kTrackExt,
    kTrackRecord,
    kTrackReplay,
    kTrackMetadata,
    kTrackMax = kTrackMetadata,
};

/** Origin::Fdip has enum value 1 (cache/cache.hh). */
constexpr std::uint8_t kOriginFdip = 1;

} // namespace

unsigned
eventTrack(EventKind kind, std::uint8_t origin)
{
    switch (kind) {
      case EventKind::FtqStallBtbMiss:
      case EventKind::FtqStallMispredict:
      case EventKind::FetchStall:
      case EventKind::ItlbWalk:
        return kTrackFrontend;
      case EventKind::BackendStall:
        return kTrackBackend;
      case EventKind::DemandMissL2:
      case EventKind::DemandMissLlc:
      case EventKind::DemandMissMem:
      case EventKind::DemandMissMshr:
      case EventKind::PrefetchFill:
      case EventKind::PrefetchLate:
      case EventKind::PrefetchEvictedUnused:
        return kTrackL1i;
      case EventKind::PrefetchIssued:
      case EventKind::PrefetchRedundant:
      case EventKind::PrefetchDropped:
      case EventKind::PrefetchSquashed:
        return origin == kOriginFdip ? kTrackFdip : kTrackExt;
      case EventKind::BundleBoundary:
      case EventKind::BundleRecord:
      case EventKind::CompressionFlush:
      case EventKind::SegmentAllocated:
        return kTrackRecord;
      case EventKind::ReplayStart:
      case EventKind::SegmentFetch:
        return kTrackReplay;
      case EventKind::MetadataRead:
      case EventKind::MetadataWrite:
        return kTrackMetadata;
      case EventKind::kCount:
        break;
    }
    return kTrackFrontend;
}

const char *
trackName(unsigned track)
{
    switch (track) {
      case kTrackFrontend: return "frontend";
      case kTrackBackend: return "backend";
      case kTrackL1i: return "l1i";
      case kTrackFdip: return "fdip";
      case kTrackExt: return "ext";
      case kTrackRecord: return "record";
      case kTrackReplay: return "replay";
      case kTrackMetadata: return "metadata";
    }
    return "?";
}

unsigned
numTracks()
{
    return kTrackMax;
}

namespace
{

void
jsonEscapeInto(std::ostringstream &out, const std::string &s)
{
    for (char c : s) {
        if (c == '"' || c == '\\')
            out << '\\';
        out << c;
    }
}

void
appendMeta(std::ostringstream &out, bool &first, unsigned pid,
           unsigned tid, const char *meta_name, const std::string &name)
{
    out << (first ? "" : ",") << "\n    {\"name\":\"" << meta_name
        << "\",\"ph\":\"M\",\"pid\":" << pid;
    if (tid != 0)
        out << ",\"tid\":" << tid;
    out << ",\"args\":{\"name\":\"";
    jsonEscapeInto(out, name);
    out << "\"}}";
    first = false;
}

void
appendEvent(std::ostringstream &out, bool &first, unsigned pid,
            const TraceEvent &ev)
{
    const unsigned tid = eventTrack(ev.kind, ev.origin);
    const bool span = eventKindIsSpan(ev.kind);
    out << (first ? "" : ",") << "\n    {\"name\":\""
        << eventKindName(ev.kind) << "\",\"ph\":\""
        << (span ? "X" : "i") << "\",\"ts\":" << ev.cycle;
    if (span)
        out << ",\"dur\":" << ev.dur;
    else
        out << ",\"s\":\"t\"";
    out << ",\"pid\":" << pid << ",\"tid\":" << tid << ",\"args\":{";
    char addr_buf[32];
    std::snprintf(addr_buf, sizeof(addr_buf), "0x%" PRIx64,
                  static_cast<std::uint64_t>(ev.addr));
    out << "\"addr\":\"" << addr_buf << "\",\"arg\":" << ev.arg << "}}";
    first = false;
}

} // namespace

std::string
perfettoJson(const std::vector<RunCapture> &runs)
{
    std::ostringstream out;
    out << "{\n  \"displayTimeUnit\": \"ms\",\n  \"traceEvents\": [";
    bool first = true;
    unsigned pid = 0;
    for (const RunCapture &run : runs) {
        std::ostringstream pname;
        pname << run.label << " #" << pid;
        if (run.eventsDropped > 0)
            pname << " (dropped " << run.eventsDropped
                  << " oldest events)";
        appendMeta(out, first, pid, 0, "process_name", pname.str());
        bool used[kTrackMax + 1] = {};
        for (const TraceEvent &ev : run.events)
            used[eventTrack(ev.kind, ev.origin)] = true;
        for (unsigned t = 1; t <= kTrackMax; ++t) {
            if (used[t])
                appendMeta(out, first, pid, t, "thread_name",
                           trackName(t));
        }
        for (const TraceEvent &ev : run.events)
            appendEvent(out, first, pid, ev);
        ++pid;
    }
    out << "\n  ]\n}\n";
    return out.str();
}

void
writePerfettoJson(const std::string &path,
                  const std::vector<RunCapture> &runs)
{
    const std::string doc = perfettoJson(runs);
    std::FILE *f = std::fopen(path.c_str(), "w");
    fatalIf(f == nullptr, "cannot open trace JSON for writing: " + path);
    const std::size_t n = std::fwrite(doc.data(), 1, doc.size(), f);
    if (n != doc.size()) {
        std::fclose(f);
        fatal("short write to trace JSON: " + path);
    }
    fatalIf(std::fclose(f) != 0, "error closing trace JSON: " + path);
}

} // namespace hp::obs
