#include "obs/interval_sampler.hh"

namespace hp
{

IntervalSampler::IntervalSampler(const StatsRegistry &registry,
                                 std::uint64_t interval)
    : registry_(registry),
      interval_(interval ? interval : 1),
      nextAt_(interval ? interval : 1)
{
}

IntervalSampler::Cursor
IntervalSampler::read() const
{
    Cursor c;
    c.cycles = registry_.value("sim.cycles");
    c.l1iAccesses = registry_.value("l1i.demand_accesses");
    c.l1iMisses = registry_.value("l1i.demand_misses");
    c.dramBytes = registry_.value("dram.demand_bytes") +
                  registry_.value("dram.fdip_bytes") +
                  registry_.value("dram.ext_bytes");
    c.metadataBytes = registry_.value("dram.metadata_read_bytes") +
                      registry_.value("dram.metadata_write_bytes");
    return c;
}

void
IntervalSampler::sample(std::uint64_t committed, bool measuring)
{
    Cursor now = read();
    SampleRow row;
    row.measuring = measuring;
    row.insts = committed;
    row.cycles = now.cycles;
    row.dInsts = committed - lastInsts_;
    row.dCycles = now.cycles - last_.cycles;
    row.dL1iAccesses = now.l1iAccesses - last_.l1iAccesses;
    row.dL1iMisses = now.l1iMisses - last_.l1iMisses;
    row.dDramBytes = now.dramBytes - last_.dramBytes;
    row.dMetadataBytes = now.metadataBytes - last_.metadataBytes;
    rows_.push_back(row);

    lastInsts_ = committed;
    last_ = now;
    // Skip boundaries the run jumped over (wide commit groups).
    while (nextAt_ <= committed)
        nextAt_ += interval_;
}

void
IntervalSampler::finalSample(std::uint64_t committed, bool measuring)
{
    if (committed > lastInsts_)
        sample(committed, measuring);
}

} // namespace hp
