#include "obs/obs.hh"

#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <sstream>

#include "obs/perfetto_export.hh"
#include "util/logging.hh"

namespace hp::obs
{

namespace
{

std::uint64_t
envU64(const char *name, std::uint64_t fallback)
{
    const char *v = std::getenv(name);
    if (v == nullptr || *v == '\0')
        return fallback;
    char *end = nullptr;
    const unsigned long long parsed = std::strtoull(v, &end, 10);
    fatalIf(end == v || *end != '\0',
            std::string(name) + " must be a positive integer, got: " + v);
    return parsed;
}

ObsConfig
configFromEnv()
{
    ObsConfig cfg;
    if (const char *v = std::getenv("HP_TRACE_JSON"))
        cfg.tracePath = v;
    if (const char *v = std::getenv("HP_TIMESERIES"))
        cfg.timeseriesPath = v;
    if (const char *v = std::getenv("HP_MISS_ATTR"))
        cfg.attribution = (*v != '\0' && *v != '0');
    cfg.intervalInsts = envU64("HP_TS_INTERVAL", cfg.intervalInsts);
    if (cfg.intervalInsts == 0)
        cfg.intervalInsts = 1;
    cfg.traceCapacity = static_cast<std::size_t>(
        envU64("HP_TRACE_CAP", cfg.traceCapacity));
    if (cfg.traceCapacity == 0)
        cfg.traceCapacity = 1;
    return cfg;
}

std::mutex &
collectorMutex()
{
    static std::mutex m;
    return m;
}

std::vector<RunCapture> &
collectedRuns()
{
    static std::vector<RunCapture> runs;
    return runs;
}

} // namespace

ObsConfig &
config()
{
    static ObsConfig cfg = configFromEnv();
    return cfg;
}

void
Collector::addRun(RunCapture capture)
{
    std::lock_guard<std::mutex> lock(collectorMutex());
    collectedRuns().push_back(std::move(capture));
}

std::size_t
Collector::runCount()
{
    std::lock_guard<std::mutex> lock(collectorMutex());
    return collectedRuns().size();
}

void
Collector::writeOutputs()
{
    std::vector<RunCapture> runs;
    {
        std::lock_guard<std::mutex> lock(collectorMutex());
        runs = collectedRuns();
    }
    if (runs.empty())
        return;
    const ObsConfig &cfg = config();
    if (cfg.traceEnabled())
        writePerfettoJson(cfg.tracePath, runs);
    if (cfg.timeseriesEnabled())
        writeTimeseriesCsv(cfg.timeseriesPath, runs);
}

void
Collector::clear()
{
    std::lock_guard<std::mutex> lock(collectorMutex());
    collectedRuns().clear();
}

void
writeTimeseriesCsv(const std::string &path,
                   const std::vector<RunCapture> &runs)
{
    std::ostringstream out;
    out << "run,label,interval_insts,phase,insts,cycles,d_insts,"
           "d_cycles,d_l1i_accesses,d_l1i_misses,d_dram_bytes,"
           "d_metadata_bytes,ipc,l1i_mpki\n";
    unsigned run_idx = 0;
    for (const RunCapture &run : runs) {
        for (const SampleRow &row : run.samples) {
            out << run_idx << ',' << run.label << ','
                << run.tsInterval << ','
                << (row.measuring ? "measure" : "warmup") << ','
                << row.insts << ',' << row.cycles << ',' << row.dInsts
                << ',' << row.dCycles << ',' << row.dL1iAccesses << ','
                << row.dL1iMisses << ',' << row.dDramBytes << ','
                << row.dMetadataBytes << ',';
            char buf[32];
            const double ipc = row.dCycles
                ? static_cast<double>(row.dInsts) / row.dCycles : 0.0;
            const double mpki = row.dInsts
                ? 1000.0 * row.dL1iMisses / row.dInsts : 0.0;
            std::snprintf(buf, sizeof(buf), "%.4f", ipc);
            out << buf << ',';
            std::snprintf(buf, sizeof(buf), "%.4f", mpki);
            out << buf << '\n';
        }
        ++run_idx;
    }
    const std::string doc = out.str();
    std::FILE *f = std::fopen(path.c_str(), "w");
    fatalIf(f == nullptr,
            "cannot open time-series CSV for writing: " + path);
    const std::size_t n = std::fwrite(doc.data(), 1, doc.size(), f);
    if (n != doc.size()) {
        std::fclose(f);
        fatal("short write to time-series CSV: " + path);
    }
    fatalIf(std::fclose(f) != 0,
            "error closing time-series CSV: " + path);
}

} // namespace hp::obs
