#include "trace/trace.hh"

#include <cstring>

#include "util/logging.hh"

namespace hp
{

namespace
{

/** On-disk record layout (24 bytes, little-endian). */
struct PackedRecord
{
    std::uint64_t pc;
    std::uint64_t target;
    std::uint32_t func;
    std::uint8_t kind;
    std::uint8_t flags; // bit0 taken, bit1 tagged, bits 2-3 marker
    std::uint16_t markerArg;
};

static_assert(sizeof(PackedRecord) == 24, "trace record must be 24 bytes");

PackedRecord
pack(const DynInst &inst)
{
    PackedRecord rec;
    rec.pc = inst.pc;
    rec.target = inst.target;
    rec.func = inst.func;
    rec.kind = static_cast<std::uint8_t>(inst.kind);
    rec.flags = (inst.taken ? 1 : 0) | (inst.tagged ? 2 : 0) |
                (static_cast<std::uint8_t>(inst.marker) << 2);
    rec.markerArg = inst.markerArg;
    return rec;
}

DynInst
unpack(const PackedRecord &rec)
{
    DynInst inst;
    inst.pc = rec.pc;
    inst.target = rec.target;
    inst.func = rec.func;
    inst.kind = static_cast<InstKind>(rec.kind);
    inst.taken = rec.flags & 1;
    inst.tagged = rec.flags & 2;
    inst.marker = static_cast<StreamMarker>((rec.flags >> 2) & 3);
    inst.markerArg = rec.markerArg;
    return inst;
}

struct Header
{
    std::uint64_t magic;
    std::uint32_t version;
    std::uint32_t reserved;
    std::uint64_t count;
};

static_assert(sizeof(Header) == 24, "trace header must be 24 bytes");

} // namespace

TraceWriter::TraceWriter(const std::string &path) : path_(path)
{
    file_ = std::fopen(path.c_str(), "wb");
    fatalIf(file_ == nullptr, "cannot open trace for writing: " + path);
    writeHeader();
}

TraceWriter::~TraceWriter()
{
    if (!closed_)
        close();
}

void
TraceWriter::writeHeader()
{
    Header header{kTraceMagic, kTraceVersion, 0, count_};
    fatalIf(std::fseek(file_, 0, SEEK_SET) != 0,
            "trace header seek failed: " + path_);
    std::size_t n = std::fwrite(&header, sizeof(header), 1, file_);
    fatalIf(n != 1, "trace header write failed: " + path_);
    fatalIf(std::fseek(file_, 0, SEEK_END) != 0,
            "trace header seek failed: " + path_);
}

void
TraceWriter::write(const DynInst &inst)
{
    panicIf(closed_, "write to closed TraceWriter");
    PackedRecord rec = pack(inst);
    std::size_t n = std::fwrite(&rec, sizeof(rec), 1, file_);
    // A short fwrite (n == 0 here: one whole record or nothing lands
    // in the stdio buffer) is how a full disk first shows up.
    fatalIf(n != 1, "trace record write failed (disk full?): " + path_);
    ++count_;
}

void
TraceWriter::close()
{
    if (closed_)
        return;
    writeHeader();
    // Buffered record bytes only hit the file here; check the flush
    // explicitly so close() cannot silently drop the tail of a trace.
    fatalIf(std::fflush(file_) != 0,
            "trace flush failed (disk full?): " + path_);
    fatalIf(std::fclose(file_) != 0, "trace close failed: " + path_);
    file_ = nullptr;
    closed_ = true;
}

TraceReader::TraceReader(const std::string &path)
{
    file_ = std::fopen(path.c_str(), "rb");
    fatalIf(file_ == nullptr, "cannot open trace for reading: " + path);
    Header header{};
    std::size_t n = std::fread(&header, sizeof(header), 1, file_);
    fatalIf(n != 1, "trace header read failed: " + path);
    fatalIf(header.magic != kTraceMagic, "not a trace file: " + path);
    fatalIf(header.version != kTraceVersion,
            "unsupported trace version in " + path);
    total_ = header.count;
}

TraceReader::~TraceReader()
{
    if (file_)
        std::fclose(file_);
}

bool
TraceReader::next(DynInst &inst)
{
    if (consumed_ >= total_)
        return false;
    PackedRecord rec;
    std::size_t n = std::fread(&rec, sizeof(rec), 1, file_);
    if (n != 1)
        return false;
    inst = unpack(rec);
    ++consumed_;
    return true;
}

} // namespace hp
