/**
 * @file
 * Binary instruction trace format: capture a workload's dynamic
 * instruction stream to a file and replay it later through the same
 * InstStream interface the live engine implements. Useful for sharing
 * deterministic inputs and for the trace-inspection example tool.
 *
 * Format: a 24-byte header (magic, version, instruction count) followed
 * by packed 24-byte records.
 */

#ifndef HP_TRACE_TRACE_HH
#define HP_TRACE_TRACE_HH

#include <cstdio>
#include <memory>
#include <string>

#include "isa/inst.hh"

namespace hp
{

/** Magic number identifying a trace file ("HPTRACE1"). */
constexpr std::uint64_t kTraceMagic = 0x3145434152545048ULL;

/** Trace format version. */
constexpr std::uint32_t kTraceVersion = 1;

/** Writes DynInst records to a file. */
class TraceWriter
{
  public:
    /** Opens @p path for writing; fatals on failure. */
    explicit TraceWriter(const std::string &path);

    ~TraceWriter();

    TraceWriter(const TraceWriter &) = delete;
    TraceWriter &operator=(const TraceWriter &) = delete;

    /** Appends one instruction; fatals (with the path) on a short or
     *  failed write — e.g. a full disk — instead of silently producing
     *  a truncated trace. */
    void write(const DynInst &inst);

    /** Flushes buffers, finalizes the header, and closes the file;
     *  fatals (with the path) when the flush or close reports an I/O
     *  error, so a trace that "wrote fine" is actually on disk. */
    void close();

    std::uint64_t written() const { return count_; }

  private:
    void writeHeader();

    std::FILE *file_ = nullptr;
    std::string path_;
    std::uint64_t count_ = 0;
    bool closed_ = false;
};

/** Reads a trace file back as an InstStream. */
class TraceReader : public InstStream
{
  public:
    /** Opens @p path; fatals on bad magic/version. */
    explicit TraceReader(const std::string &path);

    ~TraceReader() override;

    TraceReader(const TraceReader &) = delete;
    TraceReader &operator=(const TraceReader &) = delete;

    bool next(DynInst &inst) override;

    /** Total instructions recorded in the header. */
    std::uint64_t total() const { return total_; }

    std::uint64_t consumed() const { return consumed_; }

  private:
    std::FILE *file_ = nullptr;
    std::uint64_t total_ = 0;
    std::uint64_t consumed_ = 0;
};

} // namespace hp

#endif // HP_TRACE_TRACE_HH
