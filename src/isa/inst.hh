/**
 * @file
 * Dynamic instruction records produced by the workload engine (or a
 * trace reader) and consumed by the timing simulator.
 *
 * The ISA model is deliberately minimal: fixed 4-byte instructions and
 * the six control-flow classes the front end cares about. Call/return
 * instructions carry the Bundle entry tag bit that the paper encodes in
 * reserved bits of the call/ret formats (Section 5.2).
 */

#ifndef HP_ISA_INST_HH
#define HP_ISA_INST_HH

#include <cstdint>

#include "util/types.hh"

namespace hp
{

/** Control-flow class of an instruction. */
enum class InstKind : std::uint8_t
{
    Plain,        ///< Non-control-flow instruction.
    CondBranch,   ///< Conditional direct branch.
    Jump,         ///< Unconditional direct branch.
    IndirectJump, ///< Unconditional indirect branch.
    Call,         ///< Direct call.
    IndirectCall, ///< Indirect call.
    Return,       ///< Function return.
};

/** Marker events interleaved with the instruction stream by workloads. */
enum class StreamMarker : std::uint8_t
{
    None,         ///< Plain instruction.
    RequestBegin, ///< First instruction of a request.
    StageBegin,   ///< First instruction of a pipeline stage.
};

/** Returns true for instruction kinds that redirect fetch when taken. */
constexpr bool
isControl(InstKind kind)
{
    return kind != InstKind::Plain;
}

/** Returns true for direct or indirect calls. */
constexpr bool
isCall(InstKind kind)
{
    return kind == InstKind::Call || kind == InstKind::IndirectCall;
}

/** Returns true for kinds whose target is not encoded in the inst. */
constexpr bool
isIndirect(InstKind kind)
{
    return kind == InstKind::IndirectJump || kind == InstKind::IndirectCall
        || kind == InstKind::Return;
}

/**
 * One retired (architectural-path) instruction.
 *
 * The engine emits the *actual* execution path; predictors inside the
 * simulator decide how much of that path the front end would have been
 * able to anticipate.
 */
struct DynInst
{
    /** Instruction address. */
    Addr pc = 0;

    /** Actual target when this is a taken control transfer, else 0. */
    Addr target = 0;

    /** Static function containing the instruction (probe/debug aid). */
    std::uint32_t func = 0;

    /** Auxiliary marker payload (stage index for StageBegin). */
    std::uint16_t markerArg = 0;

    InstKind kind = InstKind::Plain;

    /** Actual direction for CondBranch; true for other transfers. */
    bool taken = false;

    /** Bundle entry tag (valid on Call/IndirectCall/Return only). */
    bool tagged = false;

    StreamMarker marker = StreamMarker::None;

    template <class Ar>
    void
    serializeState(Ar &ar)
    {
        ar.value(pc);
        ar.value(target);
        ar.value(func);
        ar.value(markerArg);
        ar.value(kind);
        ar.value(taken);
        ar.value(tagged);
        ar.value(marker);
    }

    /** Address of the next sequential instruction. */
    Addr nextPc() const { return pc + kInstBytes; }

    /** Address control flow actually continues at after this inst. */
    Addr
    nextFetchPc() const
    {
        return (isControl(kind) && taken) ? target : nextPc();
    }
};

/**
 * Pull interface for instruction streams. Implemented by the workload
 * engine and by the trace reader, so the simulator is agnostic to the
 * source of instructions.
 */
class InstStream
{
  public:
    virtual ~InstStream() = default;

    /**
     * Produces the next instruction.
     * @return false when the stream is exhausted.
     */
    virtual bool next(DynInst &inst) = 0;
};

} // namespace hp

#endif // HP_ISA_INST_HH
