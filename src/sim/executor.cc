#include "sim/executor.hh"

#include <cstdlib>

namespace hp
{

unsigned
Executor::defaultThreads()
{
    if (const char *env = std::getenv("HP_JOBS")) {
        char *end = nullptr;
        unsigned long jobs = std::strtoul(env, &end, 10);
        if (end != env && *end == '\0' && jobs > 0 && jobs <= 1024)
            return unsigned(jobs);
    }
    unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? hw : 1;
}

Executor &
Executor::global()
{
    static Executor executor;
    return executor;
}

Executor::Executor(unsigned threads)
{
    if (threads == 0)
        threads = defaultThreads();
    workers_.reserve(threads);
    for (unsigned i = 0; i < threads; ++i)
        workers_.emplace_back([this] { workerLoop(); });
}

Executor::~Executor()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stop_ = true;
    }
    cv_.notify_all();
    for (std::thread &worker : workers_)
        worker.join();
}

void
Executor::workerLoop()
{
    while (true) {
        std::packaged_task<SimMetrics()> task;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
            if (queue_.empty())
                return; // stop_ and drained
            task = std::move(queue_.front());
            queue_.pop_front();
        }
        task();
    }
}

std::shared_future<SimMetrics>
Executor::submit(const SimConfig &config)
{
    std::packaged_task<SimMetrics()> task;
    std::shared_future<SimMetrics> future =
        detail::acquireSimulation(config, &task);
    if (task.valid()) {
        {
            std::lock_guard<std::mutex> lock(mutex_);
            queue_.push_back(std::move(task));
        }
        cv_.notify_one();
    }
    return future;
}

PairFutures
Executor::submitPair(const SimConfig &config)
{
    PairFutures futures;
    futures.run = submit(config);
    futures.base = submit(fdipBaseline(config));
    return futures;
}

std::vector<SimMetrics>
Executor::runAll(const std::vector<SimConfig> &configs)
{
    std::vector<std::shared_future<SimMetrics>> futures;
    futures.reserve(configs.size());
    for (const SimConfig &config : configs)
        futures.push_back(submit(config));

    std::vector<SimMetrics> results;
    results.reserve(futures.size());
    for (const auto &future : futures)
        results.push_back(future.get());
    return results;
}

std::vector<RunPair>
Executor::runPairs(const std::vector<SimConfig> &configs)
{
    std::vector<PairFutures> futures;
    futures.reserve(configs.size());
    for (const SimConfig &config : configs)
        futures.push_back(submitPair(config));

    std::vector<RunPair> results;
    results.reserve(futures.size());
    for (const PairFutures &future : futures)
        results.push_back(future.collect());
    return results;
}

std::vector<RunPair>
Executor::runGrid(const std::vector<std::string> &workloads,
                  const std::vector<PrefetcherKind> &kinds,
                  const SimConfig &base)
{
    std::vector<SimConfig> configs;
    configs.reserve(workloads.size() * kinds.size());
    for (const std::string &workload : workloads) {
        for (PrefetcherKind kind : kinds) {
            SimConfig config = base;
            config.workload = workload;
            config.prefetcher = kind;
            if (kind == PrefetcherKind::Hierarchical)
                config.hier.trackBundleStats = true;
            configs.push_back(std::move(config));
        }
    }
    return runPairs(configs);
}

} // namespace hp
