#include "sim/footprint_probe.hh"

#include <algorithm>
#include <unordered_set>

#include "util/hash.hh"

namespace hp
{

FootprintProbe::FootprintProbe(TriggerKind kind, unsigned sample_period)
    : kind_(kind), samplePeriod_(sample_period ? sample_period : 1)
{}

void
FootprintProbe::finishCollector(Collector &c)
{
    auto prev_it = previous_.find(c.key);
    if (prev_it != previous_.end()) {
        const std::vector<Addr> &prev = prev_it->second;
        for (std::size_t s = 0; s < kFootprintSizes.size(); ++s) {
            unsigned k = kFootprintSizes[s];
            if (prev.size() < k / 2 || c.blocks.size() < k / 2)
                continue; // footprints too short to be meaningful
            std::unordered_set<Addr> a(
                prev.begin(),
                prev.begin() + std::min<std::size_t>(k, prev.size()));
            std::size_t inter = 0;
            std::size_t b_count =
                std::min<std::size_t>(k, c.blocks.size());
            for (std::size_t i = 0; i < b_count; ++i)
                inter += a.count(c.blocks[i]);
            std::size_t uni = a.size() + b_count - inter;
            if (uni > 0)
                jaccard_[s].sample(double(inter) / double(uni));
        }
    }

    if (previous_.size() >= kMaxTracked)
        previous_.erase(previous_.begin());
    previous_[c.key] = std::move(c.blocks);
}

void
FootprintProbe::trigger(std::uint64_t key)
{
    ++triggers_;
    if (triggers_ % samplePeriod_ != 0)
        return;
    if (open_.size() >= kMaxOpen) {
        finishCollector(open_.front());
        open_.pop_front();
    }
    Collector c;
    c.key = key;
    c.blocks.reserve(kFootprintSizes.back());
    open_.push_back(std::move(c));
}

void
FootprintProbe::onCommit(const DynInst &inst)
{
    Addr block = blockAlign(inst.pc);

    // Feed open collectors on block transitions only.
    if (block != lastBlock_) {
        lastBlock_ = block;
        for (auto it = open_.begin(); it != open_.end();) {
            Collector &c = *it;
            if (c.seen.insert(block).second) {
                c.blocks.push_back(block);
                if (c.blocks.size() >= kFootprintSizes.back()) {
                    finishCollector(c);
                    it = open_.erase(it);
                    continue;
                }
            }
            ++it;
        }

        // MANA/EIP-style region trigger. The trigger identity is the
        // prefetcher's *table index*: a 4K-entry structure, so the key
        // is folded to 12 bits — distinct regions alias exactly as
        // they do in the real hardware.
        if (kind_ == TriggerKind::BlockAddress) {
            Addr region = block & ~Addr(8 * kBlockBytes - 1);
            if (region != lastRegion_) {
                lastRegion_ = region;
                trigger(foldTo(mix64(region), 12));
            }
        }
    }

    if (isCall(inst.kind)) {
        callStack_.push_back(inst.nextPc());
        if (callStack_.size() > 64)
            callStack_.erase(callStack_.begin());
        if (kind_ == TriggerKind::Signature) {
            std::uint64_t sig = 0x9e3779b97f4a7c15ULL;
            unsigned depth = 0;
            for (auto it = callStack_.rbegin();
                 it != callStack_.rend() && depth < 3; ++it, ++depth) {
                sig = hashCombine(sig, *it);
            }
            // EFetch indexes a 4K-entry callee predictor: the trigger
            // identity is the 12-bit table index, so unrelated
            // contexts alias as in the real design.
            trigger(foldTo(sig, 12));
        }
    } else if (inst.kind == InstKind::Return && !callStack_.empty()) {
        callStack_.pop_back();
    }

    if (kind_ == TriggerKind::Bundle && inst.tagged &&
        (isCall(inst.kind) || inst.kind == InstKind::Return)) {
        // A Bundle's footprint ends where the next Bundle begins:
        // close every open collector at the boundary (Table 4's
        // per-execution footprint definition), then open the new one
        // keyed by the 24-bit Bundle ID.
        for (auto &c : open_)
            finishCollector(c);
        open_.clear();
        trigger(foldTo(mix64(inst.nextFetchPc()), 24));
    }
}

void
FootprintProbe::finalize()
{
    for (Collector &c : open_)
        finishCollector(c);
    open_.clear();
}

double
FootprintProbe::meanJaccard(std::size_t size_index) const
{
    return jaccard_[size_index].mean();
}

} // namespace hp
