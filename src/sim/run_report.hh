/**
 * @file
 * Machine-readable run reports.
 *
 * When enabled, every simulation the ExperimentRunner completes is
 * recorded as (config, metrics); documentJson() renders the collected
 * runs as one JSON document — the registry's full measurement-phase
 * counter snapshot per run plus a few derived values. Bench binaries
 * enable this through hpbench::JsonReportScope (`--json` flag or the
 * HP_STATS_JSON environment variable) without touching their text
 * output. Schema: DESIGN.md "Machine-readable run reports".
 */

#ifndef HP_SIM_RUN_REPORT_HH
#define HP_SIM_RUN_REPORT_HH

#include <cstddef>
#include <string>

#include "sim/config.hh"
#include "sim/metrics.hh"

namespace hp
{

/**
 * Process-wide log of finished simulation runs. Recording is off by
 * default so the hot path of report-less invocations is unchanged;
 * record() is called from executor worker threads and is thread-safe.
 */
class RunReportLog
{
  public:
    /** Starts recording every simulation completed from now on. */
    static void enable();

    static bool enabled();

    /** Records one finished run (no-op unless enabled). */
    static void record(const SimConfig &config, const SimMetrics &m);

    /** Number of runs recorded so far. */
    static std::size_t size();

    /** The full JSON document over every recorded run. */
    static std::string documentJson();

    /** Drops all recorded runs (testing aid; leaves enabled state). */
    static void clear();
};

} // namespace hp

#endif // HP_SIM_RUN_REPORT_HH
