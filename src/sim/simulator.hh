/**
 * @file
 * The cycle-level front-end simulator.
 *
 * The modeled core has a decoupled FDIP front end: a branch-prediction
 * unit walks ahead of fetch along the program path, pushing fetch
 * blocks into the FTQ and prefetching them into the L1-I. Run-ahead is
 * structurally gated — a BTB miss on a taken branch stalls prediction
 * until the branch is fetched and decoded, and a direction/indirect/RAS
 * mispredict stalls it until the branch commits — reproducing FDIP's
 * real limitations without simulating wrong-path fetch (see DESIGN.md).
 * Fetch consumes FTQ blocks through the I-TLB and L1-I; the back end is
 * an idealized commit stage with a calibrated long-latency stall
 * component.
 */

#ifndef HP_SIM_SIMULATOR_HH
#define HP_SIM_SIMULATOR_HH

#include <memory>

#include "cache/reuse_distance.hh"
#include "frontend/btb.hh"
#include "obs/obs.hh"
#include "frontend/cond_predictor.hh"
#include "frontend/indirect_predictor.hh"
#include "frontend/ras.hh"
#include "sim/config.hh"
#include "sim/metrics.hh"
#include "stats/histogram.hh"
#include "stats/registry.hh"
#include "util/ring_buffer.hh"
#include "workload/program_builder.hh"
#include "workload/request_engine.hh"

namespace hp
{

/** Creates the configured prefetcher (nullptr for None/PerfectL1I). */
std::unique_ptr<Prefetcher> makePrefetcher(const SimConfig &config,
                                           MetadataMemory &memory);

/** One single-core simulation. */
class Simulator
{
  public:
    explicit Simulator(const SimConfig &config);

    /** Flushes any pending observability capture (see flushObs). */
    ~Simulator();

    /**
     * Runs warmup + measurement and returns the measured metrics.
     * A Simulator instance is single-use. Equivalent to runWarmup()
     * followed by finishRun().
     */
    SimMetrics run();

    /**
     * Runs the warmup phase only, stopping at the exact measurement
     * boundary: after the commit that crossed warmupInsts, before
     * beginMeasurement() and the boundary iteration's cycle advance.
     * The stopped state is what Checkpoint::capture serializes.
     */
    void runWarmup();

    /**
     * Runs the measurement phase from the warmup boundary and returns
     * the metrics. Valid after runWarmup() on this instance or after
     * a checkpoint restore into a freshly constructed instance; both
     * produce bit-identical results to a plain run().
     */
    SimMetrics finishRun();

    /**
     * Serializes (StateWriter) or restores (StateLoader) the complete
     * microarchitectural state at the warmup boundary: caches, I-TLB,
     * BTB, predictors, RAS, request engine, prefetcher, and the
     * FTQ/window front-end state. Restore mutates components in place
     * — the stats registry holds reader closures over their fields.
     */
    template <class Ar> void serializeState(Ar &ar);

    /** The built application (for inspection by examples/tests). */
    const BuiltApp &app() const { return *app_; }

    /**
     * The unified stats registry: every component's counters under
     * dotted paths (l1i.*, btb.*, cond.*, indirect.*, ras.*, itlb.*,
     * fdip.*, ext.*, dram.*, engine.*, sim.*, and "pf."/"hier."
     * prefixes for the prefetcher under test). Snapshot/delta over
     * this registry is the warmup machinery; run() also embeds the
     * measurement-phase delta into SimMetrics::stats.
     */
    const StatsRegistry &stats() const { return registry_; }

  private:
    struct WinInst
    {
        DynInst inst;
        Cycle fetchCycle = kNotFetched;

        static constexpr Cycle kNotFetched = ~Cycle(0);

        template <class Ar>
        void
        serializeState(Ar &ar)
        {
            inst.serializeState(ar);
            ar.value(fetchCycle);
        }
    };

    struct FtqEntry
    {
        Addr block = 0;
        std::uint64_t startSeq = 0;
        std::uint64_t endSeq = 0; // exclusive
        bool translated = false;
        bool accessed = false;

        template <class Ar>
        void
        serializeState(Ar &ar)
        {
            ar.value(block);
            ar.value(startSeq);
            ar.value(endSeq);
            ar.value(translated);
            ar.value(accessed);
        }
    };

    enum class FeBlock : std::uint8_t
    {
        None,
        BtbMiss,    ///< Resolved at fetch + decode of the branch.
        Mispredict, ///< Resolved at commit of the branch.
    };

    /** Pulls instructions from the engine until @p up_to_seq exists. */
    void ensureWindow(std::uint64_t up_to_seq);

    /** Window access with an inline bounds check; the common case
     *  (instruction already materialized) costs one compare. */
    WinInst &
    at(std::uint64_t seq)
    {
        if (seq - windowBase_ >= window_.size())
            ensureWindow(seq);
        return window_[seq - windowBase_];
    }

    /** Unchecked access for spans covered by a prior ensureWindow. */
    WinInst &atKnown(std::uint64_t seq)
    {
        return window_[seq - windowBase_];
    }

    void stepPredict();
    void stepExtPrefetch();
    void stepFetch();
    void stepCommit();
    void beginMeasurement();

    /** One iteration of the main loop (every per-cycle step). */
    void stepCycle(bool has_pf);

    /** Registers every component's counters (constructor helper). */
    void registerStats();

    /**
     * Hands the collected trace events and time-series rows to the
     * process-global obs::Collector (once; no-op when observability
     * is off). Called from finishRun and, as a fallback for runs torn
     * down early, from the destructor.
     */
    void flushObs();

    SimConfig cfg_;
    const AppProfile *profile_;
    std::shared_ptr<const BuiltApp> app_;
    std::unique_ptr<RequestEngine> engine_;

    CacheHierarchy hier_;
    Btb btb_;
    CondPredictor condPred_;
    IndirectPredictor indirectPred_;
    Ras ras_;
    std::unique_ptr<Prefetcher> pf_;
    HierarchicalPrefetcher *hierPf_ = nullptr;

    bool perfect_ = false;

    Cycle cycle_ = 0;

    RingBuffer<WinInst> window_{512};
    std::uint64_t windowBase_ = 0; ///< Seq of window_.front().
    std::uint64_t bpSeq_ = 0;      ///< Next inst for the BP unit.
    std::uint64_t fetchSeq_ = 0;   ///< Next inst for fetch.

    RingBuffer<FtqEntry> ftq_{64};

    FeBlock feBlock_ = FeBlock::None;
    std::uint64_t feBlockSeq_ = 0;
    Cycle feResumeAt_ = 0;
    bool feResumeScheduled_ = false;
    /** Cycle the current front-end block began (trace spans only;
     *  deliberately not checkpointed — it never affects simulation). */
    Cycle feBlockStart_ = 0;

    Cycle fetchStalledUntil_ = 0;
    Cycle commitBlockedUntil_ = 0;

    std::uint64_t committed_ = 0;
    bool measuring_ = false;

    // Reuse-distance probe (Figure 12).
    ReuseDistanceTracker reuse_;
    std::unique_ptr<Histogram> reuseHist_;
    double longRangeThreshold_ = 0.0;

    // Measurement-phase counters. Components keep plain fields the
    // hot path increments; the registry holds reader closures over
    // them, and the warmup boundary is one generic snapshot instead
    // of a hand-maintained shadow field per counter.
    SimMetrics metrics_;
    std::uint64_t rasMispredicts_ = 0;
    StatsRegistry registry_;
    StatsSnapshot warmupSnapshot_;

    // Observability (null/absent unless requested via obs::config()).
    std::unique_ptr<EventSink> obs_;
    std::unique_ptr<IntervalSampler> sampler_;
    bool obsFlushed_ = false;
};

} // namespace hp

#endif // HP_SIM_SIMULATOR_HH
