#include "sim/simulator.hh"

#include <algorithm>

#include "util/hash.hh"
#include "util/logging.hh"
#include "util/serialize.hh"

namespace hp
{

const char *
prefetcherName(PrefetcherKind kind)
{
    switch (kind) {
      case PrefetcherKind::None: return "FDIP";
      case PrefetcherKind::EFetch: return "EFetch";
      case PrefetcherKind::Mana: return "MANA";
      case PrefetcherKind::Eip: return "EIP";
      case PrefetcherKind::Rdip: return "RDIP";
      case PrefetcherKind::Hierarchical: return "Hierarchical";
      case PrefetcherKind::PerfectL1I: return "PerfectL1I";
    }
    return "?";
}

std::unique_ptr<Prefetcher>
makePrefetcher(const SimConfig &config, MetadataMemory &memory)
{
    switch (config.prefetcher) {
      case PrefetcherKind::EFetch:
        return std::make_unique<EFetch>(config.efetch);
      case PrefetcherKind::Mana:
        return std::make_unique<Mana>(config.mana);
      case PrefetcherKind::Eip:
        return std::make_unique<Eip>(config.eip);
      case PrefetcherKind::Rdip:
        return std::make_unique<Rdip>(config.rdip);
      case PrefetcherKind::Hierarchical:
        return std::make_unique<HierarchicalPrefetcher>(config.hier,
                                                        memory);
      case PrefetcherKind::None:
      case PrefetcherKind::PerfectL1I:
        return nullptr;
    }
    return nullptr;
}

Simulator::Simulator(const SimConfig &config)
    : cfg_(config),
      profile_(&appProfile(config.workload)),
      app_(ProgramBuilder::cached(*profile_)),
      engine_(std::make_unique<RequestEngine>(app_, *profile_)),
      hier_(config.mem),
      btb_(config.btbEntries, config.btbWays),
      ras_(config.rasDepth)
{
    perfect_ = cfg_.prefetcher == PrefetcherKind::PerfectL1I;
    pf_ = makePrefetcher(cfg_, hier_);
    hierPf_ = dynamic_cast<HierarchicalPrefetcher *>(pf_.get());
    if (cfg_.trackReuse)
        reuseHist_ = std::make_unique<Histogram>(64.0, 4096);
    registerStats();

    // Observability wiring (after registerStats: the sampler reads
    // registered paths). All of this stays inert — null sink, disabled
    // attribution, no sampler — unless obs::config() asks for it.
    const obs::ObsConfig &ocfg = obs::config();
    if (ocfg.traceEnabled()) {
        obs_ = std::make_unique<EventSink>(ocfg.traceCapacity);
        hier_.setEventSink(obs_.get());
        if (pf_)
            pf_->setEventSink(obs_.get());
    }
    if (ocfg.attributionEnabled())
        hier_.enableMissAttribution();
    if (ocfg.timeseriesEnabled()) {
        sampler_ = std::make_unique<IntervalSampler>(
            registry_, ocfg.intervalInsts);
    }
}

Simulator::~Simulator()
{
    // Fallback for runs torn down before finishRun (or without one):
    // hand over whatever was captured so the trace is not lost.
    if ((obs_ && obs_->emitted() > 0) ||
        (sampler_ && !sampler_->rows().empty())) {
        flushObs();
    }
}

void
Simulator::flushObs()
{
    if (obsFlushed_)
        return;
    const obs::ObsConfig &ocfg = obs::config();
    if (!ocfg.traceEnabled() && !ocfg.timeseriesEnabled())
        return;
    obsFlushed_ = true;

    obs::RunCapture cap;
    cap.label = cfg_.workload + "/" + prefetcherName(cfg_.prefetcher);
    if (obs_) {
        cap.eventsDropped = obs_->dropped();
        cap.events = obs_->drain();
    }
    if (sampler_) {
        cap.tsInterval = sampler_->interval();
        cap.samples = sampler_->takeRows();
    }
    obs::Collector::addRun(std::move(cap));
}

void
Simulator::registerStats()
{
    registry_.add("sim.cycles", [this] { return cycle_; });
    registry_.add("sim.instructions",
                  [this] { return metrics_.instructions; });
    registry_.add("sim.committed", [this] { return committed_; });
    registry_.add("sim.fetch_stall_cycles",
                  [this] { return metrics_.fetchStallCycles; });
    registry_.add("sim.backend_stall_cycles",
                  [this] { return metrics_.backendStallCycles; });
    registry_.add("sim.ras_mispredicts",
                  [this] { return rasMispredicts_; });
    registry_.add("sim.long_range_accesses",
                  [this] { return metrics_.longRangeAccesses; });
    registry_.add("sim.long_range_l2_misses",
                  [this] { return metrics_.longRangeL2Misses; });

    hier_.registerStats(registry_);
    btb_.registerStats(registry_, "btb");
    condPred_.registerStats(registry_, "cond");
    indirectPred_.registerStats(registry_, "indirect");
    ras_.registerStats(registry_, "ras");
    engine_->registerStats(registry_, "engine");
    // The Hierarchical Prefetcher claims its paper scope "hier";
    // every other prefetcher registers under the generic "pf".
    if (pf_)
        pf_->registerStats(registry_, hierPf_ ? "hier" : "pf");
}

void
Simulator::ensureWindow(std::uint64_t up_to_seq)
{
    while (windowBase_ + window_.size() <= up_to_seq) {
        WinInst wi;
        bool ok = engine_->next(wi.inst);
        panicIf(!ok, "workload stream ended unexpectedly");
        window_.push_back(std::move(wi));
    }
}

void
Simulator::stepPredict()
{
    for (unsigned pushes = 0; pushes < cfg_.bpBlocksPerCycle; ++pushes) {
        if (feBlock_ != FeBlock::None)
            return;
        if (ftq_.size() >= cfg_.ftqEntries)
            return;

        // Build one fetch block: consecutive instructions in the same
        // cache block, ending at a taken control transfer. at() is
        // inline — the materialized-already fast path is one compare,
        // and instructions are pulled from the engine exactly on
        // first touch (pull-ahead is an observable engine stat, so it
        // must not change).
        std::uint64_t seq = bpSeq_;
        Addr block = blockAlign(at(seq).inst.pc);
        std::uint64_t end = seq;
        FeBlock blocker = FeBlock::None;

        while (true) {
            const DynInst &inst = at(end).inst;
            if (blockAlign(inst.pc) != block)
                break;
            ++end;

            if (!isControl(inst.kind))
                continue;

            switch (inst.kind) {
              case InstKind::CondBranch: {
                bool predicted = condPred_.predict(inst.pc);
                condPred_.update(inst.pc, inst.taken);
                if (predicted != inst.taken) {
                    blocker = FeBlock::Mispredict;
                } else if (inst.taken) {
                    if (!btb_.lookup(inst.pc))
                        blocker = FeBlock::BtbMiss;
                }
                break;
              }
              case InstKind::Jump:
              case InstKind::Call: {
                if (inst.kind == InstKind::Call)
                    ras_.push(inst.nextPc());
                if (!btb_.lookup(inst.pc))
                    blocker = FeBlock::BtbMiss;
                break;
              }
              case InstKind::IndirectJump:
              case InstKind::IndirectCall: {
                if (inst.kind == InstKind::IndirectCall)
                    ras_.push(inst.nextPc());
                Addr predicted = indirectPred_.predict(inst.pc);
                indirectPred_.update(inst.pc, inst.target);
                if (predicted != inst.target)
                    blocker = FeBlock::Mispredict;
                break;
              }
              case InstKind::Return: {
                Addr predicted = ras_.pop();
                if (predicted != inst.target) {
                    blocker = FeBlock::Mispredict;
                    ++rasMispredicts_;
                }
                break;
              }
              default:
                break;
            }

            // Any taken transfer ends the fetch block; a blocker stalls
            // the prediction unit at this instruction.
            if (blocker != FeBlock::None || (inst.taken))
                break;
        }

        FtqEntry entry;
        entry.block = block;
        entry.startSeq = seq;
        entry.endSeq = end;
        ftq_.push_back(entry);
        bpSeq_ = end;

        // FDIP: prefetch the new FTQ block.
        if (!perfect_) {
            hier_.prefetch(block, Origin::Fdip, cycle_);
            if (pf_)
                pf_->onFdipPrefetch(block, cycle_);
        }

        if (blocker != FeBlock::None) {
            feBlock_ = blocker;
            feBlockSeq_ = end - 1;
            feResumeScheduled_ = false;
            feBlockStart_ = cycle_;
            return;
        }
    }
}

void
Simulator::stepExtPrefetch()
{
    // Caller guarantees pf_ != nullptr (check hoisted out of the
    // per-cycle loop). The Hierarchical tick is called through the
    // concrete final type so it devirtualizes; tick is a no-op for
    // the other prefetchers.
    if (hierPf_)
        hierPf_->tick(cycle_);
    else
        pf_->tick(cycle_);
    Addr block;
    for (unsigned i = 0; i < cfg_.extPrefetchesPerCycle; ++i) {
        // Back-pressure: keep requests queued while the MSHRs are
        // saturated instead of dropping them.
        if (hier_.freeMshrs() <= cfg_.mem.mshrsReservedForDemand)
            return;
        if (!pf_->popRequest(block))
            return;
        hier_.prefetch(block, Origin::Ext, cycle_,
                       cfg_.extPrefetchToL2);
    }
}

void
Simulator::stepFetch()
{
    if (cycle_ < fetchStalledUntil_)
        return;

    unsigned budget = cfg_.fetchBytesPerCycle / kInstBytes;
    while (budget > 0) {
        if (ftq_.empty())
            return;
        // ROB occupancy limit.
        if (fetchSeq_ - windowBase_ >= cfg_.robEntries)
            return;

        FtqEntry &entry = ftq_.front();

        if (!entry.translated) {
            hier_.noteFetchBlock();
            if (!perfect_) {
                Cycle walk = hier_.itlb().translate(entry.block);
                entry.translated = true;
                if (walk > 0) {
                    fetchStalledUntil_ = cycle_ + walk;
                    HP_EMIT(obs_.get(),
                            emitSpan(EventKind::ItlbWalk, cycle_,
                                     cycle_ + walk, entry.block));
                    return;
                }
            } else {
                entry.translated = true;
            }
        }

        if (!entry.accessed) {
            if (perfect_) {
                entry.accessed = true;
            } else {
                DemandResult res = hier_.demandAccess(entry.block,
                                                      cycle_);
                if (res.retry)
                    return;
                entry.accessed = true;
                if (pf_) {
                    Cycle lat = res.readyAt > cycle_
                        ? res.readyAt - cycle_ : 0;
                    pf_->onDemandAccess(entry.block,
                                        res.level == ServiceLevel::L1,
                                        cycle_, lat);
                }
                if (cfg_.trackReuse) {
                    std::uint64_t dist = reuse_.access(entry.block);
                    if (dist != ReuseDistanceTracker::kColdAccess) {
                        if (!measuring_) {
                            reuseHist_->sample(double(dist));
                        } else if (double(dist) >= longRangeThreshold_) {
                            ++metrics_.longRangeAccesses;
                            if (res.level == ServiceLevel::Llc ||
                                res.level == ServiceLevel::Mem) {
                                ++metrics_.longRangeL2Misses;
                            }
                        }
                    }
                }
                if (res.level != ServiceLevel::L1) {
                    fetchStalledUntil_ = res.readyAt;
                    HP_EMIT(obs_.get(),
                            emitSpan(EventKind::FetchStall, cycle_,
                                     res.readyAt, entry.block));
                    if (measuring_ && res.readyAt > cycle_) {
                        metrics_.fetchStallCycles +=
                            res.readyAt - cycle_;
                    }
                    return;
                }
            }
        }

        // Consume instructions from this entry as one span: the
        // prediction unit materialized [startSeq, endSeq) when it
        // built the entry, so no per-instruction bounds check needed.
        if (budget > 0 && fetchSeq_ < entry.endSeq) {
            const std::uint64_t n = std::min<std::uint64_t>(
                budget, entry.endSeq - fetchSeq_);
            for (std::uint64_t i = 0; i < n; ++i)
                atKnown(fetchSeq_ + i).fetchCycle = cycle_;
            fetchSeq_ += n;
            budget -= unsigned(n);
        }
        if (fetchSeq_ >= entry.endSeq) {
            // Entry exhausted: a BTB-missed branch at its end resumes
            // the prediction unit after the decode delay.
            if (feBlock_ == FeBlock::BtbMiss &&
                feBlockSeq_ == entry.endSeq - 1 && !feResumeScheduled_) {
                feResumeAt_ = cycle_ + cfg_.btbMissPenalty;
                feResumeScheduled_ = true;
            }
            ftq_.pop_front();
        }
    }
}

void
Simulator::stepCommit()
{
    if (cycle_ < commitBlockedUntil_)
        return;

    for (unsigned n = 0; n < cfg_.commitWidth; ++n) {
        if (window_.empty() || windowBase_ >= fetchSeq_)
            return;
        WinInst &wi = window_.front();
        if (wi.fetchCycle == WinInst::kNotFetched ||
            cycle_ < wi.fetchCycle + cfg_.pipelineDepth) {
            return;
        }

        const DynInst inst = wi.inst;

        // Idealized back end: a deterministic slice of instructions
        // behaves as long-latency (off-core data) and stalls commit.
        if (cfg_.backendStallPermille > 0 &&
            (mix64(inst.pc * 0x2545f4914f6cdd1dULL) % 1000) <
                cfg_.backendStallPermille) {
            commitBlockedUntil_ = cycle_ + cfg_.backendStallCycles;
            HP_EMIT(obs_.get(),
                    emitSpan(EventKind::BackendStall, cycle_,
                             commitBlockedUntil_, blockAlign(inst.pc)));
            if (measuring_)
                metrics_.backendStallCycles += cfg_.backendStallCycles;
        }

        if (pf_)
            pf_->onCommit(inst, cycle_);

        bool was_blocking_mispredict =
            feBlock_ == FeBlock::Mispredict && feBlockSeq_ == windowBase_;

        window_.pop_front();
        ++windowBase_;
        ++committed_;
        if (measuring_)
            ++metrics_.instructions;

        if (was_blocking_mispredict) {
            // Flush and resteer: the prediction unit resumes after the
            // branch; fetch pays the refill penalty.
            HP_EMIT(obs_.get(),
                    emitSpan(EventKind::FtqStallMispredict,
                             feBlockStart_, cycle_,
                             blockAlign(inst.pc)));
            ftq_.clear();
            bpSeq_ = windowBase_;
            fetchSeq_ = windowBase_;
            feBlock_ = FeBlock::None;
            if (isControl(inst.kind))
                btb_.update(inst.pc, inst.target);
            fetchStalledUntil_ = std::max<Cycle>(
                fetchStalledUntil_, cycle_ + cfg_.mispredictPenalty);
            return; // commit stops at a flush boundary
        }

        if (commitBlockedUntil_ > cycle_)
            return;
    }
}

void
Simulator::beginMeasurement()
{
    measuring_ = true;
    hier_.resetStats();
    metrics_ = SimMetrics{};

    // One generic snapshot marks the warmup boundary for every
    // registered counter; run() subtracts it from the end-of-run
    // snapshot. Taken after the resets above so reset counters read 0.
    warmupSnapshot_ = registry_.snapshot();

    if (cfg_.trackReuse)
        longRangeThreshold_ = reuseHist_->percentile(
            cfg_.longRangePercentile);
}

void
Simulator::stepCycle(bool has_pf)
{
#ifndef HP_NO_OBS
    // Latch the clock for prefetcher-internal emit sites (queue
    // squashes) whose call paths carry no cycle argument.
    if (obs_ && pf_)
        pf_->noteCycle(cycle_);
#endif
    hier_.tick(cycle_);
    stepPredict();
    if (has_pf)
        stepExtPrefetch();
    stepFetch();
    // BTB-miss resume.
    if (feBlock_ == FeBlock::BtbMiss && feResumeScheduled_ &&
        cycle_ >= feResumeAt_) {
        const DynInst &inst = at(feBlockSeq_).inst;
        btb_.update(inst.pc, inst.target);
        feBlock_ = FeBlock::None;
        HP_EMIT(obs_.get(), emitSpan(EventKind::FtqStallBtbMiss,
                                     feBlockStart_, cycle_,
                                     blockAlign(inst.pc)));
    }
    stepCommit();
}

void
Simulator::runWarmup()
{
    panicIf(measuring_, "runWarmup() after measurement began");
    const std::uint64_t total = cfg_.warmupInsts + cfg_.measureInsts;
    const bool has_pf = pf_ != nullptr;

    // Stop inside the boundary iteration: after the commit step that
    // crossed warmupInsts, before beginMeasurement() and the trailing
    // cycle advance — exactly where a cold run would switch phases.
    // With a zero-instruction total the loop never runs and
    // finishRun() handles the degenerate boundary.
    while (committed_ < total) {
        stepCycle(has_pf);
        if (sampler_)
            sampler_->tick(committed_, /*measuring=*/false);
        if (committed_ >= cfg_.warmupInsts)
            return;
        ++cycle_;
    }
}

SimMetrics
Simulator::run()
{
    runWarmup();
    return finishRun();
}

SimMetrics
Simulator::finishRun()
{
    const std::uint64_t total = cfg_.warmupInsts + cfg_.measureInsts;
    const bool has_pf = pf_ != nullptr;

    beginMeasurement();
    if (total > 0) {
        // Complete the boundary iteration, then run measurement.
        ++cycle_;
        while (committed_ < total) {
            stepCycle(has_pf);
            if (sampler_)
                sampler_->tick(committed_, /*measuring=*/true);
            ++cycle_;
        }
    }
    if (sampler_)
        sampler_->finalSample(committed_, /*measuring=*/true);

    // Measurement phase = end-of-run snapshot minus the warmup one;
    // every scalar SimMetrics field derives from this single delta.
    StatsSnapshot delta =
        StatsSnapshot::delta(registry_.snapshot(), warmupSnapshot_);

    metrics_.cycles = delta.value("sim.cycles");
    metrics_.mem = hier_.stats();
    metrics_.itlbAccesses = delta.value("itlb.accesses");
    metrics_.itlbMisses = delta.value("itlb.misses");
    metrics_.condBranches = delta.value("cond.predictions");
    metrics_.condMispredicts = delta.value("cond.mispredicts");
    metrics_.indirectMispredicts = delta.value("indirect.mispredicts");
    metrics_.rasMispredicts = delta.value("sim.ras_mispredicts");
    metrics_.btbMissBlocks = delta.value("btb.misses");

    if (hierPf_) {
        metrics_.hier = hierPf_->stats();
        metrics_.hierActive = true;
    }

    metrics_.engine.instructions = delta.value("engine.instructions");
    metrics_.engine.requests = delta.value("engine.requests");
    metrics_.engine.calls = delta.value("engine.calls");
    metrics_.engine.returns = delta.value("engine.returns");
    metrics_.engine.condBranches = delta.value("engine.cond_branches");
    metrics_.engine.taggedInsts = delta.value("engine.tagged_insts");

    metrics_.dataDramBytes = static_cast<std::uint64_t>(
        double(metrics_.instructions) / 1000.0 *
        profile_->dataDramBytesPerKiloInst);

    metrics_.stats = std::move(delta);
    flushObs();
    return metrics_;
}

template <class Ar>
void
Simulator::serializeState(Ar &ar)
{
    io(ar, cycle_);
    io(ar, window_);
    io(ar, windowBase_);
    io(ar, bpSeq_);
    io(ar, fetchSeq_);
    io(ar, ftq_);
    io(ar, feBlock_);
    io(ar, feBlockSeq_);
    io(ar, feResumeAt_);
    io(ar, feResumeScheduled_);
    io(ar, fetchStalledUntil_);
    io(ar, commitBlockedUntil_);
    io(ar, committed_);
    io(ar, rasMispredicts_);
    hier_.serializeState(ar);
    btb_.serializeState(ar);
    condPred_.serializeState(ar);
    indirectPred_.serializeState(ar);
    ras_.serializeState(ar);
    engine_->serializeState(ar);
    if (pf_) {
        if constexpr (Ar::loading)
            pf_->restoreState(ar);
        else
            pf_->saveState(ar);
    }
    if (cfg_.trackReuse) {
        reuse_.serializeState(ar);
        reuseHist_->serializeState(ar);
    }
}

template void Simulator::serializeState(StateWriter &);
template void Simulator::serializeState(StateLoader &);

} // namespace hp
