#include "sim/metrics.hh"

namespace hp
{

PairedMetrics
pairedMetrics(const SimMetrics &run, const SimMetrics &baseline)
{
    PairedMetrics out;

    if (baseline.cycles && run.cycles) {
        double base_ipc = baseline.ipc();
        if (base_ipc > 0.0)
            out.speedup = run.ipc() / base_ipc - 1.0;
    }

    // Coverage over FDIP, as the paper defines it: the fraction of the
    // baseline's demand misses eliminated. Computed from the actual
    // miss reduction (counting served prefetches instead would credit
    // a prefetcher for re-fetching blocks its own pollution evicted).
    if (baseline.mem.demandL1Misses > 0) {
        double base = double(baseline.mem.demandL1Misses);
        out.coverageL1 = (base - double(run.mem.demandL1Misses)) / base;
    }
    if (baseline.mem.demandL2Misses > 0) {
        double base = double(baseline.mem.demandL2Misses);
        out.coverageL2 = (base - double(run.mem.demandL2Misses)) / base;
    }

    out.accuracy = run.mem.ext.accuracy();
    out.lateFraction = run.mem.ext.lateFraction();
    out.avgDistance = run.mem.extUsefulDistance.mean();

    std::uint64_t base_bw = baseline.totalDramBytes();
    if (base_bw > 0) {
        out.bandwidthRatio =
            double(run.totalDramBytes()) / double(base_bw);
    }

    if (baseline.longRangeL2Misses > 0) {
        std::uint64_t base = baseline.longRangeL2Misses;
        std::uint64_t now = run.longRangeL2Misses;
        out.longRangeEliminated =
            now < base ? double(base - now) / double(base) : 0.0;
    }

    std::uint64_t base_lat = baseline.mem.totalMissCycles();
    if (base_lat > 0) {
        out.missLatencyRatio =
            double(run.mem.totalMissCycles()) / double(base_lat);
    }

    return out;
}

} // namespace hp
