/**
 * @file
 * Parallel experiment executor.
 *
 * Every grid point of the evaluation pipeline (workload x prefetcher x
 * knob sweep) is an independent simulation, so the bench harnesses
 * submit their whole grid up front and a pool of workers drains it.
 * Deduplication lives in the ExperimentRunner cache (futures keyed by
 * a 64-bit config hash), so a config shared by several grids — the
 * FDIP baseline, most commonly — is simulated exactly once no matter
 * how many threads request it, and results collected in submission
 * order are bit-identical to a serial run.
 *
 * The worker count defaults to std::thread::hardware_concurrency(),
 * overridable with the HP_JOBS environment variable.
 */

#ifndef HP_SIM_EXECUTOR_HH
#define HP_SIM_EXECUTOR_HH

#include <condition_variable>
#include <deque>
#include <future>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "sim/config.hh"
#include "sim/metrics.hh"
#include "sim/runner.hh"

namespace hp
{

/** The two futures of a prefetcher-vs-FDIP-baseline pair. */
struct PairFutures
{
    std::shared_future<SimMetrics> run;
    std::shared_future<SimMetrics> base;

    /** Blocks on both halves and computes the paired metrics. */
    RunPair collect() const { return makeRunPair(run.get(), base.get()); }
};

/** A fixed-size thread pool draining deduplicated simulation jobs. */
class Executor
{
  public:
    /** @p threads workers; 0 means defaultThreads(). */
    explicit Executor(unsigned threads = 0);
    ~Executor();

    Executor(const Executor &) = delete;
    Executor &operator=(const Executor &) = delete;

    /** HP_JOBS if set and positive, else hardware_concurrency(). */
    static unsigned defaultThreads();

    /** The process-wide executor used by ExperimentRunner::runPair. */
    static Executor &global();

    unsigned threads() const { return unsigned(workers_.size()); }

    /**
     * Enqueues @p config (unless already cached or in flight) and
     * returns the future of its metrics. Never blocks on the
     * simulation itself.
     */
    std::shared_future<SimMetrics> submit(const SimConfig &config);

    /** Submits @p config and its FDIP-only baseline twin. */
    PairFutures submitPair(const SimConfig &config);

    /**
     * Submits every config up front, then collects in input order:
     * results are deterministic and identical to running the same
     * list serially.
     */
    std::vector<SimMetrics> runAll(const std::vector<SimConfig> &configs);

    /** runAll for pairs: every config plus its FDIP baseline. */
    std::vector<RunPair> runPairs(const std::vector<SimConfig> &configs);

    /**
     * Convenience full-grid sweep: @p base with workload and
     * prefetcher kind applied for every (workload, kind) pair, each
     * paired with its FDIP baseline. Results are workload-major:
     * result[w * kinds.size() + k].
     */
    std::vector<RunPair>
    runGrid(const std::vector<std::string> &workloads,
            const std::vector<PrefetcherKind> &kinds,
            const SimConfig &base = SimConfig{});

  private:
    void workerLoop();

    std::vector<std::thread> workers_;
    std::deque<std::packaged_task<SimMetrics()>> queue_;
    std::mutex mutex_;
    std::condition_variable cv_;
    bool stop_ = false;
};

} // namespace hp

#endif // HP_SIM_EXECUTOR_HH
