#include "sim/run_report.hh"

#include <atomic>
#include <mutex>
#include <sstream>
#include <utility>
#include <vector>

#include "obs/miss_attribution.hh"
#include "sim/runner.hh"

namespace hp
{

namespace
{

struct RecordedRun
{
    std::string workload;
    std::string prefetcher;
    std::string configKey;
    SimMetrics metrics;
};

std::atomic<bool> g_enabled{false};
std::mutex g_mutex;
std::vector<RecordedRun> &
recordedRuns()
{
    static std::vector<RecordedRun> runs;
    return runs;
}

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        if (c == '"' || c == '\\')
            out.push_back('\\');
        out.push_back(c);
    }
    return out;
}

std::string
fmtDouble(double v)
{
    std::ostringstream out;
    out.precision(17);
    out << v;
    return out.str();
}

/**
 * Renders the miss-attribution summary for one run: the per-class
 * measurement-phase miss counts plus their sum and the L1-I demand
 * misses they partition. All zeros unless attribution ran.
 */
void
appendAttribution(std::ostringstream &out, const StatsSnapshot &stats)
{
    out << "      \"attribution\": {\n";
    std::uint64_t total = 0;
    for (unsigned i = 0; i < kNumMissCauses; ++i) {
        const std::string path = std::string("missAttribution.") +
            missCauseName(static_cast<MissCause>(i));
        const std::uint64_t v = stats.has(path) ? stats.value(path) : 0;
        total += v;
        out << "        \""
            << missCauseName(static_cast<MissCause>(i)) << "\": " << v
            << ",\n";
    }
    const std::uint64_t misses = stats.has("l1i.demand_misses")
        ? stats.value("l1i.demand_misses") : 0;
    out << "        \"total\": " << total << ",\n"
        << "        \"l1i_demand_misses\": " << misses << "\n"
        << "      },\n";
}

} // namespace

void
RunReportLog::enable()
{
    g_enabled.store(true, std::memory_order_release);
}

bool
RunReportLog::enabled()
{
    return g_enabled.load(std::memory_order_acquire);
}

void
RunReportLog::record(const SimConfig &config, const SimMetrics &m)
{
    if (!enabled())
        return;
    RecordedRun run;
    run.workload = config.workload;
    run.prefetcher = prefetcherName(config.prefetcher);
    run.configKey = ExperimentRunner::configKey(config);
    run.metrics = m;
    std::lock_guard<std::mutex> lock(g_mutex);
    recordedRuns().push_back(std::move(run));
}

std::size_t
RunReportLog::size()
{
    std::lock_guard<std::mutex> lock(g_mutex);
    return recordedRuns().size();
}

std::string
RunReportLog::documentJson()
{
    std::lock_guard<std::mutex> lock(g_mutex);
    std::ostringstream out;
    out << "{\n  \"schema\": \"hp-stats-report-v1\",\n  \"runs\": [";
    bool first = true;
    for (const RecordedRun &run : recordedRuns()) {
        const SimMetrics &m = run.metrics;
        out << (first ? "" : ",") << "\n    {\n"
            << "      \"workload\": \"" << jsonEscape(run.workload)
            << "\",\n"
            << "      \"prefetcher\": \"" << jsonEscape(run.prefetcher)
            << "\",\n"
            << "      \"config_key\": \"" << jsonEscape(run.configKey)
            << "\",\n"
            << "      \"stats\": "
            << m.stats.toJson(6).substr(6) << ",\n";
        appendAttribution(out, m.stats);
        out << "      \"derived\": {\n"
            << "        \"ipc\": " << fmtDouble(m.ipc()) << ",\n"
            << "        \"ext_accuracy\": "
            << fmtDouble(m.mem.ext.accuracy()) << ",\n"
            << "        \"ext_late_fraction\": "
            << fmtDouble(m.mem.ext.lateFraction()) << ",\n"
            << "        \"ext_avg_distance\": "
            << fmtDouble(m.mem.extUsefulDistance.mean()) << ",\n"
            << "        \"data_dram_bytes\": " << m.dataDramBytes
            << ",\n"
            << "        \"total_dram_bytes\": " << m.totalDramBytes()
            << "\n      }\n    }";
        first = false;
    }
    out << "\n  ]\n}\n";
    return out.str();
}

void
RunReportLog::clear()
{
    std::lock_guard<std::mutex> lock(g_mutex);
    recordedRuns().clear();
}

} // namespace hp
