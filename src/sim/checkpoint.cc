#include "sim/checkpoint.hh"

#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>

#include "sim/runner.hh"
#include "sim/simulator.hh"
#include "util/logging.hh"
#include "util/serialize.hh"

namespace hp
{

namespace
{

/** Eight-byte magic leading every checkpoint file image. */
constexpr char kMagic[8] = {'H', 'P', 'C', 'K', 'P', 'T', '0', '\n'};

std::string
hexHash(std::uint64_t hash)
{
    static const char digits[] = "0123456789abcdef";
    std::string out(16, '0');
    for (int i = 15; i >= 0; --i) {
        out[i] = digits[hash & 0xf];
        hash >>= 4;
    }
    return out;
}

} // namespace

SimConfig
warmupConfig(const SimConfig &config)
{
    SimConfig w = measurementConfig(config);
    // Read only at or after the warmup boundary: measureInsts enters
    // the loop bound (the boundary is reached the moment committed_
    // crosses warmupInsts regardless of the total), and
    // longRangePercentile is read by beginMeasurement().
    w.measureInsts = SimConfig{}.measureInsts;
    w.longRangePercentile = SimConfig{}.longRangePercentile;
    return w;
}

Checkpoint
Checkpoint::capture(Simulator &sim, std::string warmup_key)
{
    StateWriter writer;
    sim.serializeState(writer);
    return Checkpoint(std::move(warmup_key), writer.take());
}

bool
Checkpoint::restoreInto(Simulator &sim, std::string *error) const
{
    StateLoader loader(payload_.data(), payload_.size());
    sim.serializeState(loader);
    if (loader.failed()) {
        if (error)
            *error = "checkpoint payload truncated";
        return false;
    }
    if (loader.remaining() != 0) {
        if (error)
            *error = "checkpoint payload has trailing bytes "
                     "(config/state mismatch)";
        return false;
    }
    return true;
}

std::vector<std::uint8_t>
Checkpoint::encode() const
{
    StateWriter writer;
    writer.bytes(kMagic, sizeof(kMagic));
    writer.value(kCheckpointFormatVersion);
    std::uint64_t key_size = warmupKey_.size();
    writer.value(key_size);
    writer.bytes(warmupKey_.data(), warmupKey_.size());
    std::uint64_t payload_size = payload_.size();
    writer.value(payload_size);
    writer.bytes(payload_.data(), payload_.size());
    return writer.take();
}

std::shared_ptr<const Checkpoint>
Checkpoint::decode(const std::vector<std::uint8_t> &bytes,
                   std::string *error)
{
    StateLoader loader(bytes.data(), bytes.size());
    char magic[sizeof(kMagic)] = {};
    loader.bytes(magic, sizeof(magic));
    if (loader.failed() ||
        std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
        if (error)
            *error = "not a checkpoint blob (bad magic)";
        return nullptr;
    }

    std::uint32_t version = 0;
    loader.value(version);
    if (loader.failed() || version != kCheckpointFormatVersion) {
        if (error)
            *error = "checkpoint format version " +
                     std::to_string(version) + ", this build expects " +
                     std::to_string(kCheckpointFormatVersion);
        return nullptr;
    }

    std::string key;
    std::uint64_t key_size = 0;
    loader.value(key_size);
    if (!loader.failed() && key_size <= loader.remaining()) {
        key.resize(key_size);
        loader.bytes(key.data(), key_size);
    } else {
        if (error)
            *error = "checkpoint header truncated";
        return nullptr;
    }

    std::uint64_t payload_size = 0;
    loader.value(payload_size);
    if (loader.failed() || payload_size != loader.remaining()) {
        if (error)
            *error = "checkpoint payload length mismatch";
        return nullptr;
    }
    std::vector<std::uint8_t> payload(payload_size);
    loader.bytes(payload.data(), payload_size);
    return std::make_shared<const Checkpoint>(std::move(key),
                                              std::move(payload));
}

CheckpointStore::Acquire
CheckpointStore::acquire(const SimConfig &warmup_config)
{
    const std::uint64_t hash = configHash(warmup_config);

    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<std::unique_ptr<Slot>> &bucket = slots_[hash];
    for (const std::unique_ptr<Slot> &slot : bucket) {
        if (slot->config == warmup_config)
            return Acquire{slot->future, false};
    }

    auto slot = std::make_unique<Slot>();
    slot->config = warmup_config;
    slot->future = slot->promise.get_future().share();
    Acquire acquire{slot->future, true};
    bucket.push_back(std::move(slot));
    return acquire;
}

void
CheckpointStore::publish(const SimConfig &warmup_config,
                         CheckpointPtr ckpt)
{
    const std::uint64_t hash = configHash(warmup_config);

    std::lock_guard<std::mutex> lock(mutex_);
    for (std::unique_ptr<Slot> &slot : slots_[hash]) {
        if (slot->config != warmup_config || slot->published)
            continue;
        slot->promise.set_value(std::move(ckpt));
        slot->published = true;
        return;
    }
}

std::size_t
CheckpointStore::size() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::size_t n = 0;
    for (const auto &bucket : slots_)
        n += bucket.second.size();
    return n;
}

CheckpointStore &
CheckpointStore::global()
{
    static CheckpointStore store;
    return store;
}

std::string
checkpointDir()
{
    const char *dir = std::getenv("HP_CKPT_DIR");
    return dir ? std::string(dir) : std::string();
}

std::string
checkpointFileName(const SimConfig &warmup_config)
{
    return warmup_config.workload + "-" +
           hexHash(configHash(warmup_config)) + ".ckpt";
}

bool
saveCheckpointFile(const std::string &dir,
                   const std::string &file_name, const Checkpoint &ckpt)
{
    namespace fs = std::filesystem;
    std::error_code ec;
    fs::create_directories(dir, ec);

    const fs::path target = fs::path(dir) / file_name;
    // Unique temp name per process so concurrent sweeps can't observe
    // (or clobber) a half-written file; rename is atomic within dir.
    const fs::path tmp =
        target.string() + ".tmp." + hexHash(std::uint64_t(
            reinterpret_cast<std::uintptr_t>(&ckpt)));
    {
        std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
        if (!out)
            return false;
        const std::vector<std::uint8_t> image = ckpt.encode();
        out.write(reinterpret_cast<const char *>(image.data()),
                  std::streamsize(image.size()));
        if (!out) {
            out.close();
            fs::remove(tmp, ec);
            return false;
        }
    }
    fs::rename(tmp, target, ec);
    if (ec) {
        fs::remove(tmp, ec);
        return false;
    }
    return true;
}

std::shared_ptr<const Checkpoint>
loadCheckpointFile(const std::string &path,
                   const std::string &expected_key, std::string *error)
{
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        if (error)
            *error = "cannot open " + path;
        return nullptr;
    }
    std::vector<std::uint8_t> bytes(
        (std::istreambuf_iterator<char>(in)),
        std::istreambuf_iterator<char>());
    std::shared_ptr<const Checkpoint> ckpt =
        Checkpoint::decode(bytes, error);
    if (!ckpt)
        return nullptr;
    if (ckpt->warmupKey() != expected_key) {
        if (error)
            *error = path + " was produced by a different warmup "
                            "config (key mismatch)";
        return nullptr;
    }
    return ckpt;
}

bool
checkpointingEnabled(const SimConfig &config)
{
    if (config.warmupInsts == 0)
        return false;
    const char *env = std::getenv("HP_CKPT");
    return env == nullptr || std::strcmp(env, "0") != 0;
}

SimMetrics
runCheckpointed(const SimConfig &config)
{
    if (!checkpointingEnabled(config)) {
        Simulator sim(config);
        return sim.run();
    }

    const SimConfig wcfg = warmupConfig(config);
    CheckpointStore &store = CheckpointStore::global();
    CheckpointStore::Acquire acq = store.acquire(wcfg);

    if (acq.owner) {
        const std::string key = ExperimentRunner::configKey(wcfg);
        const std::string dir = checkpointDir();

        // Cross-process reuse: a prior run may have spilled this class.
        if (!dir.empty()) {
            std::string error;
            std::shared_ptr<const Checkpoint> ckpt = loadCheckpointFile(
                (std::filesystem::path(dir) / checkpointFileName(wcfg))
                    .string(),
                key, &error);
            if (ckpt) {
                Simulator sim(config);
                if (ckpt->restoreInto(sim, &error)) {
                    store.publish(wcfg, ckpt);
                    return sim.finishRun();
                }
                HP_WARN_LIMIT(8, "ignoring unusable checkpoint: " +
                                     error);
            }
        }

        // Produce the class checkpoint with this config's own warmup;
        // the producer continues directly, paying no restore cost.
        Simulator sim(config);
        std::shared_ptr<const Checkpoint> fresh;
        try {
            sim.runWarmup();
            fresh = std::make_shared<const Checkpoint>(
                Checkpoint::capture(sim, key));
        } catch (...) {
            store.publish(wcfg, nullptr);
            throw;
        }
        store.publish(wcfg, fresh);
        if (!dir.empty())
            saveCheckpointFile(dir, checkpointFileName(wcfg), *fresh);
        return sim.finishRun();
    }

    std::shared_ptr<const Checkpoint> ckpt = acq.future.get();
    if (ckpt) {
        Simulator sim(config);
        std::string error;
        if (ckpt->restoreInto(sim, &error))
            return sim.finishRun();
        HP_WARN_LIMIT(8, "checkpoint restore failed (" + error +
                             "); running cold");
    }
    Simulator cold(config);
    return cold.run();
}

} // namespace hp
