/**
 * @file
 * Simulation configuration: the modeled core (Table 1 parameters),
 * the memory hierarchy, and the prefetcher under test.
 */

#ifndef HP_SIM_CONFIG_HH
#define HP_SIM_CONFIG_HH

#include <cstdint>
#include <string>

#include "cache/hierarchy.hh"
#include "core/hierarchical_prefetcher.hh"
#include "prefetch/efetch.hh"
#include "prefetch/eip.hh"
#include "prefetch/mana.hh"
#include "prefetch/rdip.hh"

namespace hp
{

/** Which prefetcher runs on top of FDIP. */
enum class PrefetcherKind : std::uint8_t
{
    None,         ///< FDIP baseline only.
    EFetch,
    Mana,
    Eip,
    Rdip, ///< Related-work extension (not in the paper's figures).
    Hierarchical,
    PerfectL1I,   ///< Upper bound: every fetch hits the L1-I.
};

/** Returns the display name of a prefetcher kind. */
const char *prefetcherName(PrefetcherKind kind);

/** Full simulation configuration. */
struct SimConfig
{
    /** Workload name (see workload/app_profile.hh). */
    std::string workload = "tidb-tpcc";

    std::uint64_t warmupInsts = 1'500'000;
    std::uint64_t measureInsts = 3'000'000;

    // ---- Front end (Table 1) ----

    /** Fetch target queue entries (paper: 24). */
    unsigned ftqEntries = 24;

    /** Fetch bandwidth (paper: 16 bytes/cycle = 4 insts). */
    unsigned fetchBytesPerCycle = 16;

    /** FTQ entries the prediction unit can push per cycle. */
    unsigned bpBlocksPerCycle = 2;

    unsigned btbEntries = 8192; ///< 0 = infinite (Figure 14).
    unsigned btbWays = 8;
    unsigned rasDepth = 32;

    /** Cycles to resteer after a BTB miss is discovered at decode. */
    unsigned btbMissPenalty = 3;

    /** Cycles of fetch bubble after a mispredict resolves. */
    unsigned mispredictPenalty = 14;

    // ---- Back end (idealized; see DESIGN.md Section 5) ----

    /** Minimum fetch-to-commit latency. */
    unsigned pipelineDepth = 10;

    unsigned commitWidth = 6;
    unsigned robEntries = 352;

    /**
     * Back-end stall model: a deterministic hash classifies this
     * permille of instructions as long-latency (off-core data misses);
     * each stalls commit for backendStallCycles. Calibrated so that
     * front-end stalls are a realistic share of cycles (perfect L1-I
     * gains ~17% over FDIP, Section 7.1).
     */
    unsigned backendStallPermille = 26;
    unsigned backendStallCycles = 29;

    // ---- Memory hierarchy ----

    HierarchyParams mem;

    // ---- Prefetcher under test ----

    PrefetcherKind prefetcher = PrefetcherKind::None;

    EFetchConfig efetch;
    ManaConfig mana;
    EipConfig eip;
    RdipConfig rdip;
    HierarchicalConfig hier;

    /** Direct the Ext prefetcher at the L2 instead (Figure 17). */
    bool extPrefetchToL2 = false;

    /** Ext prefetch issue bandwidth (requests/cycle). */
    unsigned extPrefetchesPerCycle = 4;

    // ---- Analysis probes ----

    /** Track reuse distances / long-range misses (Figure 12). */
    bool trackReuse = false;

    /** Long-range threshold: reuse distance at/above this percentile
     *  of the warmup distribution counts as long-range. */
    double longRangePercentile = 0.90;

    /**
     * Full-struct equality: every field that affects the simulation
     * outcome participates, so it is safe as the collision check
     * behind configHash().
     */
    bool operator==(const SimConfig &) const = default;
};

/**
 * 64-bit hash over every outcome-affecting field; the dedup key of the
 * experiment cache. Collisions are resolved with operator==.
 */
std::uint64_t configHash(const SimConfig &config);

} // namespace hp

#endif // HP_SIM_CONFIG_HH
