#include "sim/runner.hh"

#include <atomic>
#include <mutex>
#include <sstream>
#include <unordered_map>
#include <vector>

#include "sim/checkpoint.hh"
#include "sim/executor.hh"
#include "sim/run_report.hh"
#include "util/hash.hh"

namespace hp
{

namespace
{

std::uint64_t
hashString(std::uint64_t seed, const std::string &s)
{
    std::uint64_t h = hashCombine(seed, s.size());
    for (char c : s)
        h = hashCombine(h, static_cast<unsigned char>(c));
    return h;
}

std::uint64_t
hashDouble(std::uint64_t seed, double d)
{
    // Bit-pattern hash: configs are compared with ==, and the doubles
    // involved are set from literals, never computed.
    std::uint64_t bits;
    static_assert(sizeof(bits) == sizeof(d));
    __builtin_memcpy(&bits, &d, sizeof(bits));
    return hashCombine(seed, bits);
}

/**
 * One cache slot: the full config for collision resolution plus the
 * shared future every requester blocks on.
 */
struct CacheSlot
{
    SimConfig config;
    std::shared_future<SimMetrics> future;
};

std::mutex g_mutex;
std::unordered_map<std::uint64_t, std::vector<CacheSlot>> g_cache;
std::atomic<std::size_t> g_runs{0};

} // namespace

std::uint64_t
configHash(const SimConfig &c)
{
    std::uint64_t h = hashString(0x9e3779b97f4a7c15ULL, c.workload);
    for (std::uint64_t v :
         {std::uint64_t(c.warmupInsts), std::uint64_t(c.measureInsts),
          std::uint64_t(c.ftqEntries),
          std::uint64_t(c.fetchBytesPerCycle),
          std::uint64_t(c.bpBlocksPerCycle), std::uint64_t(c.btbEntries),
          std::uint64_t(c.btbWays), std::uint64_t(c.rasDepth),
          std::uint64_t(c.btbMissPenalty),
          std::uint64_t(c.mispredictPenalty),
          std::uint64_t(c.pipelineDepth), std::uint64_t(c.commitWidth),
          std::uint64_t(c.robEntries),
          std::uint64_t(c.backendStallPermille),
          std::uint64_t(c.backendStallCycles)}) {
        h = hashCombine(h, v);
    }

    const HierarchyParams &m = c.mem;
    for (std::uint64_t v :
         {std::uint64_t(m.l1iBytes), std::uint64_t(m.l1iWays),
          std::uint64_t(m.l1iLatency), std::uint64_t(m.l1iMshrs),
          std::uint64_t(m.l2Bytes), std::uint64_t(m.l2Ways),
          std::uint64_t(m.l2Latency), std::uint64_t(m.llcBytes),
          std::uint64_t(m.llcWays), std::uint64_t(m.llcLatency),
          std::uint64_t(m.memLatency), std::uint64_t(m.itlbEntries),
          std::uint64_t(m.itlbWalkLatency),
          std::uint64_t(m.mshrsReservedForDemand),
          std::uint64_t(m.metadataDramEvery)}) {
        h = hashCombine(h, v);
    }
    h = hashDouble(h, m.l2InstFraction);
    h = hashDouble(h, m.llcInstFraction);

    h = hashCombine(h, std::uint64_t(c.prefetcher));
    for (std::uint64_t v :
         {std::uint64_t(c.efetch.tableEntries),
          std::uint64_t(c.efetch.signatureDepth),
          std::uint64_t(c.efetch.calleesPerEntry),
          std::uint64_t(c.efetch.lookahead),
          std::uint64_t(c.efetch.footprintEntries),
          std::uint64_t(c.mana.regionBlocks),
          std::uint64_t(c.mana.historyRegions),
          std::uint64_t(c.mana.indexEntries),
          std::uint64_t(c.mana.lookahead),
          std::uint64_t(c.eip.tableEntries),
          std::uint64_t(c.eip.tableWays),
          std::uint64_t(c.eip.historyEntries),
          std::uint64_t(c.eip.maxTargets),
          std::uint64_t(c.eip.targetRunBlocks),
          std::uint64_t(c.rdip.tableEntries),
          std::uint64_t(c.rdip.signatureDepth),
          std::uint64_t(c.rdip.blocksPerEntry),
          std::uint64_t(c.hier.compressionEntries),
          std::uint64_t(c.hier.metadataBufferBytes),
          std::uint64_t(c.hier.matEntries),
          std::uint64_t(c.hier.matWays),
          std::uint64_t(c.hier.maxSegmentsPerBundle),
          std::uint64_t(c.hier.aheadSegments),
          std::uint64_t(c.hier.replayDedup),
          std::uint64_t(c.hier.subSegmentPacing),
          std::uint64_t(c.hier.supersedeRecords),
          std::uint64_t(c.hier.trackBundleStats),
          std::uint64_t(c.extPrefetchToL2),
          std::uint64_t(c.extPrefetchesPerCycle),
          std::uint64_t(c.trackReuse)}) {
        h = hashCombine(h, v);
    }
    h = hashDouble(h, c.longRangePercentile);
    return h;
}

std::string
ExperimentRunner::configKey(const SimConfig &c)
{
    std::ostringstream key;
    key << c.workload << '|' << c.warmupInsts << '|' << c.measureInsts
        << '|' << c.ftqEntries << '|' << c.fetchBytesPerCycle << '|'
        << c.bpBlocksPerCycle << '|' << c.btbEntries << '|' << c.btbWays
        << '|' << c.rasDepth << '|' << c.btbMissPenalty << '|'
        << c.mispredictPenalty << '|' << c.pipelineDepth << '|'
        << c.commitWidth << '|' << c.robEntries << '|'
        << c.backendStallPermille << '|' << c.backendStallCycles << '|';

    const HierarchyParams &m = c.mem;
    key << m.l1iBytes << ',' << m.l1iWays << ',' << m.l1iLatency << ','
        << m.l1iMshrs << ',' << m.l2Bytes << ',' << m.l2Ways << ','
        << m.l2Latency << ',' << m.l2InstFraction << ',' << m.llcBytes
        << ',' << m.llcWays << ',' << m.llcLatency << ','
        << m.llcInstFraction << ',' << m.memLatency << ','
        << m.itlbEntries << ',' << m.itlbWalkLatency << ','
        << m.mshrsReservedForDemand << ',' << m.metadataDramEvery << '|';

    key << int(c.prefetcher) << '|';
    key << c.efetch.tableEntries << ',' << c.efetch.signatureDepth << ','
        << c.efetch.calleesPerEntry << ',' << c.efetch.lookahead << ','
        << c.efetch.footprintEntries << '|';
    key << c.mana.regionBlocks << ',' << c.mana.historyRegions << ','
        << c.mana.indexEntries << ',' << c.mana.lookahead << '|';
    key << c.eip.tableEntries << ',' << c.eip.tableWays << ','
        << c.eip.historyEntries << ',' << c.eip.maxTargets << ','
        << c.eip.targetRunBlocks << '|';
    key << c.rdip.tableEntries << ',' << c.rdip.signatureDepth << ','
        << c.rdip.blocksPerEntry << '|';
    key << c.hier.compressionEntries << ',' << c.hier.metadataBufferBytes
        << ',' << c.hier.matEntries << ',' << c.hier.matWays << ','
        << c.hier.maxSegmentsPerBundle << ',' << c.hier.aheadSegments
        << ',' << c.hier.replayDedup << ','
        << c.hier.subSegmentPacing << ','
        << c.hier.supersedeRecords << ','
        << c.hier.trackBundleStats << '|';
    key << c.extPrefetchToL2 << '|' << c.extPrefetchesPerCycle << '|'
        << c.trackReuse << '|' << c.longRangePercentile;
    return key.str();
}

SimConfig
measurementConfig(const SimConfig &config)
{
    SimConfig m = config;
    const PrefetcherKind kind = m.prefetcher;

    // Sub-configs of prefetchers other than the one under test are
    // never read by the simulation.
    if (kind != PrefetcherKind::EFetch)
        m.efetch = EFetchConfig{};
    if (kind != PrefetcherKind::Mana)
        m.mana = ManaConfig{};
    if (kind != PrefetcherKind::Eip)
        m.eip = EipConfig{};
    if (kind != PrefetcherKind::Rdip)
        m.rdip = RdipConfig{};
    if (kind != PrefetcherKind::Hierarchical) {
        m.hier = HierarchicalConfig{};
        // Metadata DRAM traffic accounting only exists for the
        // hierarchical prefetcher's off-chip metadata.
        m.mem.metadataDramEvery = HierarchyParams{}.metadataDramEvery;
    }

    // Without an Ext prefetcher there is nothing the ext knobs gate.
    if (kind == PrefetcherKind::None || kind == PrefetcherKind::PerfectL1I) {
        m.extPrefetchToL2 = false;
        m.extPrefetchesPerCycle = SimConfig{}.extPrefetchesPerCycle;
    }

    // A perfect L1-I never consults the hierarchy or the reuse probe.
    if (kind == PrefetcherKind::PerfectL1I) {
        m.mem = HierarchyParams{};
        m.trackReuse = false;
        m.longRangePercentile = SimConfig{}.longRangePercentile;
    }
    if (!m.trackReuse)
        m.longRangePercentile = SimConfig{}.longRangePercentile;
    return m;
}

namespace detail
{

std::shared_future<SimMetrics>
acquireSimulation(const SimConfig &config,
                  std::packaged_task<SimMetrics()> *task)
{
    // Dedup on the normalized config so grid points differing only in
    // fields this simulation never reads share one run. The full
    // original config still reaches the simulation and the report log.
    const SimConfig mcfg = measurementConfig(config);
    const std::uint64_t hash = configHash(mcfg);

    std::lock_guard<std::mutex> lock(g_mutex);
    std::vector<CacheSlot> &bucket = g_cache[hash];
    for (const CacheSlot &slot : bucket) {
        if (slot.config == mcfg)
            return slot.future;
    }

    // First request for this class: this caller runs the simulation.
    std::packaged_task<SimMetrics()> sim([config] {
        SimMetrics metrics = runCheckpointed(config);
        g_runs.fetch_add(1, std::memory_order_relaxed);
        RunReportLog::record(config, metrics);
        return metrics;
    });
    std::shared_future<SimMetrics> future = sim.get_future().share();
    bucket.push_back(CacheSlot{mcfg, future});
    *task = std::move(sim);
    return future;
}

} // namespace detail

SimMetrics
ExperimentRunner::run(const SimConfig &config)
{
    std::packaged_task<SimMetrics()> task;
    std::shared_future<SimMetrics> future =
        detail::acquireSimulation(config, &task);
    if (task.valid())
        task();
    return future.get();
}

SimConfig
fdipBaseline(const SimConfig &config)
{
    SimConfig base = config;
    base.prefetcher = PrefetcherKind::None;
    base.extPrefetchToL2 = false;
    return base;
}

RunPair
makeRunPair(SimMetrics run, SimMetrics base)
{
    RunPair pair;
    pair.run = std::move(run);
    pair.base = std::move(base);
    pair.paired = pairedMetrics(pair.run, pair.base);
    return pair;
}

RunPair
ExperimentRunner::runPair(const SimConfig &config)
{
    // Submit both halves before waiting so they can overlap on the
    // executor's workers.
    Executor &ex = Executor::global();
    std::shared_future<SimMetrics> run = ex.submit(config);
    std::shared_future<SimMetrics> base =
        ex.submit(fdipBaseline(config));
    return makeRunPair(run.get(), base.get());
}

std::size_t
ExperimentRunner::simulationsRun()
{
    return g_runs.load(std::memory_order_relaxed);
}

SimConfig
defaultConfig(const std::string &workload, PrefetcherKind kind)
{
    SimConfig config;
    config.workload = workload;
    config.prefetcher = kind;
    if (kind == PrefetcherKind::Hierarchical)
        config.hier.trackBundleStats = true;
    return config;
}

} // namespace hp
