#include "sim/runner.hh"

#include <map>
#include <mutex>
#include <sstream>

namespace hp
{

namespace
{

std::mutex g_mutex;
std::map<std::string, SimMetrics> g_cache;
std::size_t g_runs = 0;

} // namespace

std::string
ExperimentRunner::configKey(const SimConfig &c)
{
    std::ostringstream key;
    key << c.workload << '|' << c.warmupInsts << '|' << c.measureInsts
        << '|' << c.ftqEntries << '|' << c.fetchBytesPerCycle << '|'
        << c.bpBlocksPerCycle << '|' << c.btbEntries << '|' << c.btbWays
        << '|' << c.rasDepth << '|' << c.btbMissPenalty << '|'
        << c.mispredictPenalty << '|' << c.pipelineDepth << '|'
        << c.commitWidth << '|' << c.robEntries << '|'
        << c.backendStallPermille << '|' << c.backendStallCycles << '|';

    const HierarchyParams &m = c.mem;
    key << m.l1iBytes << ',' << m.l1iWays << ',' << m.l1iLatency << ','
        << m.l1iMshrs << ',' << m.l2Bytes << ',' << m.l2Ways << ','
        << m.l2Latency << ',' << m.l2InstFraction << ',' << m.llcBytes
        << ',' << m.llcWays << ',' << m.llcLatency << ','
        << m.llcInstFraction << ',' << m.memLatency << ','
        << m.itlbEntries << ',' << m.itlbWalkLatency << ','
        << m.mshrsReservedForDemand << ',' << m.metadataDramEvery << '|';

    key << int(c.prefetcher) << '|';
    key << c.efetch.tableEntries << ',' << c.efetch.signatureDepth << ','
        << c.efetch.calleesPerEntry << ',' << c.efetch.lookahead << ','
        << c.efetch.footprintEntries << '|';
    key << c.mana.regionBlocks << ',' << c.mana.historyRegions << ','
        << c.mana.indexEntries << ',' << c.mana.lookahead << '|';
    key << c.eip.tableEntries << ',' << c.eip.tableWays << ','
        << c.eip.historyEntries << ',' << c.eip.maxTargets << ','
        << c.eip.targetRunBlocks << '|';
    key << c.rdip.tableEntries << ',' << c.rdip.signatureDepth << ','
        << c.rdip.blocksPerEntry << '|';
    key << c.hier.compressionEntries << ',' << c.hier.metadataBufferBytes
        << ',' << c.hier.matEntries << ',' << c.hier.matWays << ','
        << c.hier.maxSegmentsPerBundle << ',' << c.hier.aheadSegments
        << ',' << c.hier.replayDedup << ','
        << c.hier.subSegmentPacing << ','
        << c.hier.supersedeRecords << ','
        << c.hier.trackBundleStats << '|';
    key << c.extPrefetchToL2 << '|' << c.extPrefetchesPerCycle << '|'
        << c.trackReuse << '|' << c.longRangePercentile;
    return key.str();
}

const SimMetrics &
ExperimentRunner::run(const SimConfig &config)
{
    std::string key = configKey(config);
    {
        std::lock_guard<std::mutex> lock(g_mutex);
        auto it = g_cache.find(key);
        if (it != g_cache.end())
            return it->second;
    }

    Simulator sim(config);
    SimMetrics metrics = sim.run();

    std::lock_guard<std::mutex> lock(g_mutex);
    ++g_runs;
    auto [it, inserted] = g_cache.emplace(key, std::move(metrics));
    (void)inserted;
    return it->second;
}

RunPair
ExperimentRunner::runPair(const SimConfig &config)
{
    SimConfig base_cfg = config;
    base_cfg.prefetcher = PrefetcherKind::None;
    base_cfg.extPrefetchToL2 = false;

    RunPair pair;
    pair.run = run(config);
    pair.base = run(base_cfg);
    pair.paired = pairedMetrics(pair.run, pair.base);
    return pair;
}

std::size_t
ExperimentRunner::simulationsRun()
{
    std::lock_guard<std::mutex> lock(g_mutex);
    return g_runs;
}

SimConfig
defaultConfig(const std::string &workload, PrefetcherKind kind)
{
    SimConfig config;
    config.workload = workload;
    config.prefetcher = kind;
    if (kind == PrefetcherKind::Hierarchical)
        config.hier.trackBundleStats = true;
    return config;
}

} // namespace hp
