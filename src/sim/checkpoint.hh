/**
 * @file
 * Warmup checkpointing: capture the complete post-warmup
 * microarchitectural state of a Simulator once per *warmup
 * equivalence class* and fork every matching measurement run from it
 * instead of re-simulating the warmup phase.
 *
 * Two configs belong to the same class when warmupConfig() — the
 * config with every warmup-irrelevant field pinned to a fixed value —
 * compares equal. The CheckpointStore dedups in-flight warmups with
 * the same future-based scheme as the runner's result cache, so
 * concurrent grid points block on the one warmup instead of racing.
 * With HP_CKPT_DIR set, checkpoints are also spilled to disk and
 * reused across processes (see DESIGN.md §8 for the blob format).
 *
 * Correctness bar: a restored run must be bit-identical to a cold
 * run — enforced by tests/sim/checkpoint_replay_test and the
 * checkpoint_equivalence bench.
 */

#ifndef HP_SIM_CHECKPOINT_HH
#define HP_SIM_CHECKPOINT_HH

#include <cstdint>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "sim/config.hh"
#include "sim/metrics.hh"

namespace hp
{

class Simulator;

/**
 * Version of the checkpoint blob encoding. Bump whenever any
 * component's serializeState layout changes — a version mismatch
 * rejects the blob instead of misinterpreting it.
 */
constexpr std::uint32_t kCheckpointFormatVersion = 1;

/**
 * The warmup-equivalence twin of @p config: every field the warmup
 * phase never reads is pinned to a fixed value. Builds on
 * measurementConfig() (fields unread by the configured prefetcher)
 * and additionally pins measureInsts and longRangePercentile, which
 * are only read at or after the warmup boundary.
 */
SimConfig warmupConfig(const SimConfig &config);

/**
 * An immutable post-warmup state blob plus the warmup-config key that
 * produced it. The payload is the canonical StateWriter stream of
 * Simulator::serializeState at the warmup boundary.
 */
class Checkpoint
{
  public:
    Checkpoint(std::string warmup_key,
               std::vector<std::uint8_t> payload)
        : warmupKey_(std::move(warmup_key)), payload_(std::move(payload))
    {
    }

    /** Serializes @p sim (stopped at the warmup boundary). */
    static Checkpoint capture(Simulator &sim, std::string warmup_key);

    /**
     * Restores this checkpoint's state into a freshly constructed
     * @p sim. @return false (with @p error set) if the payload is
     * truncated or has trailing bytes; @p sim is then unusable.
     */
    bool restoreInto(Simulator &sim, std::string *error) const;

    /** Encodes magic + version + key + payload into one file image. */
    std::vector<std::uint8_t> encode() const;

    /**
     * Validates and parses a file image. @return nullptr with
     * @p error set on bad magic, version mismatch, or truncation.
     */
    static std::shared_ptr<const Checkpoint>
    decode(const std::vector<std::uint8_t> &bytes, std::string *error);

    const std::string &warmupKey() const { return warmupKey_; }
    const std::vector<std::uint8_t> &payload() const { return payload_; }

  private:
    std::string warmupKey_;
    std::vector<std::uint8_t> payload_;
};

/**
 * Process-wide cache of warmed checkpoints keyed by warmup config,
 * future-based like the runner's result cache: the first requester of
 * a class owns producing the checkpoint, every later requester blocks
 * on the same future.
 */
class CheckpointStore
{
  public:
    using CheckpointPtr = std::shared_ptr<const Checkpoint>;

    struct Acquire
    {
        std::shared_future<CheckpointPtr> future;
        /** True if this caller must produce and publish() the blob. */
        bool owner = false;
    };

    /** Finds or creates the slot for @p warmup_config's class. */
    Acquire acquire(const SimConfig &warmup_config);

    /** Fulfills the class's future (owner only; nullptr = failed). */
    void publish(const SimConfig &warmup_config, CheckpointPtr ckpt);

    /** Number of warmup classes seen (diagnostics/tests). */
    std::size_t size() const;

    static CheckpointStore &global();

  private:
    struct Slot
    {
        SimConfig config;
        std::promise<CheckpointPtr> promise;
        std::shared_future<CheckpointPtr> future;
        bool published = false;
    };

    mutable std::mutex mutex_;
    std::unordered_map<std::uint64_t, std::vector<std::unique_ptr<Slot>>>
        slots_;
};

/** HP_CKPT_DIR, or empty when disk spill is disabled. */
std::string checkpointDir();

/** File name for a class: "<workload>-<warmup-config-hash>.ckpt". */
std::string checkpointFileName(const SimConfig &warmup_config);

/** Atomically (tmp + rename) writes @p ckpt under @p dir. */
bool saveCheckpointFile(const std::string &dir,
                        const std::string &file_name,
                        const Checkpoint &ckpt);

/**
 * Loads and validates a checkpoint file. @return nullptr (with
 * @p error set) when missing, malformed, version-mismatched, or
 * keyed for a different warmup config than @p expected_key.
 */
std::shared_ptr<const Checkpoint>
loadCheckpointFile(const std::string &path,
                   const std::string &expected_key, std::string *error);

/**
 * True when runCheckpointed() will use the checkpoint path for
 * @p config: the config has a warmup phase and HP_CKPT is not "0".
 */
bool checkpointingEnabled(const SimConfig &config);

/**
 * Runs @p config to completion, reusing (or creating) the shared
 * warmup checkpoint of its class. Results are bit-identical to
 * Simulator(config).run(); any checkpoint problem falls back to a
 * cold run rather than failing the experiment.
 */
SimMetrics runCheckpointed(const SimConfig &config);

} // namespace hp

#endif // HP_SIM_CHECKPOINT_HH
