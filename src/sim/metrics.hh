/**
 * @file
 * Metrics extracted from a simulation run, plus the paired-run
 * computations (speedup, coverage over the FDIP baseline) used by every
 * table and figure.
 */

#ifndef HP_SIM_METRICS_HH
#define HP_SIM_METRICS_HH

#include <cstdint>

#include "cache/hierarchy.hh"
#include "core/hierarchical_prefetcher.hh"
#include "stats/registry.hh"
#include "workload/request_engine.hh"

namespace hp
{

/** Everything a single simulation run reports (measurement phase). */
struct SimMetrics
{
    std::uint64_t cycles = 0;
    std::uint64_t instructions = 0;

    double ipc() const { return cycles ? double(instructions) / cycles : 0.0; }

    // Front-end behaviour.
    std::uint64_t condBranches = 0;
    std::uint64_t condMispredicts = 0;
    std::uint64_t indirectMispredicts = 0;
    std::uint64_t rasMispredicts = 0;
    std::uint64_t btbMissBlocks = 0;
    std::uint64_t fetchStallCycles = 0;
    std::uint64_t backendStallCycles = 0;

    // Memory system (instruction path).
    HierarchyStats mem;
    std::uint64_t itlbAccesses = 0;
    std::uint64_t itlbMisses = 0;

    // Hierarchical Prefetcher internals (when active).
    HierarchicalStats hier;
    bool hierActive = false;

    // Long-range (Figure 12) probe.
    std::uint64_t longRangeAccesses = 0;
    std::uint64_t longRangeL2Misses = 0;

    // Synthetic data-side DRAM traffic for bandwidth normalization.
    std::uint64_t dataDramBytes = 0;

    // Workload stream statistics.
    EngineStats engine;

    /**
     * Measurement-phase delta of every registered counter, keyed by
     * dotted path (see Simulator::stats()). The scalar fields above
     * are derived from this snapshot; it also feeds the JSON run
     * reports (sim/run_report.hh).
     */
    StatsSnapshot stats;

    /** Total simulated DRAM traffic in bytes (Figure 16 numerator). */
    std::uint64_t
    totalDramBytes() const
    {
        return mem.dramDemandBytes + mem.dramFdipBytes +
               mem.dramExtBytes + mem.dramMetadataReadBytes +
               mem.dramMetadataWriteBytes + dataDramBytes;
    }
};

/** Paired-run derived metrics (prefetcher run vs FDIP-only baseline). */
struct PairedMetrics
{
    /** IPC speedup over the FDIP baseline (e.g. 0.066 = +6.6%). */
    double speedup = 0.0;

    /**
     * L1-I coverage on top of FDIP: fraction of the baseline's demand
     * misses that the Ext prefetcher turned into hits or merges.
     */
    double coverageL1 = 0.0;

    /** L2 coverage on top of FDIP (same definition, at the L2). */
    double coverageL2 = 0.0;

    /** Ext prefetch accuracy. */
    double accuracy = 0.0;

    /** Fraction of demand-serving Ext prefetches arriving late. */
    double lateFraction = 0.0;

    /** Average useful-prefetch distance in cache blocks. */
    double avgDistance = 0.0;

    /** Total DRAM traffic relative to the baseline (1.0 = equal). */
    double bandwidthRatio = 1.0;

    /** Long-range L2 misses eliminated relative to the baseline. */
    double longRangeEliminated = 0.0;

    /** Instruction miss-latency cycles relative to the baseline. */
    double missLatencyRatio = 1.0;
};

/** Computes the paired metrics for @p run against @p baseline. */
PairedMetrics pairedMetrics(const SimMetrics &run,
                            const SimMetrics &baseline);

} // namespace hp

#endif // HP_SIM_METRICS_HH
