/**
 * @file
 * Experiment runner: memoized simulation runs plus the paired
 * run-vs-FDIP-baseline computation every figure needs. Within one
 * process, identical configurations are simulated once.
 */

#ifndef HP_SIM_RUNNER_HH
#define HP_SIM_RUNNER_HH

#include <string>

#include "sim/config.hh"
#include "sim/metrics.hh"
#include "sim/simulator.hh"

namespace hp
{

/** A prefetcher run together with its FDIP-only baseline. */
struct RunPair
{
    SimMetrics run;
    SimMetrics base;
    PairedMetrics paired;
};

/** Memoized simulation driver. */
class ExperimentRunner
{
  public:
    /** Runs (or returns the cached result of) @p config. */
    static const SimMetrics &run(const SimConfig &config);

    /** Runs @p config and its FDIP-only twin; computes paired metrics. */
    static RunPair runPair(const SimConfig &config);

    /** Serializes every field that affects the simulation outcome. */
    static std::string configKey(const SimConfig &config);

    /** Number of distinct simulations performed so far. */
    static std::size_t simulationsRun();
};

/** A SimConfig with the paper's Table 1 defaults for @p workload. */
SimConfig defaultConfig(const std::string &workload,
                        PrefetcherKind kind = PrefetcherKind::None);

} // namespace hp

#endif // HP_SIM_RUNNER_HH
