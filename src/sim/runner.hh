/**
 * @file
 * Experiment runner: memoized simulation runs plus the paired
 * run-vs-FDIP-baseline computation every figure needs. Within one
 * process, identical configurations are simulated once — even when
 * requested concurrently from many threads: the cache stores futures,
 * so every requester of a config blocks on the one in-flight
 * simulation instead of racing or double-running it.
 */

#ifndef HP_SIM_RUNNER_HH
#define HP_SIM_RUNNER_HH

#include <future>
#include <string>

#include "sim/config.hh"
#include "sim/metrics.hh"
#include "sim/simulator.hh"

namespace hp
{

/** A prefetcher run together with its FDIP-only baseline. */
struct RunPair
{
    SimMetrics run;
    SimMetrics base;
    PairedMetrics paired;
};

/** The FDIP-only twin of @p config (the baseline of every pair). */
SimConfig fdipBaseline(const SimConfig &config);

/**
 * The measurement-equivalence twin of @p config: every field the
 * simulation never reads under this config's prefetcher kind is
 * pinned to its default. Two configs with equal measurementConfig()
 * produce bit-identical SimMetrics, so the experiment cache dedups on
 * it — a sweep over, say, eip.lookahead no longer re-simulates the
 * None/Hierarchical points that never read that knob.
 */
SimConfig measurementConfig(const SimConfig &config);

/** Assembles a RunPair from two finished runs. */
RunPair makeRunPair(SimMetrics run, SimMetrics base);

/** Memoized, thread-safe simulation driver. */
class ExperimentRunner
{
  public:
    /**
     * Runs (or returns the cached result of) @p config. Returns by
     * value: the cache is shared across threads, so handing out
     * references into it would race with concurrent insertions.
     */
    static SimMetrics run(const SimConfig &config);

    /** Runs @p config and its FDIP-only twin; computes paired
     *  metrics. The two runs execute concurrently on the global
     *  executor when it has idle workers. */
    static RunPair runPair(const SimConfig &config);

    /** Serializes every field that affects the simulation outcome
     *  (debugging aid; the cache itself keys on configHash). */
    static std::string configKey(const SimConfig &config);

    /** Number of distinct simulations performed so far. */
    static std::size_t simulationsRun();
};

namespace detail
{

/**
 * Finds or creates the cache slot for @p config and returns its
 * future. If this call created the slot, @p task is set to the
 * simulation task and the caller is responsible for executing it
 * (inline or on a worker thread); every other caller gets the same
 * future and an invalid task.
 */
std::shared_future<SimMetrics>
acquireSimulation(const SimConfig &config,
                  std::packaged_task<SimMetrics()> *task);

} // namespace detail

/** A SimConfig with the paper's Table 1 defaults for @p workload. */
SimConfig defaultConfig(const std::string &workload,
                        PrefetcherKind kind = PrefetcherKind::None);

} // namespace hp

#endif // HP_SIM_RUNNER_HH
