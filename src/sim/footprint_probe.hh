/**
 * @file
 * Trigger-footprint similarity probe (Figure 4 and the Bundle Jaccard
 * study): for a given trigger definition, collect the set of the next K
 * unique cache blocks after each trigger occurrence and measure the
 * Jaccard index between consecutive occurrences of the same trigger, as
 * a function of the footprint size K.
 */

#ifndef HP_SIM_FOOTPRINT_PROBE_HH
#define HP_SIM_FOOTPRINT_PROBE_HH

#include <array>
#include <cstdint>
#include <list>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "isa/inst.hh"
#include "stats/histogram.hh"

namespace hp
{

/** Trigger definitions matching the compared prefetchers. */
enum class TriggerKind : std::uint8_t
{
    /** EFetch-style: hash of the top 3 call-stack entries, at calls. */
    Signature,

    /** MANA/EIP-style: entry to a new spatial region / cache block. */
    BlockAddress,

    /** Hierarchical: tagged Bundle entries. */
    Bundle,
};

/** Footprint sizes (in unique cache blocks) evaluated, per Figure 4. */
constexpr std::array<unsigned, 6> kFootprintSizes =
    {16, 32, 64, 128, 256, 512};

/** The probe: feed the committed instruction stream, read averages. */
class FootprintProbe
{
  public:
    /**
     * @param kind          Trigger definition.
     * @param sample_period Open a collector every Nth trigger
     *                      occurrence (sampling keeps the probe fast).
     */
    explicit FootprintProbe(TriggerKind kind, unsigned sample_period = 4);

    /** Observes one committed instruction. */
    void onCommit(const DynInst &inst);

    /**
     * Finishes every open collector (end of stream). Call before
     * reading the Jaccard averages.
     */
    void finalize();

    /** Mean Jaccard at footprint size kFootprintSizes[i]. */
    double meanJaccard(std::size_t size_index) const;

    std::uint64_t triggersSeen() const { return triggers_; }

  private:
    struct Collector
    {
        std::uint64_t key = 0;
        /** Unique blocks in arrival order. */
        std::vector<Addr> blocks;
        /** Fast membership for the uniqueness check. */
        std::unordered_set<Addr> seen;
    };

    void trigger(std::uint64_t key);
    void finishCollector(Collector &c);

    TriggerKind kind_;
    unsigned samplePeriod_;
    std::uint64_t triggers_ = 0;

    std::list<Collector> open_;

    /** Previous full footprint per trigger key (capped). */
    std::unordered_map<std::uint64_t, std::vector<Addr>> previous_;

    /** Per-size Jaccard accumulators. */
    std::array<Accumulator, kFootprintSizes.size()> jaccard_;

    // Trigger state.
    std::vector<Addr> callStack_;
    Addr lastBlock_ = ~Addr(0);
    Addr lastRegion_ = ~Addr(0);

    static constexpr std::size_t kMaxOpen = 48;
    static constexpr std::size_t kMaxTracked = 8192;
};

} // namespace hp

#endif // HP_SIM_FOOTPRINT_PROBE_HH
