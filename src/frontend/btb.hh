/**
 * @file
 * Branch Target Buffer. FDIP's run-ahead is gated on the BTB knowing
 * the target of every taken branch on the path; BTB misses are the main
 * structural limiter of FDIP in server workloads (Section 2.1).
 */

#ifndef HP_FRONTEND_BTB_HH
#define HP_FRONTEND_BTB_HH

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "stats/registry.hh"
#include "util/types.hh"

namespace hp
{

/**
 * Set-associative BTB with LRU replacement. Passing 0 entries selects
 * an infinite-capacity BTB (the Figure 14 study).
 */
class Btb
{
  public:
    /**
     * @param entries Total entries (paper: 8K); 0 means infinite.
     * @param ways    Associativity (paper: 8).
     */
    explicit Btb(unsigned entries = 8192, unsigned ways = 8);

    /** Looks up the target for branch @p pc; refreshes LRU on hit. */
    std::optional<Addr> lookup(Addr pc);

    /** Installs or updates the mapping after the branch resolves. */
    void update(Addr pc, Addr target);

    bool infinite() const { return infinite_; }

    std::uint64_t lookups() const { return lookups_; }
    std::uint64_t misses() const { return misses_; }

    /** Serializes/restores table contents and counters. */
    template <class Ar> void serializeState(Ar &ar);

    /** Registers this BTB's counters under @p prefix. */
    void
    registerStats(StatsRegistry &reg, const std::string &prefix) const
    {
        reg.add(prefix + ".lookups", [this] { return lookups_; });
        reg.add(prefix + ".misses", [this] { return misses_; });
    }

  private:
    struct Way
    {
        bool valid = false;
        Addr pc = 0;
        Addr target = 0;
        std::uint64_t lastUse = 0;

        template <class Ar>
        void
        serializeState(Ar &ar)
        {
            ar.value(valid);
            ar.value(pc);
            ar.value(target);
            ar.value(lastUse);
        }
    };

    unsigned setIndex(Addr pc) const;

    bool infinite_;
    unsigned numSets_ = 0;
    unsigned ways_ = 0;
    std::uint64_t useClock_ = 0;
    std::vector<Way> table_;
    std::unordered_map<Addr, Addr> infTable_;

    std::uint64_t lookups_ = 0;
    std::uint64_t misses_ = 0;
};

} // namespace hp

#endif // HP_FRONTEND_BTB_HH
