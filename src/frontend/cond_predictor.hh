/**
 * @file
 * Conditional branch direction predictor: a TAGE-lite design (bimodal
 * base plus geometric-history tagged tables) standing in for the 64 KB
 * L-TAGE the paper configures. What matters for this study is the
 * *mispredict rate profile* on the synthetic control flow — mostly
 * biased branches with occasional context-dependent flips — which this
 * predictor captures well.
 */

#ifndef HP_FRONTEND_COND_PREDICTOR_HH
#define HP_FRONTEND_COND_PREDICTOR_HH

#include <cstdint>
#include <vector>

#include "stats/registry.hh"
#include "util/types.hh"

namespace hp
{

/** TAGE-like conditional direction predictor. */
class CondPredictor
{
  public:
    /**
     * @param log_base    log2 of bimodal table entries.
     * @param log_tagged  log2 of each tagged table's entries.
     * @param num_tables  Number of tagged tables.
     */
    CondPredictor(unsigned log_base = 14, unsigned log_tagged = 11,
                  unsigned num_tables = 4);

    /** Predicts the direction of the branch at @p pc. */
    bool predict(Addr pc);

    /**
     * Trains the predictor with the resolved outcome and shifts the
     * global history. Call exactly once per dynamic branch, in order.
     */
    void update(Addr pc, bool taken);

    std::uint64_t predictions() const { return predictions_; }
    std::uint64_t mispredicts() const { return mispredicts_; }

    double
    mispredictRate() const
    {
        return predictions_ ? double(mispredicts_) / predictions_ : 0.0;
    }

    /** Serializes/restores tables, history, and counters. */
    template <class Ar> void serializeState(Ar &ar);

    /** Registers this predictor's counters under @p prefix. */
    void
    registerStats(StatsRegistry &reg, const std::string &prefix) const
    {
        reg.add(prefix + ".predictions",
                [this] { return predictions_; });
        reg.add(prefix + ".mispredicts",
                [this] { return mispredicts_; });
    }

  private:
    struct TaggedEntry
    {
        std::uint16_t tag = 0;
        std::int8_t counter = 0;
        std::uint8_t useful = 0;

        template <class Ar>
        void
        serializeState(Ar &ar)
        {
            ar.value(tag);
            ar.value(counter);
            ar.value(useful);
        }
    };

    unsigned taggedIndex(unsigned table, Addr pc) const;
    std::uint16_t taggedTag(unsigned table, Addr pc) const;
    std::uint64_t foldedHistory(unsigned bits) const;

    unsigned logBase_;
    unsigned logTagged_;
    unsigned numTables_;
    std::vector<std::int8_t> base_;
    std::vector<std::vector<TaggedEntry>> tagged_;
    std::vector<unsigned> historyLens_;
    std::uint64_t history_ = 0;

    // Prediction bookkeeping between predict() and update().
    int providerTable_ = -1;
    unsigned providerIndex_ = 0;
    bool lastPrediction_ = false;
    Addr lastPc_ = 0;

    std::uint64_t predictions_ = 0;
    std::uint64_t mispredicts_ = 0;
};

} // namespace hp

#endif // HP_FRONTEND_COND_PREDICTOR_HH
