/**
 * @file
 * Indirect target predictor: a compact ITTAGE-like design (path-history
 * tagged tables over a base last-target table) standing in for the
 * 64 KB ITTAGE the paper integrates into gem5.
 */

#ifndef HP_FRONTEND_INDIRECT_PREDICTOR_HH
#define HP_FRONTEND_INDIRECT_PREDICTOR_HH

#include <cstdint>
#include <vector>

#include "stats/registry.hh"
#include "util/types.hh"

namespace hp
{

/** ITTAGE-like indirect branch target predictor. */
class IndirectPredictor
{
  public:
    /**
     * @param log_base   log2 of the base (last-target) table entries.
     * @param log_tagged log2 of each tagged table's entries.
     * @param num_tables Number of path-history tagged tables.
     */
    IndirectPredictor(unsigned log_base = 12, unsigned log_tagged = 10,
                      unsigned num_tables = 3);

    /** Predicts the target of the indirect branch at @p pc (0=unknown). */
    Addr predict(Addr pc);

    /** Trains with the resolved target and shifts the path history. */
    void update(Addr pc, Addr target);

    std::uint64_t predictions() const { return predictions_; }
    std::uint64_t mispredicts() const { return mispredicts_; }

    /** Serializes/restores tables, path history, and counters. */
    template <class Ar> void serializeState(Ar &ar);

    /** Registers this predictor's counters under @p prefix. */
    void
    registerStats(StatsRegistry &reg, const std::string &prefix) const
    {
        reg.add(prefix + ".predictions",
                [this] { return predictions_; });
        reg.add(prefix + ".mispredicts",
                [this] { return mispredicts_; });
    }

  private:
    struct Entry
    {
        std::uint16_t tag = 0;
        Addr target = 0;
        std::uint8_t confidence = 0;

        template <class Ar>
        void
        serializeState(Ar &ar)
        {
            ar.value(tag);
            ar.value(target);
            ar.value(confidence);
        }
    };

    unsigned indexOf(unsigned table, Addr pc) const;
    std::uint16_t tagOf(unsigned table, Addr pc) const;

    unsigned logBase_;
    unsigned logTagged_;
    unsigned numTables_;
    std::vector<Addr> base_;
    std::vector<std::vector<Entry>> tagged_;
    std::vector<unsigned> historyLens_;
    std::uint64_t pathHistory_ = 0;

    int providerTable_ = -1;
    unsigned providerIndex_ = 0;
    Addr lastPrediction_ = 0;
    Addr lastPc_ = 0;

    std::uint64_t predictions_ = 0;
    std::uint64_t mispredicts_ = 0;
};

} // namespace hp

#endif // HP_FRONTEND_INDIRECT_PREDICTOR_HH
