/**
 * @file
 * Return Address Stack with a bounded depth: deep call chains wrap and
 * corrupt predictions, exactly the behaviour caller-callee prefetchers
 * like RDIP/EFetch build their signatures around.
 */

#ifndef HP_FRONTEND_RAS_HH
#define HP_FRONTEND_RAS_HH

#include <cstdint>
#include <vector>

#include "stats/registry.hh"
#include "util/types.hh"

namespace hp
{

/** Circular return-address stack. */
class Ras
{
  public:
    explicit Ras(unsigned depth = 32);

    /** Pushes the return address of a call. */
    void push(Addr return_addr);

    /**
     * Pops the predicted return target.
     * @return 0 when the stack has underflowed (prediction unknown).
     */
    Addr pop();

    /** Peeks the @p n top entries, newest first (for signatures). */
    std::vector<Addr> top(unsigned n) const;

    unsigned size() const { return size_; }
    unsigned depth() const { return depth_; }

    std::uint64_t overflows() const { return overflows_; }
    std::uint64_t underflows() const { return underflows_; }

    /** Serializes/restores the stack and counters. */
    template <class Ar>
    void
    serializeState(Ar &ar)
    {
        if (!checkShape(ar, stack_))
            return;
        for (Addr &a : stack_)
            ar.value(a);
        ar.value(topIdx_);
        ar.value(size_);
        ar.value(overflows_);
        ar.value(underflows_);
    }

    /** Registers this stack's counters under @p prefix. */
    void
    registerStats(StatsRegistry &reg, const std::string &prefix) const
    {
        reg.add(prefix + ".overflows", [this] { return overflows_; });
        reg.add(prefix + ".underflows", [this] { return underflows_; });
    }

  private:
    unsigned depth_;
    std::vector<Addr> stack_;
    unsigned topIdx_ = 0;
    unsigned size_ = 0;
    std::uint64_t overflows_ = 0;
    std::uint64_t underflows_ = 0;
};

} // namespace hp

#endif // HP_FRONTEND_RAS_HH
