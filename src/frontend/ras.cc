#include "frontend/ras.hh"

#include "util/logging.hh"

namespace hp
{

Ras::Ras(unsigned depth)
    : depth_(depth), stack_(depth, 0)
{
    fatalIf(depth == 0, "RAS depth must be positive");
}

void
Ras::push(Addr return_addr)
{
    topIdx_ = (topIdx_ + 1) % depth_;
    stack_[topIdx_] = return_addr;
    if (size_ < depth_)
        ++size_;
    else
        ++overflows_;
}

Addr
Ras::pop()
{
    if (size_ == 0) {
        ++underflows_;
        return 0;
    }
    Addr value = stack_[topIdx_];
    topIdx_ = (topIdx_ + depth_ - 1) % depth_;
    --size_;
    return value;
}

std::vector<Addr>
Ras::top(unsigned n) const
{
    std::vector<Addr> result;
    unsigned available = std::min(n, size_);
    unsigned idx = topIdx_;
    for (unsigned i = 0; i < available; ++i) {
        result.push_back(stack_[idx]);
        idx = (idx + depth_ - 1) % depth_;
    }
    return result;
}

} // namespace hp
