#include "frontend/cond_predictor.hh"

#include "util/hash.hh"
#include "util/logging.hh"
#include "util/serialize.hh"

namespace hp
{

CondPredictor::CondPredictor(unsigned log_base, unsigned log_tagged,
                             unsigned num_tables)
    : logBase_(log_base), logTagged_(log_tagged), numTables_(num_tables)
{
    fatalIf(num_tables == 0 || num_tables > 8,
            "CondPredictor supports 1..8 tagged tables");
    base_.assign(1u << logBase_, 0);
    tagged_.assign(numTables_,
                   std::vector<TaggedEntry>(1u << logTagged_));
    // Geometric history lengths, TAGE-style.
    unsigned len = 4;
    for (unsigned t = 0; t < numTables_; ++t) {
        historyLens_.push_back(len);
        len *= 3;
        if (len > 64)
            len = 64;
    }
}

std::uint64_t
CondPredictor::foldedHistory(unsigned bits) const
{
    std::uint64_t masked =
        bits >= 64 ? history_ : (history_ & ((1ull << bits) - 1));
    return mix64(masked);
}

unsigned
CondPredictor::taggedIndex(unsigned table, Addr pc) const
{
    std::uint64_t h = hashCombine(foldedHistory(historyLens_[table]),
                                  pc >> 2);
    return static_cast<unsigned>(h & ((1u << logTagged_) - 1));
}

std::uint16_t
CondPredictor::taggedTag(unsigned table, Addr pc) const
{
    std::uint64_t h = hashCombine(foldedHistory(historyLens_[table]) * 3,
                                  (pc >> 2) * 7);
    return static_cast<std::uint16_t>((h >> 13) & 0x3fff);
}

bool
CondPredictor::predict(Addr pc)
{
    providerTable_ = -1;
    lastPc_ = pc;

    for (int t = static_cast<int>(numTables_) - 1; t >= 0; --t) {
        unsigned idx = taggedIndex(t, pc);
        const TaggedEntry &e = tagged_[t][idx];
        if (e.tag == taggedTag(t, pc)) {
            providerTable_ = t;
            providerIndex_ = idx;
            lastPrediction_ = e.counter >= 0;
            return lastPrediction_;
        }
    }

    unsigned idx = static_cast<unsigned>(mix64(pc >> 2)
                                         & ((1u << logBase_) - 1));
    providerIndex_ = idx;
    lastPrediction_ = base_[idx] >= 0;
    return lastPrediction_;
}

void
CondPredictor::update(Addr pc, bool taken)
{
    panicIf(pc != lastPc_, "CondPredictor::update out of order");
    ++predictions_;
    bool correct = (lastPrediction_ == taken);
    if (!correct)
        ++mispredicts_;

    auto bump = [taken](std::int8_t &ctr) {
        if (taken && ctr < 3)
            ++ctr;
        else if (!taken && ctr > -4)
            --ctr;
    };

    if (providerTable_ >= 0) {
        TaggedEntry &e = tagged_[providerTable_][providerIndex_];
        bump(e.counter);
        if (correct && e.useful < 3)
            ++e.useful;
        if (!correct && e.useful > 0)
            --e.useful;
    } else {
        bump(base_[providerIndex_]);
    }

    // On a mispredict, try to allocate in a longer-history table.
    if (!correct && providerTable_ + 1 < static_cast<int>(numTables_)) {
        for (unsigned t = providerTable_ + 1; t < numTables_; ++t) {
            unsigned idx = taggedIndex(t, pc);
            TaggedEntry &e = tagged_[t][idx];
            if (e.useful == 0) {
                e.tag = taggedTag(t, pc);
                e.counter = taken ? 0 : -1;
                break;
            }
            // Age the entry that blocked allocation.
            --e.useful;
        }
    }

    history_ = (history_ << 1) | (taken ? 1 : 0);
}

template <class Ar>
void
CondPredictor::serializeState(Ar &ar)
{
    io(ar, base_);
    io(ar, tagged_);
    io(ar, history_);
    io(ar, providerTable_);
    io(ar, providerIndex_);
    io(ar, lastPrediction_);
    io(ar, lastPc_);
    io(ar, predictions_);
    io(ar, mispredicts_);
}

template void CondPredictor::serializeState(StateWriter &);
template void CondPredictor::serializeState(StateLoader &);

} // namespace hp
