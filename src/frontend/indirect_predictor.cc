#include "frontend/indirect_predictor.hh"

#include "util/hash.hh"
#include "util/serialize.hh"
#include "util/logging.hh"

namespace hp
{

IndirectPredictor::IndirectPredictor(unsigned log_base, unsigned log_tagged,
                                     unsigned num_tables)
    : logBase_(log_base), logTagged_(log_tagged), numTables_(num_tables)
{
    fatalIf(num_tables == 0 || num_tables > 8,
            "IndirectPredictor supports 1..8 tagged tables");
    base_.assign(1u << logBase_, 0);
    tagged_.assign(numTables_, std::vector<Entry>(1u << logTagged_));
    unsigned len = 6;
    for (unsigned t = 0; t < numTables_; ++t) {
        historyLens_.push_back(len);
        len *= 3;
        if (len > 60)
            len = 60;
    }
}

unsigned
IndirectPredictor::indexOf(unsigned table, Addr pc) const
{
    std::uint64_t hist = historyLens_[table] >= 64
        ? pathHistory_
        : (pathHistory_ & ((1ull << historyLens_[table]) - 1));
    std::uint64_t h = hashCombine(mix64(hist), pc >> 2);
    return static_cast<unsigned>(h & ((1u << logTagged_) - 1));
}

std::uint16_t
IndirectPredictor::tagOf(unsigned table, Addr pc) const
{
    std::uint64_t hist = historyLens_[table] >= 64
        ? pathHistory_
        : (pathHistory_ & ((1ull << historyLens_[table]) - 1));
    std::uint64_t h = hashCombine(mix64(hist * 5), (pc >> 2) * 11);
    return static_cast<std::uint16_t>((h >> 17) & 0x3fff);
}

Addr
IndirectPredictor::predict(Addr pc)
{
    providerTable_ = -1;
    lastPc_ = pc;

    for (int t = static_cast<int>(numTables_) - 1; t >= 0; --t) {
        unsigned idx = indexOf(t, pc);
        const Entry &e = tagged_[t][idx];
        if (e.tag == tagOf(t, pc) && e.target != 0) {
            providerTable_ = t;
            providerIndex_ = idx;
            lastPrediction_ = e.target;
            return lastPrediction_;
        }
    }

    unsigned idx = static_cast<unsigned>(mix64(pc >> 2)
                                         & ((1u << logBase_) - 1));
    providerIndex_ = idx;
    lastPrediction_ = base_[idx];
    return lastPrediction_;
}

void
IndirectPredictor::update(Addr pc, Addr target)
{
    panicIf(pc != lastPc_, "IndirectPredictor::update out of order");
    ++predictions_;
    bool correct = (lastPrediction_ == target);
    if (!correct)
        ++mispredicts_;

    if (providerTable_ >= 0) {
        Entry &e = tagged_[providerTable_][providerIndex_];
        if (correct) {
            if (e.confidence < 3)
                ++e.confidence;
        } else if (e.confidence > 0) {
            --e.confidence;
        } else {
            e.target = target;
        }
    } else {
        base_[providerIndex_] = target;
    }

    if (!correct && providerTable_ + 1 < static_cast<int>(numTables_)) {
        for (unsigned t = providerTable_ + 1; t < numTables_; ++t) {
            unsigned idx = indexOf(t, pc);
            Entry &e = tagged_[t][idx];
            if (e.confidence == 0) {
                e.tag = tagOf(t, pc);
                e.target = target;
                e.confidence = 1;
                break;
            }
            --e.confidence;
        }
    }

    pathHistory_ = (pathHistory_ << 4) ^ (mix64(target) & 0xf);
}

template <class Ar>
void
IndirectPredictor::serializeState(Ar &ar)
{
    io(ar, base_);
    io(ar, tagged_);
    io(ar, pathHistory_);
    io(ar, providerTable_);
    io(ar, providerIndex_);
    io(ar, lastPrediction_);
    io(ar, lastPc_);
    io(ar, predictions_);
    io(ar, mispredicts_);
}

template void IndirectPredictor::serializeState(StateWriter &);
template void IndirectPredictor::serializeState(StateLoader &);

} // namespace hp
