#include "frontend/btb.hh"

#include "util/hash.hh"
#include "util/logging.hh"
#include "util/serialize.hh"

namespace hp
{

Btb::Btb(unsigned entries, unsigned ways)
    : infinite_(entries == 0), ways_(ways)
{
    if (infinite_)
        return;
    fatalIf(ways == 0 || entries % ways != 0, "BTB geometry invalid");
    numSets_ = entries / ways;
    fatalIf((numSets_ & (numSets_ - 1)) != 0,
            "BTB set count must be a power of two");
    table_.resize(entries);
}

unsigned
Btb::setIndex(Addr pc) const
{
    return static_cast<unsigned>(mix64(pc >> 2) & (numSets_ - 1));
}

std::optional<Addr>
Btb::lookup(Addr pc)
{
    ++lookups_;
    if (infinite_) {
        auto it = infTable_.find(pc);
        if (it == infTable_.end()) {
            ++misses_;
            return std::nullopt;
        }
        return it->second;
    }

    Way *set = &table_[setIndex(pc) * ways_];
    for (unsigned w = 0; w < ways_; ++w) {
        if (set[w].valid && set[w].pc == pc) {
            set[w].lastUse = ++useClock_;
            return set[w].target;
        }
    }
    ++misses_;
    return std::nullopt;
}

void
Btb::update(Addr pc, Addr target)
{
    if (infinite_) {
        infTable_[pc] = target;
        return;
    }

    Way *set = &table_[setIndex(pc) * ways_];
    Way *victim = &set[0];
    for (unsigned w = 0; w < ways_; ++w) {
        if (set[w].valid && set[w].pc == pc) {
            victim = &set[w];
            break;
        }
        if (!set[w].valid) {
            victim = &set[w];
            break;
        }
        if (set[w].lastUse < victim->lastUse)
            victim = &set[w];
    }
    victim->valid = true;
    victim->pc = pc;
    victim->target = target;
    victim->lastUse = ++useClock_;
}

template <class Ar>
void
Btb::serializeState(Ar &ar)
{
    if (!checkShape(ar, table_))
        return;
    io(ar, useClock_);
    io(ar, table_);
    io(ar, infTable_);
    io(ar, lookups_);
    io(ar, misses_);
}

template void Btb::serializeState(StateWriter &);
template void Btb::serializeState(StateLoader &);

} // namespace hp
