/**
 * @file
 * EFetch (Chadha et al., PACT'14): the state-of-the-art caller-callee
 * prefetcher the paper compares against. A signature formed from the
 * top three call-stack entries predicts the next callee(s); each
 * predicted callee's first 64 blocks are prefetched according to two
 * learned 32-block bit vectors (the paper's "ordered list of 3 callees,
 * with 2 bit vectors for each callee" configuration).
 *
 * The look-ahead parameter (callees predicted per trigger) drives the
 * Figure 2b sweep; deeper look-ahead chains predictions through
 * hypothetical signatures.
 */

#ifndef HP_PREFETCH_EFETCH_HH
#define HP_PREFETCH_EFETCH_HH

#include <array>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "prefetch/prefetcher.hh"

namespace hp
{

/** EFetch configuration. */
struct EFetchConfig
{
    /** Callee-predictor entries (paper methodology: 4K). */
    unsigned tableEntries = 4096;

    /** Call-stack items hashed into the signature (paper: 3). */
    unsigned signatureDepth = 3;

    /** Callees stored per entry (paper: 3). */
    unsigned calleesPerEntry = 3;

    /** Callees predicted (and prefetched) per trigger. */
    unsigned lookahead = 1;

    /** Footprint table entries (per-callee touched-block vectors). */
    unsigned footprintEntries = 4096;

    bool operator==(const EFetchConfig &) const = default;
};

/** The EFetch prefetcher. */
class EFetch final : public Prefetcher
{
  public:
    explicit EFetch(const EFetchConfig &config = {});

    std::string name() const override { return "EFetch"; }

    std::uint64_t storageBits() const override;

    void onCommit(const DynInst &inst, Cycle now) override;

    void saveState(StateWriter &ar) override;
    void restoreState(StateLoader &ar) override;

  private:
    struct CalleeSlot
    {
        Addr callee = 0;
        std::uint8_t confidence = 0;

        template <class Ar>
        void
        serializeState(Ar &ar)
        {
            ar.value(callee);
            ar.value(confidence);
        }
    };

    struct Entry
    {
        bool valid = false;
        std::uint64_t tag = 0;
        std::vector<CalleeSlot> callees;

        template <class Ar>
        void
        serializeState(Ar &ar)
        {
            ar.value(valid);
            ar.value(tag);
            io(ar, callees);
        }
    };

    /** Two 32-block vectors over a callee's first 64 blocks. */
    struct Footprint
    {
        std::uint32_t vec0 = 0;
        std::uint32_t vec1 = 0;

        template <class Ar>
        void
        serializeState(Ar &ar)
        {
            ar.value(vec0);
            ar.value(vec1);
        }
    };

    template <class Ar> void serializeState(Ar &ar);

    std::uint64_t currentSignature() const;
    Entry &entryFor(std::uint64_t sig);
    void train(Addr callee);
    void predictAndPrefetch();
    void prefetchCallee(Addr callee);

    EFetchConfig config_;
    std::vector<Entry> table_;

    /** Shadow call stack (return addresses) maintained at commit. */
    std::vector<Addr> callStack_;

    /** Current function entry (for footprint training). */
    std::vector<Addr> funcStack_;

    /** Per-callee touched-block vectors, LRU-bounded. */
    std::unordered_map<Addr, Footprint> footprints_;
    std::vector<Addr> footprintFifo_;

    std::uint64_t lastSignature_ = 0;
    bool haveLastSignature_ = false;
};

} // namespace hp

#endif // HP_PREFETCH_EFETCH_HH
