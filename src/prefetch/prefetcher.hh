/**
 * @file
 * Common interface for instruction prefetchers that run alongside FDIP.
 *
 * The simulator drives prefetchers with three event streams — retired
 * instructions, L1-I demand-block accesses, and cycle ticks — and
 * drains their request queue into the cache hierarchy at a configurable
 * bandwidth. Prefetchers that keep bulk metadata in main memory (the
 * Hierarchical Prefetcher) access it through the MetadataMemory service
 * so that latency and bandwidth are accounted against regular traffic.
 */

#ifndef HP_PREFETCH_PREFETCHER_HH
#define HP_PREFETCH_PREFETCHER_HH

#include <cstdint>
#include <string>

#include "isa/inst.hh"
#include "obs/event_sink.hh"
#include "stats/registry.hh"
#include "util/ring_buffer.hh"
#include "util/serialize.hh"
#include "util/types.hh"

namespace hp
{

/**
 * Models the in-memory metadata path. Implemented by the simulator:
 * reads return the cycle at which the data is available (LLC or DRAM
 * latency), and both directions are charged to memory bandwidth.
 */
class MetadataMemory
{
  public:
    virtual ~MetadataMemory() = default;

    /** Reads @p bytes of metadata; returns the data-ready cycle. */
    virtual Cycle metadataRead(std::uint64_t bytes, Cycle now) = 0;

    /** Writes @p bytes of metadata (posted; no completion needed). */
    virtual void metadataWrite(std::uint64_t bytes, Cycle now) = 0;
};

/** A metadata service that is free and instant (for unit tests). */
class NullMetadataMemory : public MetadataMemory
{
  public:
    Cycle metadataRead(std::uint64_t, Cycle now) override { return now; }
    void metadataWrite(std::uint64_t, Cycle) override {}
};

/** Abstract instruction prefetcher. */
class Prefetcher
{
  public:
    virtual ~Prefetcher() = default;

    virtual std::string name() const = 0;

    /** On-chip metadata storage in bits (for the comparison tables). */
    virtual std::uint64_t storageBits() const = 0;

    /** Called for every retired instruction, in order. */
    virtual void onCommit(const DynInst &inst, Cycle now)
    {
        (void)inst;
        (void)now;
    }

    /**
     * Called for every L1-I demand block access made by fetch.
     * @param block        Block-aligned address.
     * @param hit          True if the access hit in the L1-I.
     * @param fill_latency Observed latency of the miss (0 on a hit) —
     *                     EIP trains its trigger distance from this.
     */
    virtual void onDemandAccess(Addr block, bool hit, Cycle now,
                                Cycle fill_latency)
    {
        (void)block;
        (void)hit;
        (void)now;
        (void)fill_latency;
    }

    /**
     * Called when FDIP issues a prefetch for an FTQ block. EIP treats
     * these like demand accesses for training (Section 6.3).
     */
    virtual void onFdipPrefetch(Addr block, Cycle now)
    {
        (void)block;
        (void)now;
    }

    /** Called once per cycle before the queue is drained. */
    virtual void tick(Cycle now) { (void)now; }

    /**
     * Registers this prefetcher's counters under @p prefix. The base
     * registers the request-queue counters every prefetcher shares;
     * overrides add their own and must call the base.
     */
    virtual void
    registerStats(StatsRegistry &reg, const std::string &prefix) const
    {
        reg.add(prefix + ".requests_pushed",
                [this] { return pushed_; });
        reg.add(prefix + ".requests_popped",
                [this] { return popped_; });
        reg.add(prefix + ".requests_dropped_full",
                [this] { return droppedFull_; });
    }

    /** Pops the next prefetch block address; false if queue empty. */
    bool
    popRequest(Addr &block)
    {
        if (queue_.empty())
            return false;
        block = queue_.front();
        queue_.pop_front();
        ++popped_;
        return true;
    }

    bool hasRequests() const { return !queue_.empty(); }

    std::size_t queueDepth() const { return queue_.size(); }

    /** Points the queue-squash emit site at @p sink (may be null). */
    void setEventSink(EventSink *sink) { obs_ = sink; }

    /**
     * Latches the simulator clock for emit sites reached through
     * paths that do not carry a cycle (push). Called once per cycle;
     * only meaningful while an event sink is attached.
     */
    void noteCycle(Cycle now) { obsNow_ = now; }

    /**
     * Serializes/restores prefetcher state for checkpointing. The
     * base handles the shared request queue and its counters;
     * overrides serialize their own tables after calling the base.
     */
    virtual void saveState(StateWriter &ar) { serializeQueue(ar); }
    virtual void restoreState(StateLoader &ar) { serializeQueue(ar); }

  protected:
    /** Enqueues a block-aligned prefetch request. */
    void
    push(Addr block)
    {
        if (queue_.size() >= maxQueue_) {
            ++droppedFull_;
            // Origin 2 == Origin::Ext: the external prefetcher is the
            // only client of this queue.
            HP_EMIT(obs_, emit(EventKind::PrefetchSquashed, obsNow_,
                               block, 0, 0, 2));
            return;
        }
        queue_.push_back(block);
        ++pushed_;
    }

    /** Sets the request-queue capacity (bulk prefetchers need more). */
    void setMaxQueue(std::size_t capacity) { maxQueue_ = capacity; }

    /** The attached sink (null unless tracing); for subclass emits. */
    EventSink *eventSink() const { return obs_; }

    /** The cycle last latched by noteCycle. */
    Cycle obsNow() const { return obsNow_; }

    std::size_t maxQueue() const { return maxQueue_; }

  private:
    template <class Ar>
    void
    serializeQueue(Ar &ar)
    {
        io(ar, queue_);
        io(ar, pushed_);
        io(ar, popped_);
        io(ar, droppedFull_);
    }

    std::size_t maxQueue_ = 512;
    /** FIFO request queue; a ring keeps the pop/push path pointer-
     *  chase free (the deque paid a double indirection per access). */
    RingBuffer<Addr> queue_{64};
    std::uint64_t pushed_ = 0;
    std::uint64_t popped_ = 0;
    std::uint64_t droppedFull_ = 0;
    EventSink *obs_ = nullptr;
    Cycle obsNow_ = 0;
};

} // namespace hp

#endif // HP_PREFETCH_PREFETCHER_HH
