/**
 * @file
 * RDIP — Return-address-stack Directed Instruction Prefetching (Kolli
 * et al., MICRO'13), the caller-callee predecessor of EFetch that the
 * paper discusses in related work (Section 2.3). The program context
 * is summarized by a hash of the top entries of the RAS; the misses
 * observed under each signature are recorded and prefetched when the
 * signature recurs. Metadata-hungry (the paper quotes 60 KB/core).
 *
 * Included as an extension beyond the paper's evaluated baselines; the
 * extras_related_work bench compares it against EFetch and
 * Hierarchical Prefetching.
 */

#ifndef HP_PREFETCH_RDIP_HH
#define HP_PREFETCH_RDIP_HH

#include <cstdint>
#include <vector>

#include "prefetch/prefetcher.hh"

namespace hp
{

/** RDIP configuration. */
struct RdipConfig
{
    /** Signature table entries. */
    unsigned tableEntries = 4096;

    /** RAS entries hashed into the signature (paper: top 4). */
    unsigned signatureDepth = 4;

    /** Miss blocks recorded per signature (the 60KB-class budget). */
    unsigned blocksPerEntry = 4;

    bool operator==(const RdipConfig &) const = default;
};

/** The RDIP prefetcher. */
class Rdip final : public Prefetcher
{
  public:
    explicit Rdip(const RdipConfig &config = {});

    std::string name() const override { return "RDIP"; }

    std::uint64_t storageBits() const override;

    void onCommit(const DynInst &inst, Cycle now) override;

    void onDemandAccess(Addr block, bool hit, Cycle now,
                        Cycle fill_latency) override;

    void saveState(StateWriter &ar) override;
    void restoreState(StateLoader &ar) override;

  private:
    struct Entry
    {
        bool valid = false;
        std::uint64_t tag = 0;
        std::vector<Addr> blocks;
        std::size_t fifoPos = 0;

        template <class Ar>
        void
        serializeState(Ar &ar)
        {
            ar.value(valid);
            ar.value(tag);
            io(ar, blocks);
            ar.value(fifoPos);
        }
    };

    template <class Ar> void serializeState(Ar &ar);

    std::uint64_t currentSignature() const;
    Entry &entryFor(std::uint64_t sig);

    RdipConfig config_;
    std::vector<Entry> table_;

    /** Shadow return-address stack maintained at commit. */
    std::vector<Addr> ras_;

    /** Signature the core is currently executing under. */
    std::uint64_t activeSignature_ = 0;
    bool haveSignature_ = false;
};

} // namespace hp

#endif // HP_PREFETCH_RDIP_HH
