#include "prefetch/mana.hh"

#include "util/logging.hh"

namespace hp
{

Mana::Mana(const ManaConfig &config)
    : config_(config)
{
    fatalIf(config_.regionBlocks == 0 || config_.regionBlocks > 32,
            "MANA region size must be in 1..32 blocks");
    fatalIf(config_.historyRegions == 0, "MANA history must be non-empty");
    history_.resize(config_.historyRegions);
}

std::uint64_t
Mana::storageBits() const
{
    // Index table: tag (16) + pointer (log2 history). History: base
    // (compressed 26) + bit vector per region. This mirrors MANA's
    // 15 KB-class budget at the paper's configuration.
    unsigned ptr_bits = 1;
    while ((1u << ptr_bits) < config_.historyRegions)
        ++ptr_bits;
    std::uint64_t index_bits =
        std::uint64_t(config_.indexEntries) * (16 + ptr_bits);
    std::uint64_t history_bits =
        std::uint64_t(config_.historyRegions) *
        (26 + config_.regionBlocks);
    return index_bits + history_bits;
}

void
Mana::closeOpenRegion()
{
    if (!openValid_)
        return;
    std::uint64_t pos = historyCount_++;
    history_[historyHead_] = open_;
    historyHead_ = (historyHead_ + 1) % history_.size();
    index_[open_.base] = pos;
    // Bound the index like a 4K-entry table: drop an arbitrary entry
    // when over capacity (models tag conflicts).
    if (index_.size() > config_.indexEntries)
        index_.erase(index_.begin());
    openValid_ = false;
}

void
Mana::recordAccess(Addr block)
{
    if (openValid_ && open_.covers(block, config_.regionBlocks)) {
        open_.bits |= 1u << ((block - open_.base) >> kBlockShift);
        return;
    }
    closeOpenRegion();
    open_.base = block;
    open_.bits = 1;
    openValid_ = true;
}

void
Mana::prefetchRegion(const Region &region)
{
    std::uint32_t bits = region.bits;
    while (bits) {
        unsigned bit = __builtin_ctz(bits);
        bits &= bits - 1;
        push(region.base + Addr(bit) * kBlockBytes);
    }
}

void
Mana::issueAhead()
{
    if (!streaming_)
        return;
    std::uint64_t target = streamPos_ + config_.lookahead;
    std::uint64_t oldest = historyCount_ > history_.size()
        ? historyCount_ - history_.size() : 0;
    std::uint64_t from = std::max(issuedUpTo_, streamPos_ + 1);
    from = std::max(from, oldest);
    for (std::uint64_t pos = from;
         pos <= target && pos < historyCount_; ++pos) {
        prefetchRegion(history_[pos % history_.size()]);
        issuedUpTo_ = pos + 1;
    }
}

void
Mana::followStream(Addr block)
{
    std::uint64_t oldest = historyCount_ > history_.size()
        ? historyCount_ - history_.size() : 0;

    if (streaming_) {
        // Does the access stay on the recorded stream? Check the
        // current region and the next few positions.
        for (std::uint64_t pos = streamPos_;
             pos <= streamPos_ + 2 && pos < historyCount_; ++pos) {
            if (pos < oldest)
                continue;
            if (history_[pos % history_.size()]
                    .covers(block, config_.regionBlocks)) {
                streamPos_ = pos;
                issueAhead();
                return;
            }
        }
        // Divergence: the front end left the recorded path; MANA must
        // re-index, losing its lookahead.
        streaming_ = false;
        ++divergences_;
    }

    auto it = index_.find(block);
    if (it != index_.end() && it->second >= oldest &&
        it->second < historyCount_) {
        streaming_ = true;
        streamPos_ = it->second;
        issuedUpTo_ = streamPos_ + 1;
        issueAhead();
    }
}

void
Mana::onDemandAccess(Addr block, bool hit, Cycle now, Cycle fill_latency)
{
    (void)hit;
    (void)now;
    (void)fill_latency;
    recordAccess(block);
    followStream(block);
}

template <class Ar>
void
Mana::serializeState(Ar &ar)
{
    open_.serializeState(ar);
    io(ar, openValid_);
    io(ar, history_);
    io(ar, historyHead_);
    io(ar, historyCount_);
    io(ar, index_);
    io(ar, streamPos_);
    io(ar, streaming_);
    io(ar, issuedUpTo_);
    io(ar, divergences_);
}

void
Mana::saveState(StateWriter &ar)
{
    Prefetcher::saveState(ar);
    serializeState(ar);
}

void
Mana::restoreState(StateLoader &ar)
{
    Prefetcher::restoreState(ar);
    serializeState(ar);
}

} // namespace hp
