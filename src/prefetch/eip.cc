#include "prefetch/eip.hh"

#include "util/hash.hh"
#include "util/logging.hh"

namespace hp
{

Eip::Eip(const EipConfig &config)
    : config_(config)
{
    fatalIf(config_.tableWays == 0 ||
            config_.tableEntries % config_.tableWays != 0,
            "EIP table geometry invalid");
    numSets_ = config_.tableEntries / config_.tableWays;
    table_.resize(config_.tableEntries);
}

std::uint64_t
Eip::storageBits() const
{
    // Roughly the paper's 40 KB configuration: compressed source tag
    // plus up to three compressed targets with confidence.
    std::uint64_t per_entry = 20 + config_.maxTargets * (24 + 2);
    return per_entry * config_.tableEntries +
           config_.historyEntries * 64;
}

Eip::Entry *
Eip::find(Addr source)
{
    unsigned set = static_cast<unsigned>(mix64(source) % numSets_);
    Entry *base = &table_[std::size_t(set) * config_.tableWays];
    for (unsigned w = 0; w < config_.tableWays; ++w) {
        if (base[w].valid && base[w].source == source) {
            base[w].lastUse = ++useClock_;
            return &base[w];
        }
    }
    return nullptr;
}

Eip::Entry &
Eip::allocate(Addr source)
{
    unsigned set = static_cast<unsigned>(mix64(source) % numSets_);
    Entry *base = &table_[std::size_t(set) * config_.tableWays];
    Entry *victim = &base[0];
    for (unsigned w = 0; w < config_.tableWays; ++w) {
        if (!base[w].valid) {
            victim = &base[w];
            break;
        }
        if (base[w].lastUse < victim->lastUse)
            victim = &base[w];
    }
    victim->valid = true;
    victim->source = source;
    victim->lastUse = ++useClock_;
    victim->targets.clear();
    return *victim;
}

void
Eip::entangle(Addr source, Addr target)
{
    Entry *entry = find(source);
    if (!entry)
        entry = &allocate(source);

    for (Target &t : entry->targets) {
        if (t.block == target) {
            if (t.confidence < 3)
                ++t.confidence;
            return;
        }
    }
    if (entry->targets.size() < config_.maxTargets) {
        entry->targets.push_back({target, 1});
        return;
    }
    auto victim = entry->targets.begin();
    for (auto it = entry->targets.begin(); it != entry->targets.end();
         ++it) {
        if (it->confidence < victim->confidence)
            victim = it;
    }
    if (victim->confidence > 0) {
        --victim->confidence;
    } else {
        victim->block = target;
        victim->confidence = 1;
    }
}

void
Eip::observeFetch(Addr block, Cycle now)
{
    // Issue prefetches for every target entangled with this block;
    // each target is a basic block spanning several cache lines.
    if (Entry *entry = find(block)) {
        for (const Target &t : entry->targets) {
            for (unsigned b = 0; b < config_.targetRunBlocks; ++b)
                push(t.block + Addr(b) * kBlockBytes);
        }
    }

    if (!history_.empty() && history_.back().first == block)
        return;
    history_.emplace_back(block, now);
    if (history_.size() > config_.historyEntries)
        history_.pop_front();
}

void
Eip::onDemandAccess(Addr block, bool hit, Cycle now, Cycle fill_latency)
{
    if (!hit && fill_latency > 0) {
        // Trigger selection: the youngest history block that executed
        // at least one miss latency before the miss, so a prefetch
        // issued at its fetch would have arrived on time.
        Addr source = 0;
        for (auto it = history_.rbegin(); it != history_.rend(); ++it) {
            if (it->second + fill_latency <= now) {
                source = it->first;
                break;
            }
        }
        if (source == 0 && !history_.empty())
            source = history_.front().first;
        if (source != 0 && source != block)
            entangle(source, block);
    }

    observeFetch(block, now);
}

void
Eip::onFdipPrefetch(Addr block, Cycle now)
{
    // FDIP prefetches are treated like demand accesses for training
    // (confirmed preferable by the EIP authors, per Section 6.3).
    observeFetch(block, now);
}

template <class Ar>
void
Eip::serializeState(Ar &ar)
{
    io(ar, table_);
    io(ar, useClock_);
    io(ar, history_);
}

void
Eip::saveState(StateWriter &ar)
{
    Prefetcher::saveState(ar);
    serializeState(ar);
}

void
Eip::restoreState(StateLoader &ar)
{
    Prefetcher::restoreState(ar);
    serializeState(ar);
}

} // namespace hp
