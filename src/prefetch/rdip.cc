#include "prefetch/rdip.hh"

#include <algorithm>

#include "util/hash.hh"
#include "util/logging.hh"

namespace hp
{

Rdip::Rdip(const RdipConfig &config)
    : config_(config)
{
    fatalIf(config_.tableEntries == 0, "RDIP table must be non-empty");
    table_.resize(config_.tableEntries);
}

std::uint64_t
Rdip::storageBits() const
{
    // Tag (16) plus compressed block addresses (30 bits each) per
    // entry — the metadata-intensive design the paper criticizes.
    std::uint64_t per_entry = 16 + config_.blocksPerEntry * 30;
    return per_entry * config_.tableEntries;
}

std::uint64_t
Rdip::currentSignature() const
{
    std::uint64_t sig = 0x517cc1b727220a95ULL;
    unsigned depth = 0;
    for (auto it = ras_.rbegin();
         it != ras_.rend() && depth < config_.signatureDepth;
         ++it, ++depth) {
        sig = hashCombine(sig, *it);
    }
    return sig;
}

Rdip::Entry &
Rdip::entryFor(std::uint64_t sig)
{
    return table_[static_cast<std::size_t>(sig % table_.size())];
}

void
Rdip::onCommit(const DynInst &inst, Cycle now)
{
    (void)now;
    bool signature_changed = false;
    if (isCall(inst.kind) && inst.taken) {
        ras_.push_back(inst.nextPc());
        if (ras_.size() > 64)
            ras_.erase(ras_.begin());
        signature_changed = true;
    } else if (inst.kind == InstKind::Return) {
        if (!ras_.empty())
            ras_.pop_back();
        signature_changed = true;
    }

    if (!signature_changed)
        return;

    // New program context: prefetch the misses recorded the last time
    // this context was active.
    activeSignature_ = currentSignature();
    haveSignature_ = true;

    Entry &entry = entryFor(activeSignature_);
    std::uint64_t tag = mix64(activeSignature_) >> 44;
    if (entry.valid && entry.tag == tag) {
        for (Addr block : entry.blocks)
            push(block);
    }
}

void
Rdip::onDemandAccess(Addr block, bool hit, Cycle now,
                     Cycle fill_latency)
{
    (void)now;
    (void)fill_latency;
    if (hit || !haveSignature_)
        return;

    // Record the miss under the active signature.
    Entry &entry = entryFor(activeSignature_);
    std::uint64_t tag = mix64(activeSignature_) >> 44;
    if (!entry.valid || entry.tag != tag) {
        entry.valid = true;
        entry.tag = tag;
        entry.blocks.clear();
        entry.fifoPos = 0;
    }
    if (std::find(entry.blocks.begin(), entry.blocks.end(), block) !=
        entry.blocks.end()) {
        return;
    }
    if (entry.blocks.size() < config_.blocksPerEntry) {
        entry.blocks.push_back(block);
    } else {
        entry.blocks[entry.fifoPos] = block;
        entry.fifoPos = (entry.fifoPos + 1) % config_.blocksPerEntry;
    }
}

template <class Ar>
void
Rdip::serializeState(Ar &ar)
{
    io(ar, table_);
    io(ar, ras_);
    io(ar, activeSignature_);
    io(ar, haveSignature_);
}

void
Rdip::saveState(StateWriter &ar)
{
    Prefetcher::saveState(ar);
    serializeState(ar);
}

void
Rdip::restoreState(StateLoader &ar)
{
    Prefetcher::restoreState(ar);
    serializeState(ar);
}

} // namespace hp
