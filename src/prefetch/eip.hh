/**
 * @file
 * EIP — the Entangling Instruction Prefetcher (Ros & Jimborean,
 * ISCA'21), winner of IPC-1 and the strongest fine-grained baseline in
 * the paper. When a block misses, EIP walks a short history of recently
 * fetched blocks to find a trigger that executed roughly one miss
 * latency earlier and entangles (trigger -> missed block). Whenever a
 * trigger is fetched again, all of its entangled targets are
 * prefetched, which buys timeliness at the cost of accuracy: several
 * recorded targets per trigger mean most issued prefetches chase paths
 * that are not taken this time (Section 7.4's 2.4 targets/source).
 */

#ifndef HP_PREFETCH_EIP_HH
#define HP_PREFETCH_EIP_HH

#include <cstdint>
#include <deque>
#include <vector>

#include "prefetch/prefetcher.hh"

namespace hp
{

/** EIP configuration. */
struct EipConfig
{
    /** Entangled table entries (paper: 4K, 8-way, 40 KB). */
    unsigned tableEntries = 4096;

    unsigned tableWays = 8;

    /** Recently fetched blocks remembered for trigger selection. */
    unsigned historyEntries = 16;

    /** Maximum entangled targets per source (encoding formats). */
    unsigned maxTargets = 3;

    /**
     * Blocks prefetched per target. EIP entangles basic blocks, which
     * span multiple cache lines; each issued target covers the miss
     * block plus the following lines of the destination basic block.
     */
    unsigned targetRunBlocks = 3;

    bool operator==(const EipConfig &) const = default;
};

/** The EIP prefetcher. */
class Eip final : public Prefetcher
{
  public:
    explicit Eip(const EipConfig &config = {});

    std::string name() const override { return "EIP"; }

    std::uint64_t storageBits() const override;

    void onDemandAccess(Addr block, bool hit, Cycle now,
                        Cycle fill_latency) override;

    void onFdipPrefetch(Addr block, Cycle now) override;

    void saveState(StateWriter &ar) override;
    void restoreState(StateLoader &ar) override;

  private:
    struct Target
    {
        Addr block = 0;
        std::uint8_t confidence = 0;

        template <class Ar>
        void
        serializeState(Ar &ar)
        {
            ar.value(block);
            ar.value(confidence);
        }
    };

    struct Entry
    {
        bool valid = false;
        Addr source = 0;
        std::uint64_t lastUse = 0;
        std::vector<Target> targets;

        template <class Ar>
        void
        serializeState(Ar &ar)
        {
            ar.value(valid);
            ar.value(source);
            ar.value(lastUse);
            io(ar, targets);
        }
    };

    template <class Ar> void serializeState(Ar &ar);

    void observeFetch(Addr block, Cycle now);
    void entangle(Addr source, Addr target);
    Entry *find(Addr source);
    Entry &allocate(Addr source);

    EipConfig config_;
    unsigned numSets_;
    std::vector<Entry> table_;
    std::uint64_t useClock_ = 0;

    /** Recently fetched blocks with their fetch cycles (newest last). */
    std::deque<std::pair<Addr, Cycle>> history_;
};

} // namespace hp

#endif // HP_PREFETCH_EIP_HH
