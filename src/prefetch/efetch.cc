#include "prefetch/efetch.hh"

#include <algorithm>

#include "util/hash.hh"
#include "util/logging.hh"

namespace hp
{

EFetch::EFetch(const EFetchConfig &config)
    : config_(config)
{
    fatalIf(config_.tableEntries == 0, "EFetch table must be non-empty");
    table_.resize(config_.tableEntries);
}

std::uint64_t
EFetch::storageBits() const
{
    // Per entry: 14-bit tag + per callee a compressed 18-bit callee
    // pointer, 2-bit confidence and two 32-bit vectors living in the
    // footprint table (charged here since it is part of the design).
    std::uint64_t per_callee = 18 + 2 + 64;
    std::uint64_t per_entry = 14 + config_.calleesPerEntry * per_callee;
    return per_entry * config_.tableEntries;
}

std::uint64_t
EFetch::currentSignature() const
{
    std::uint64_t sig = 0x9e3779b97f4a7c15ULL;
    unsigned depth = 0;
    for (auto it = callStack_.rbegin();
         it != callStack_.rend() && depth < config_.signatureDepth;
         ++it, ++depth) {
        sig = hashCombine(sig, *it);
    }
    return sig;
}

EFetch::Entry &
EFetch::entryFor(std::uint64_t sig)
{
    return table_[static_cast<std::size_t>(sig % table_.size())];
}

void
EFetch::train(Addr callee)
{
    if (!haveLastSignature_)
        return;
    Entry &entry = entryFor(lastSignature_);
    std::uint64_t tag = mix64(lastSignature_) >> 40;
    if (!entry.valid || entry.tag != tag) {
        entry.valid = true;
        entry.tag = tag;
        entry.callees.clear();
    }
    // The entry keeps the observed order of following callees: promote
    // a re-observed callee's confidence, append new ones, and displace
    // the least confident slot when full.
    for (CalleeSlot &slot : entry.callees) {
        if (slot.callee == callee) {
            if (slot.confidence < 3)
                ++slot.confidence;
            return;
        }
    }
    if (entry.callees.size() < config_.calleesPerEntry) {
        entry.callees.push_back({callee, 1});
        return;
    }
    auto victim = std::min_element(
        entry.callees.begin(), entry.callees.end(),
        [](const CalleeSlot &a, const CalleeSlot &b) {
            return a.confidence < b.confidence;
        });
    if (victim->confidence > 0) {
        --victim->confidence;
    } else {
        victim->callee = callee;
        victim->confidence = 1;
    }
}

void
EFetch::prefetchCallee(Addr callee)
{
    Addr entry_block = blockAlign(callee);
    auto it = footprints_.find(entry_block);
    if (it == footprints_.end()) {
        // No learned footprint yet: prefetch the entry block only.
        push(entry_block);
        return;
    }
    std::uint32_t vec0 = it->second.vec0 | 1u;
    std::uint32_t vec1 = it->second.vec1;
    while (vec0) {
        unsigned bit = __builtin_ctz(vec0);
        vec0 &= vec0 - 1;
        push(entry_block + Addr(bit) * kBlockBytes);
    }
    while (vec1) {
        unsigned bit = __builtin_ctz(vec1);
        vec1 &= vec1 - 1;
        push(entry_block + Addr(32 + bit) * kBlockBytes);
    }
}

void
EFetch::predictAndPrefetch()
{
    // Chain predictions: each predicted callee is hypothetically pushed
    // onto a copy of the stack to look up the next level.
    std::uint64_t sig = currentSignature();
    std::vector<Addr> shadow = callStack_;
    unsigned emitted = 0;
    for (unsigned depth = 0;
         depth < config_.lookahead && emitted < config_.lookahead;
         ++depth) {
        Entry &entry = entryFor(sig);
        std::uint64_t tag = mix64(sig) >> 40;
        if (!entry.valid || entry.tag != tag || entry.callees.empty())
            break;

        // Issue the entry's callees in recorded order up to the budget.
        Addr best = 0;
        std::uint8_t best_conf = 0;
        for (const CalleeSlot &slot : entry.callees) {
            if (emitted >= config_.lookahead)
                break;
            prefetchCallee(slot.callee);
            ++emitted;
            if (slot.confidence >= best_conf) {
                best_conf = slot.confidence;
                best = slot.callee;
            }
        }
        if (best == 0)
            break;

        // Hypothetical next signature: as if `best` were called.
        shadow.push_back(best);
        if (shadow.size() > 64)
            shadow.erase(shadow.begin());
        std::uint64_t next_sig = 0x9e3779b97f4a7c15ULL;
        unsigned d = 0;
        for (auto it = shadow.rbegin();
             it != shadow.rend() && d < config_.signatureDepth;
             ++it, ++d) {
            next_sig = hashCombine(next_sig, *it);
        }
        sig = next_sig;
    }
}

void
EFetch::onCommit(const DynInst &inst, Cycle now)
{
    (void)now;

    // Footprint training: blocks of the current function near its
    // entry.
    if (!funcStack_.empty()) {
        Addr entry_block = funcStack_.back();
        Addr block = blockAlign(inst.pc);
        if (block >= entry_block) {
            Addr delta = (block - entry_block) >> kBlockShift;
            if (delta < 64) {
                Footprint &fp = footprints_[entry_block];
                if (delta < 32)
                    fp.vec0 |= 1u << delta;
                else
                    fp.vec1 |= 1u << (delta - 32);
            }
        }
    }

    if (isCall(inst.kind) && inst.taken) {
        // Train the previous signature with the callee that followed.
        train(inst.target);

        callStack_.push_back(inst.nextPc());
        if (callStack_.size() > 64)
            callStack_.erase(callStack_.begin());
        funcStack_.push_back(blockAlign(inst.target));
        if (funcStack_.size() > 64)
            funcStack_.erase(funcStack_.begin());

        lastSignature_ = currentSignature();
        haveLastSignature_ = true;

        // Bound the footprint table like a 4K-entry structure.
        if (footprints_.size() > config_.footprintEntries) {
            footprints_.erase(footprints_.begin());
        }

        predictAndPrefetch();
    } else if (inst.kind == InstKind::Return) {
        if (!callStack_.empty())
            callStack_.pop_back();
        if (!funcStack_.empty())
            funcStack_.pop_back();
        lastSignature_ = currentSignature();
        haveLastSignature_ = true;
    }
}

template <class Ar>
void
EFetch::serializeState(Ar &ar)
{
    io(ar, table_);
    io(ar, callStack_);
    io(ar, funcStack_);
    io(ar, footprints_);
    io(ar, footprintFifo_);
    io(ar, lastSignature_);
    io(ar, haveLastSignature_);
}

void
EFetch::saveState(StateWriter &ar)
{
    Prefetcher::saveState(ar);
    serializeState(ar);
}

void
EFetch::restoreState(StateLoader &ar)
{
    Prefetcher::restoreState(ar);
    serializeState(ar);
}

} // namespace hp
