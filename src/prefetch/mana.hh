/**
 * @file
 * MANA (Ansari et al., IEEE TC'22): the state-of-the-art temporal
 * streaming prefetcher the paper compares against. The retired block
 * stream is compressed into spatial regions and appended to a circular
 * history; an index table maps region bases to their latest history
 * position. At run time the prefetcher follows the recorded stream a
 * configurable number of regions ahead of execution, re-indexing
 * (and losing lookahead) whenever the actual stream diverges — the
 * behaviour behind the Figure 2a sweep and MANA's timeliness problems.
 */

#ifndef HP_PREFETCH_MANA_HH
#define HP_PREFETCH_MANA_HH

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "prefetch/prefetcher.hh"

namespace hp
{

/** MANA configuration. */
struct ManaConfig
{
    /** Blocks per spatial region (base + bit vector). */
    unsigned regionBlocks = 8;

    /** Circular history capacity in regions. */
    unsigned historyRegions = 4096;

    /** Index table entries (paper methodology: 4K, 4-way). */
    unsigned indexEntries = 4096;

    /** Look-ahead depth in spatial regions (paper default: 3). */
    unsigned lookahead = 3;

    bool operator==(const ManaConfig &) const = default;
};

/** The MANA prefetcher. */
class Mana final : public Prefetcher
{
  public:
    explicit Mana(const ManaConfig &config = {});

    std::string name() const override { return "MANA"; }

    std::uint64_t storageBits() const override;

    void onDemandAccess(Addr block, bool hit, Cycle now,
                        Cycle fill_latency) override;

    void saveState(StateWriter &ar) override;
    void restoreState(StateLoader &ar) override;

    /** Stream divergences observed (re-index events). */
    std::uint64_t divergences() const { return divergences_; }

    void
    registerStats(StatsRegistry &reg,
                  const std::string &prefix) const override
    {
        Prefetcher::registerStats(reg, prefix);
        reg.add(prefix + ".divergences",
                [this] { return divergences_; });
    }

  private:
    struct Region
    {
        Addr base = 0;
        std::uint32_t bits = 0;

        bool
        covers(Addr block, unsigned region_blocks) const
        {
            return block >= base &&
                   block < base + Addr(region_blocks) * kBlockBytes;
        }

        template <class Ar>
        void
        serializeState(Ar &ar)
        {
            ar.value(base);
            ar.value(bits);
        }
    };

    template <class Ar> void serializeState(Ar &ar);

    void recordAccess(Addr block);
    void closeOpenRegion();
    void followStream(Addr block);
    void issueAhead();
    void prefetchRegion(const Region &region);

    ManaConfig config_;

    /** Region being formed from the access stream. */
    Region open_;
    bool openValid_ = false;

    /** Circular history of completed regions. */
    std::vector<Region> history_;
    std::size_t historyHead_ = 0;
    std::uint64_t historyCount_ = 0;

    /** Region base -> absolute history position (latest). */
    std::unordered_map<Addr, std::uint64_t> index_;

    /** Replay cursor: absolute history position of current region. */
    std::uint64_t streamPos_ = 0;
    bool streaming_ = false;
    std::uint64_t issuedUpTo_ = 0;

    std::uint64_t divergences_ = 0;
};

} // namespace hp

#endif // HP_PREFETCH_MANA_HH
