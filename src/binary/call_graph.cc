#include "binary/call_graph.hh"

#include <algorithm>

#include "util/logging.hh"

namespace hp
{

CallGraph::CallGraph(const Program &program)
    : program_(program)
{
    const std::size_t n = program.numFunctions();
    children_.resize(n);
    parents_.resize(n);

    for (const Function &fn : program.functions()) {
        for (const BodyOp &op : fn.body) {
            if (op.kind != OpKind::CallSite)
                continue;
            for (FuncId callee : fn.targets[op.targetIdx].candidates)
                children_[fn.id].push_back(callee);
        }
    }

    // Collapse duplicate edges so the analysis passes see a simple graph.
    for (std::size_t f = 0; f < n; ++f) {
        auto &kids = children_[f];
        std::sort(kids.begin(), kids.end());
        kids.erase(std::unique(kids.begin(), kids.end()), kids.end());
        for (FuncId callee : kids)
            parents_[callee].push_back(static_cast<FuncId>(f));
    }

    for (std::size_t f = 0; f < n; ++f) {
        if (parents_[f].empty())
            roots_.push_back(static_cast<FuncId>(f));
    }
}

void
CallGraph::computeSccs() const
{
    if (!scc_.empty() || children_.empty())
        return;

    // Iterative Tarjan: a recursive version overflows the stack on the
    // deep call chains our server programs contain.
    const std::size_t n = children_.size();
    constexpr std::uint32_t kUnvisited = 0xffffffff;

    scc_.assign(n, kUnvisited);
    std::vector<std::uint32_t> index(n, kUnvisited);
    std::vector<std::uint32_t> lowlink(n, 0);
    std::vector<bool> onStack(n, false);
    std::vector<FuncId> stack;
    std::uint32_t next_index = 0;
    numSccs_ = 0;

    struct Frame
    {
        FuncId node;
        std::size_t childPos;
    };
    std::vector<Frame> frames;

    for (std::size_t start = 0; start < n; ++start) {
        if (index[start] != kUnvisited)
            continue;
        frames.push_back({static_cast<FuncId>(start), 0});
        while (!frames.empty()) {
            Frame &fr = frames.back();
            FuncId v = fr.node;
            if (fr.childPos == 0) {
                index[v] = lowlink[v] = next_index++;
                stack.push_back(v);
                onStack[v] = true;
            }
            bool descended = false;
            while (fr.childPos < children_[v].size()) {
                FuncId w = children_[v][fr.childPos++];
                if (index[w] == kUnvisited) {
                    frames.push_back({w, 0});
                    descended = true;
                    break;
                } else if (onStack[w]) {
                    lowlink[v] = std::min(lowlink[v], index[w]);
                }
            }
            if (descended)
                continue;
            if (lowlink[v] == index[v]) {
                // v is the root of an SCC; pop its members.
                for (;;) {
                    FuncId w = stack.back();
                    stack.pop_back();
                    onStack[w] = false;
                    scc_[w] = numSccs_;
                    if (w == v)
                        break;
                }
                ++numSccs_;
            }
            frames.pop_back();
            if (!frames.empty()) {
                FuncId parent = frames.back().node;
                lowlink[parent] = std::min(lowlink[parent], lowlink[v]);
            }
        }
    }
}

std::uint32_t
CallGraph::sccOf(FuncId f) const
{
    computeSccs();
    panicIf(f >= scc_.size(), "sccOf: function id out of range");
    return scc_[f];
}

std::size_t
CallGraph::numSccs() const
{
    computeSccs();
    return numSccs_;
}

void
CallGraph::computeReachable() const
{
    if (!reachable_.empty() || children_.empty())
        return;
    computeSccs();

    const std::size_t n = children_.size();

    // Condensed DAG: per-SCC code size and deduplicated SCC adjacency.
    std::vector<std::uint64_t> scc_size(numSccs_, 0);
    std::vector<std::vector<std::uint32_t>> scc_children(numSccs_);
    for (std::size_t f = 0; f < n; ++f) {
        scc_size[scc_[f]] += program_.func(static_cast<FuncId>(f))
            .sizeBytes();
        for (FuncId child : children_[f]) {
            if (scc_[child] != scc_[f])
                scc_children[scc_[f]].push_back(scc_[child]);
        }
    }
    for (auto &kids : scc_children) {
        std::sort(kids.begin(), kids.end());
        kids.erase(std::unique(kids.begin(), kids.end()), kids.end());
    }

    // Per-SCC DFS over the condensation with epoch-stamped visit marks.
    // Exact (handles shared subgraphs) at O(numSccs * reachable edges),
    // which is fast for call graphs' tree-with-shared-leaves shape.
    std::vector<std::uint64_t> scc_reach(numSccs_, 0);
    std::vector<std::uint32_t> mark(numSccs_, 0xffffffff);
    std::vector<std::uint32_t> dfs;
    for (std::uint32_t s = 0; s < numSccs_; ++s) {
        std::uint64_t total = 0;
        dfs.clear();
        dfs.push_back(s);
        mark[s] = s;
        while (!dfs.empty()) {
            std::uint32_t u = dfs.back();
            dfs.pop_back();
            total += scc_size[u];
            for (std::uint32_t w : scc_children[u]) {
                if (mark[w] != s) {
                    mark[w] = s;
                    dfs.push_back(w);
                }
            }
        }
        scc_reach[s] = total;
    }

    reachable_.resize(n);
    for (std::size_t f = 0; f < n; ++f)
        reachable_[f] = scc_reach[scc_[f]];
}

const std::vector<std::uint64_t> &
CallGraph::reachableSizes() const
{
    computeReachable();
    return reachable_;
}

} // namespace hp
