/**
 * @file
 * Static program model: functions, their control-flow micro-structure,
 * and code layout.
 *
 * This stands in for the real ELF binaries the paper links and loads.
 * Each function body is a compact list of BodyOps (instruction runs,
 * conditional skips, loops, call sites, return); the workload engine
 * interprets these ops to produce the dynamic instruction stream, and
 * the Bundle analysis consumes the derived static call graph.
 */

#ifndef HP_BINARY_PROGRAM_HH
#define HP_BINARY_PROGRAM_HH

#include <cstdint>
#include <string>
#include <vector>

#include "util/types.hh"

namespace hp
{

/** Identifies a function within a Program. */
using FuncId = std::uint32_t;

/** Sentinel for "no function". */
constexpr FuncId kNoFunc = 0xffffffff;

/** Kinds of body operations making up a function. */
enum class OpKind : std::uint8_t
{
    Run,      ///< A run of plain instructions.
    Branch,   ///< Conditional forward branch skipping part of the body.
    Loop,     ///< Conditional backward branch forming a loop.
    CallSite, ///< Direct or indirect call.
    Ret,      ///< Function return (must be the last op).
};

/**
 * One element of a function body. Offsets are in instruction slots from
 * the function entry; Run occupies @c length slots, every other op
 * occupies exactly one slot.
 */
struct BodyOp
{
    OpKind kind = OpKind::Run;

    /** First instruction slot occupied by this op. */
    std::uint32_t offset = 0;

    /** Run: number of plain instructions. */
    std::uint32_t length = 0;

    /**
     * Branch: instructions skipped when taken.
     * Loop: instructions jumped back over when taken.
     */
    std::uint32_t span = 0;

    /** Branch/Loop: probability (percent) that the branch is taken. */
    std::uint8_t biasTaken = 0;

    /**
     * Branch: percent chance per evaluation that the context-stable
     * direction is flipped (per-execution control-flow jitter).
     */
    std::uint8_t jitter = 0;

    /** Loop: mean extra iterations beyond the first. */
    std::uint16_t meanIter = 0;

    /** CallSite: index into Function::targets. */
    std::uint32_t targetIdx = 0;

    /** CallSite: probability (percent) the call executes at all. */
    std::uint8_t execProb = 100;

    /** CallSite: jitter (percent) applied to the execute decision. */
    std::uint8_t execJitter = 0;

    /** CallSite: true for indirect calls (target chosen at run time). */
    bool indirect = false;
};

/** Candidate callees of one call site (one entry for direct calls). */
struct CallTarget
{
    std::vector<FuncId> candidates;
};

/** A function: identity, layout, and body. */
class Function
{
  public:
    FuncId id = 0;

    std::string name;

    /** Module/library index; layout groups functions by module. */
    std::uint16_t module = 0;

    /** Assigned base address (set by Program::layout). */
    Addr addr = 0;

    std::vector<BodyOp> body;
    std::vector<CallTarget> targets;

    /** Number of instruction slots occupied by the body. */
    std::uint32_t numInsts() const;

    /** Code size in bytes (slots times instruction width). */
    std::uint64_t sizeBytes() const { return std::uint64_t(numInsts()) * kInstBytes; }

    /** Address of the instruction in slot @p slot. */
    Addr instAddr(std::uint32_t slot) const { return addr + Addr(slot) * kInstBytes; }
};

/**
 * A complete program image: all functions plus their layout. The
 * Program is immutable once finalized; the Bundle analysis, loader and
 * workload engine all reference it by const reference.
 */
class Program
{
  public:
    /** Adds a function and returns its id. Body may be filled later. */
    FuncId addFunction(std::string name, std::uint16_t module = 0);

    Function &func(FuncId id) { return funcs_[id]; }
    const Function &func(FuncId id) const { return funcs_[id]; }

    std::size_t numFunctions() const { return funcs_.size(); }

    const std::vector<Function> &functions() const { return funcs_; }

    /**
     * Assigns addresses to all functions, grouped by module, starting
     * at @p base, and freezes the image. Must be called exactly once,
     * after all bodies are final.
     */
    void layout(Addr base = 0x400000);

    bool isLaidOut() const { return laidOut_; }

    /** Total code bytes across all functions (valid after layout). */
    std::uint64_t totalCodeBytes() const { return totalCode_; }

    /** Finds the function containing @p addr, or kNoFunc. */
    FuncId funcAt(Addr addr) const;

    /**
     * Checks structural invariants of every function body (monotonic
     * offsets, spans inside the body, valid callee ids, trailing Ret).
     * Calls panic() on violation; intended for tests and builders.
     */
    void validate() const;

  private:
    std::vector<Function> funcs_;
    /** Function ids sorted by address (built by layout). */
    std::vector<FuncId> byAddr_;
    std::uint64_t totalCode_ = 0;
    bool laidOut_ = false;
};

} // namespace hp

#endif // HP_BINARY_PROGRAM_HH
