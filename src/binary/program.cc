#include "binary/program.hh"

#include <algorithm>

#include "util/logging.hh"

namespace hp
{

std::uint32_t
Function::numInsts() const
{
    if (body.empty())
        return 0;
    const BodyOp &last = body.back();
    std::uint32_t end = last.offset;
    end += (last.kind == OpKind::Run) ? last.length : 1;
    return end;
}

FuncId
Program::addFunction(std::string name, std::uint16_t module)
{
    panicIf(laidOut_, "cannot add functions after layout");
    Function fn;
    fn.id = static_cast<FuncId>(funcs_.size());
    fn.name = std::move(name);
    fn.module = module;
    funcs_.push_back(std::move(fn));
    return funcs_.back().id;
}

void
Program::layout(Addr base)
{
    panicIf(laidOut_, "Program::layout called twice");

    // Group functions by module, preserving creation order within a
    // module: real linkers lay out each object/library contiguously,
    // which gives the spatial locality the spatial-region compression
    // in the prefetchers depends on.
    std::vector<FuncId> order(funcs_.size());
    for (std::size_t i = 0; i < order.size(); ++i)
        order[i] = static_cast<FuncId>(i);
    std::stable_sort(order.begin(), order.end(),
                     [this](FuncId a, FuncId b) {
                         return funcs_[a].module < funcs_[b].module;
                     });

    Addr cursor = base;
    for (FuncId id : order) {
        Function &fn = funcs_[id];
        fn.addr = cursor;
        // Functions are aligned to 16 bytes, like typical compilers.
        cursor += roundUp(std::max<std::uint64_t>(fn.sizeBytes(),
                                                  kInstBytes), 16);
    }
    totalCode_ = cursor - base;

    byAddr_ = order;
    std::sort(byAddr_.begin(), byAddr_.end(),
              [this](FuncId a, FuncId b) {
                  return funcs_[a].addr < funcs_[b].addr;
              });
    laidOut_ = true;
}

FuncId
Program::funcAt(Addr addr) const
{
    panicIf(!laidOut_, "Program::funcAt before layout");
    auto it = std::upper_bound(
        byAddr_.begin(), byAddr_.end(), addr,
        [this](Addr a, FuncId id) { return a < funcs_[id].addr; });
    if (it == byAddr_.begin())
        return kNoFunc;
    FuncId id = *(it - 1);
    const Function &fn = funcs_[id];
    if (addr < fn.addr + fn.sizeBytes())
        return id;
    return kNoFunc;
}

void
Program::validate() const
{
    for (const Function &fn : funcs_) {
        std::uint32_t cursor = 0;
        for (std::size_t i = 0; i < fn.body.size(); ++i) {
            const BodyOp &op = fn.body[i];
            panicIf(op.offset != cursor,
                    "body op offset mismatch in " + fn.name);
            switch (op.kind) {
              case OpKind::Run:
                panicIf(op.length == 0, "empty Run in " + fn.name);
                cursor += op.length;
                break;
              case OpKind::Branch:
                panicIf(op.offset + 1 + op.span > fn.numInsts(),
                        "Branch skips past end of " + fn.name);
                cursor += 1;
                break;
              case OpKind::Loop:
                panicIf(op.span > op.offset,
                        "Loop jumps before entry of " + fn.name);
                cursor += 1;
                break;
              case OpKind::CallSite:
                panicIf(op.targetIdx >= fn.targets.size(),
                        "CallSite target index out of range in " + fn.name);
                for (FuncId callee : fn.targets[op.targetIdx].candidates) {
                    panicIf(callee >= funcs_.size(),
                            "CallSite callee out of range in " + fn.name);
                }
                panicIf(fn.targets[op.targetIdx].candidates.empty(),
                        "CallSite with no candidates in " + fn.name);
                cursor += 1;
                break;
              case OpKind::Ret:
                panicIf(i + 1 != fn.body.size(),
                        "Ret not last op in " + fn.name);
                cursor += 1;
                break;
            }
        }
        if (!fn.body.empty()) {
            panicIf(fn.body.back().kind != OpKind::Ret,
                    "function " + fn.name + " does not end in Ret");
        }
    }
}

} // namespace hp
