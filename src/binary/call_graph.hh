/**
 * @file
 * Static call graph and reachable-size analysis.
 *
 * This implements the first two steps of the paper's Algorithm 1: call
 * graph construction from the program image, and per-function reachable
 * size (total unique code bytes of the function and everything reachable
 * from it). Cycles (recursion) are handled by condensing strongly
 * connected components first, exactly as a production implementation
 * over real binaries must.
 */

#ifndef HP_BINARY_CALL_GRAPH_HH
#define HP_BINARY_CALL_GRAPH_HH

#include <cstdint>
#include <vector>

#include "binary/program.hh"

namespace hp
{

/** Static call graph with parent/child adjacency and SCC condensation. */
class CallGraph
{
  public:
    /**
     * Builds the graph from @p program: one node per function, one edge
     * per (caller, candidate callee) pair; indirect call sites
     * contribute one edge per candidate. Duplicate edges are collapsed.
     */
    explicit CallGraph(const Program &program);

    std::size_t numFunctions() const { return children_.size(); }

    const std::vector<FuncId> &children(FuncId f) const { return children_[f]; }
    const std::vector<FuncId> &parents(FuncId f) const { return parents_[f]; }

    /** Functions that no other function calls (request entry points). */
    const std::vector<FuncId> &roots() const { return roots_; }

    /** SCC index of a function (computed lazily on first use). */
    std::uint32_t sccOf(FuncId f) const;

    std::size_t numSccs() const;

    /**
     * Reachable size per function: unique code bytes of the function
     * plus all functions transitively reachable from it. All members of
     * an SCC share a value. Computed lazily and cached.
     */
    const std::vector<std::uint64_t> &reachableSizes() const;

  private:
    void computeSccs() const;
    void computeReachable() const;

    const Program &program_;
    std::vector<std::vector<FuncId>> children_;
    std::vector<std::vector<FuncId>> parents_;
    std::vector<FuncId> roots_;

    // Lazily computed analyses (logically const).
    mutable std::vector<std::uint32_t> scc_;
    mutable std::uint32_t numSccs_ = 0;
    mutable std::vector<std::uint64_t> reachable_;
};

} // namespace hp

#endif // HP_BINARY_CALL_GRAPH_HH
