#include "core/metadata_table.hh"

#include "util/serialize.hh"

#include "util/logging.hh"

namespace hp
{

MetadataAddressTable::MetadataAddressTable(unsigned entries, unsigned ways,
                                           unsigned pointer_bits)
    : ways_(ways), pointerBits_(pointer_bits)
{
    fatalIf(ways == 0 || entries == 0 || entries % ways != 0,
            "Metadata Address Table geometry invalid");
    numSets_ = entries / ways;
    fatalIf((numSets_ & (numSets_ - 1)) != 0,
            "Metadata Address Table set count must be a power of two");
    setBits_ = 0;
    while ((1u << setBits_) < numSets_)
        ++setBits_;
    ways_storage_.resize(numSets_ * ways_);
}

std::optional<SegIdx>
MetadataAddressTable::lookup(BundleId id)
{
    Way *set = &ways_storage_[setIndex(id) * ways_];
    for (unsigned w = 0; w < ways_; ++w) {
        if (set[w].valid && set[w].tag == tagOf(id)) {
            set[w].lastUse = ++useClock_;
            return set[w].head;
        }
    }
    return std::nullopt;
}

void
MetadataAddressTable::insert(BundleId id, SegIdx head)
{
    Way *set = &ways_storage_[setIndex(id) * ways_];
    Way *victim = &set[0];
    for (unsigned w = 0; w < ways_; ++w) {
        if (set[w].valid && set[w].tag == tagOf(id)) {
            victim = &set[w];
            break;
        }
        if (!set[w].valid) {
            victim = &set[w];
            break;
        }
        if (set[w].lastUse < victim->lastUse)
            victim = &set[w];
    }
    victim->valid = true;
    victim->tag = tagOf(id);
    victim->head = head;
    victim->lastUse = ++useClock_;
}

void
MetadataAddressTable::invalidate(BundleId id)
{
    Way *set = &ways_storage_[setIndex(id) * ways_];
    for (unsigned w = 0; w < ways_; ++w) {
        if (set[w].valid && set[w].tag == tagOf(id)) {
            set[w].valid = false;
            return;
        }
    }
}

std::uint64_t
MetadataAddressTable::storageBits() const
{
    // Per entry: tag + pointer + valid bit; plus one LRU bit per way
    // as in the paper's 15872-bit accounting for 512 x 8-way.
    std::uint64_t tag_bits = kBundleIdBits - setBits_;
    std::uint64_t per_entry = tag_bits + pointerBits_ + 1 + 1;
    return per_entry * numEntries();
}

std::size_t
MetadataAddressTable::occupancy() const
{
    std::size_t live = 0;
    for (const Way &way : ways_storage_)
        live += way.valid ? 1 : 0;
    return live;
}

template <class Ar>
void
MetadataAddressTable::serializeState(Ar &ar)
{
    if (!checkShape(ar, ways_storage_))
        return;
    io(ar, useClock_);
    io(ar, ways_storage_);
}

template void MetadataAddressTable::serializeState(StateWriter &);
template void MetadataAddressTable::serializeState(StateLoader &);

} // namespace hp
