/**
 * @file
 * Metadata Address Table (Section 5.3.3): the only sizable on-chip
 * structure of the Hierarchical Prefetcher. A set-associative,
 * LRU-replaced table mapping 24-bit Bundle IDs to the head-segment
 * index of their record in the in-memory Metadata Buffer.
 *
 * Default geometry (512 entries, 8-way, 18-bit tag + 11-bit pointer +
 * valid bit + per-way LRU bit) matches the paper's 1.94 KB budget.
 */

#ifndef HP_CORE_METADATA_TABLE_HH
#define HP_CORE_METADATA_TABLE_HH

#include <cstdint>
#include <optional>
#include <vector>

#include "core/metadata_buffer.hh"

namespace hp
{

/** 24-bit Bundle identifier. */
using BundleId = std::uint32_t;

/** Width of a Bundle ID in bits. */
constexpr unsigned kBundleIdBits = 24;

/** Set-associative Bundle ID -> head segment map with LRU replacement. */
class MetadataAddressTable
{
  public:
    /**
     * @param entries     Total entries (power of two; paper: 512).
     * @param ways        Associativity (paper: 8).
     * @param pointer_bits Width of the stored segment pointer, used
     *                    only for the storage-bit report.
     */
    MetadataAddressTable(unsigned entries = 512, unsigned ways = 8,
                         unsigned pointer_bits = 11);

    /**
     * Looks up @p id and refreshes its LRU position on hit.
     * @return Head segment index, or nullopt on miss.
     */
    std::optional<SegIdx> lookup(BundleId id);

    /**
     * Inserts or updates the mapping, evicting the set's LRU entry if
     * needed.
     */
    void insert(BundleId id, SegIdx head);

    /** Removes the mapping for @p id if present (buffer wraparound). */
    void invalidate(BundleId id);

    /** On-chip storage in bits (tag + pointer + valid + LRU per way). */
    std::uint64_t storageBits() const;

    unsigned numEntries() const { return numSets_ * ways_; }

    /** Resident valid entries (diagnostics). */
    std::size_t occupancy() const;

    /** Serializes/restores table contents (checkpointing). */
    template <class Ar> void serializeState(Ar &ar);

  private:
    struct Way
    {
        bool valid = false;
        std::uint32_t tag = 0;
        SegIdx head = kNoSeg;
        std::uint64_t lastUse = 0;

        template <class Ar>
        void
        serializeState(Ar &ar)
        {
            ar.value(valid);
            ar.value(tag);
            ar.value(head);
            ar.value(lastUse);
        }
    };

    unsigned setIndex(BundleId id) const { return id & (numSets_ - 1); }
    std::uint32_t tagOf(BundleId id) const { return id >> setBits_; }

    unsigned numSets_;
    unsigned setBits_;
    unsigned ways_;
    unsigned pointerBits_;
    std::uint64_t useClock_ = 0;
    std::vector<Way> ways_storage_;
};

} // namespace hp

#endif // HP_CORE_METADATA_TABLE_HH
