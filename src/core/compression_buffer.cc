#include "core/compression_buffer.hh"

#include "util/serialize.hh"

#include "util/logging.hh"

namespace hp
{

CompressionBuffer::CompressionBuffer(unsigned entries)
    : capacity_(entries)
{
    fatalIf(entries == 0, "CompressionBuffer needs at least one entry");
}

std::optional<SpatialRegion>
CompressionBuffer::touch(Addr block_addr)
{
    // Fully-associative search: newest-first, since retired blocks hit
    // the most recently opened region almost always.
    for (auto it = fifo_.rbegin(); it != fifo_.rend(); ++it) {
        if (it->covers(block_addr)) {
            it->touch(block_addr);
            return std::nullopt;
        }
    }

    SpatialRegion fresh;
    fresh.base = blockAlign(block_addr);
    fresh.touch(block_addr);

    std::optional<SpatialRegion> evicted;
    if (fifo_.size() == capacity_) {
        evicted = fifo_.front();
        fifo_.pop_front();
    }
    fifo_.push_back(fresh);
    return evicted;
}

std::vector<SpatialRegion>
CompressionBuffer::flush()
{
    std::vector<SpatialRegion> drained(fifo_.begin(), fifo_.end());
    fifo_.clear();
    return drained;
}

template <class Ar>
void
CompressionBuffer::serializeState(Ar &ar)
{
    io(ar, fifo_);
}

template void CompressionBuffer::serializeState(StateWriter &);
template void CompressionBuffer::serializeState(StateLoader &);

} // namespace hp
