/**
 * @file
 * The Hierarchical Prefetcher (Section 5.3): bulk record-and-replay of
 * Bundle instruction footprints.
 *
 * On every commit of a tagged call/return the prefetcher closes the
 * current Bundle record, derives the new Bundle ID from the address of
 * the next instruction, and (a) starts recording the new Bundle's
 * retired-block stream through the Compression Buffer into the
 * in-memory Metadata Buffer — superseding the previous record — and
 * (b) if the Metadata Address Table knows the Bundle, replays the
 * previously recorded footprint into the L1-I, segment by segment,
 * paced by the per-segment num-insts checkpoints.
 */

#ifndef HP_CORE_HIERARCHICAL_PREFETCHER_HH
#define HP_CORE_HIERARCHICAL_PREFETCHER_HH

#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "core/compression_buffer.hh"
#include "core/metadata_buffer.hh"
#include "core/metadata_table.hh"
#include "prefetch/prefetcher.hh"
#include "stats/histogram.hh"
#include "util/hash.hh"

namespace hp
{

/** Configuration of the Hierarchical Prefetcher. */
struct HierarchicalConfig
{
    /** Compression Buffer entries (paper: 16). */
    unsigned compressionEntries = 16;

    /** In-memory Metadata Buffer capacity (paper: 512 KB per core). */
    std::uint64_t metadataBufferBytes = 512 * 1024;

    /** Metadata Address Table entries (paper: 512). */
    unsigned matEntries = 512;

    /** Metadata Address Table associativity (paper: 8). */
    unsigned matWays = 8;

    /**
     * Record-length threshold in segments; recording stops once a
     * Bundle has filled this many segments (Section 5, "until ... the
     * record length exceeds a predetermined threshold").
     */
    unsigned maxSegmentsPerBundle = 64;

    /** Segments replayed immediately at Bundle start (paper: 2). */
    unsigned aheadSegments = 2;

    /**
     * Issue each block at most once per replay. The record's region
     * sequence repeats blocks that loops re-touch; deduplicating keeps
     * replay volume near the Bundle footprint.
     */
    bool replayDedup = true;

    /**
     * Stream a segment's regions across the previous segment's
     * execution window instead of dumping the whole segment at its
     * gate (ablation: off reverts to segment-burst replay, which
     * thrashes the L1-I for Bundles whose footprint nears its size).
     */
    bool subSegmentPacing = true;

    /**
     * Supersede the previous record in place (the paper's design:
     * replay only the most recent execution). Ablation: off switches
     * to accumulation — new executions append to the old record, so
     * replay carries every path ever observed, trading accuracy for
     * coverage like a conventional history table.
     */
    bool supersedeRecords = true;

    /**
     * Optional analysis probes (per-Bundle footprints and Jaccard
     * indices for Table 4); off by default for speed.
     */
    bool trackBundleStats = false;

    bool operator==(const HierarchicalConfig &) const = default;
};

/** Aggregate statistics exported by the prefetcher. */
struct HierarchicalStats
{
    std::uint64_t taggedCommits = 0;
    std::uint64_t bundlesStarted = 0;
    std::uint64_t matHits = 0;
    std::uint64_t matMisses = 0;
    std::uint64_t matInvalidations = 0;
    std::uint64_t segmentsAllocated = 0;
    std::uint64_t regionsRecorded = 0;
    std::uint64_t replaysStarted = 0;
    std::uint64_t replayPrefetches = 0;
    std::uint64_t recordsTruncated = 0;
    std::uint64_t metadataReadBytes = 0;
    std::uint64_t metadataWriteBytes = 0;

    /** Per-Bundle-execution analysis (only with trackBundleStats). */
    Accumulator bundleExecInsts;
    Accumulator bundleExecCycles;
    Accumulator bundleFootprintBlocks;
    Accumulator bundleJaccard;

    /** Distinct Bundle IDs observed at run time. */
    std::uint64_t dynamicBundles = 0;

    template <class Ar>
    void
    serializeState(Ar &ar)
    {
        ar.value(taggedCommits);
        ar.value(bundlesStarted);
        ar.value(matHits);
        ar.value(matMisses);
        ar.value(matInvalidations);
        ar.value(segmentsAllocated);
        ar.value(regionsRecorded);
        ar.value(replaysStarted);
        ar.value(replayPrefetches);
        ar.value(recordsTruncated);
        ar.value(metadataReadBytes);
        ar.value(metadataWriteBytes);
        bundleExecInsts.serializeState(ar);
        bundleExecCycles.serializeState(ar);
        bundleFootprintBlocks.serializeState(ar);
        bundleJaccard.serializeState(ar);
        ar.value(dynamicBundles);
    }
};

/** Derives the 24-bit Bundle ID from the post-trigger instruction. */
inline BundleId
bundleIdFor(Addr next_pc)
{
    return static_cast<BundleId>(foldTo(mix64(next_pc), kBundleIdBits));
}

/** The hardware prefetcher. */
class HierarchicalPrefetcher final : public Prefetcher
{
  public:
    HierarchicalPrefetcher(const HierarchicalConfig &config,
                           MetadataMemory &memory);

    std::string name() const override { return "Hierarchical"; }

    std::uint64_t storageBits() const override;

    void onCommit(const DynInst &inst, Cycle now) override;

    void tick(Cycle now) override;

    void registerStats(StatsRegistry &reg,
                       const std::string &prefix) const override;

    const HierarchicalStats &stats() const { return stats_; }

    const HierarchicalConfig &config() const { return config_; }

    /** Metadata Address Table occupancy (diagnostics). */
    std::size_t tableOccupancy() const { return table_.occupancy(); }

    void saveState(StateWriter &ar) override;
    void restoreState(StateLoader &ar) override;

  private:
    /** One segment's worth of replay work. */
    struct ReplaySegment
    {
        std::vector<SpatialRegion> regions;
        /** Replay gate: issue once this many insts have retired. */
        std::uint64_t gateInsts = 0;
        /**
         * Sub-segment pacing window: regions are streamed across
         * [paceStart, paceEnd) retired instructions, modeling the
         * region FIFO that feeds the prefetch engine at the pace the
         * core consumes the previous segment (Section 5.3.5). The
         * first segment is issued immediately.
         */
        std::uint64_t paceStart = 0;
        std::uint64_t paceEnd = 0;
        bool immediate = false;
        /** Next region to issue. */
        std::size_t cursor = 0;
        /** Metadata read completion time. */
        Cycle readyAt = 0;

        template <class Ar>
        void
        serializeState(Ar &ar)
        {
            io(ar, regions);
            ar.value(gateInsts);
            ar.value(paceStart);
            ar.value(paceEnd);
            ar.value(immediate);
            ar.value(cursor);
            ar.value(readyAt);
        }
    };

    template <class Ar> void serializeState(Ar &ar);

    void bundleBoundary(const DynInst &inst, Cycle now);
    void endRecord(Cycle now);
    void beginRecord(BundleId id, Cycle now);
    void beginReplay(SegIdx head, Cycle now);
    void appendRegion(const SpatialRegion &region, Cycle now);
    void advanceRecordSegment(Cycle now);

    HierarchicalConfig config_;
    MetadataMemory &memory_;

    CompressionBuffer compression_;
    MetadataBuffer buffer_;
    MetadataAddressTable table_;

    // ---- Record state ----
    bool recording_ = false;
    BundleId recordId_ = 0;
    SegIdx recordHead_ = kNoSeg;
    SegIdx recordCur_ = kNoSeg;
    /** Pre-existing chain segments to reuse when superseding. */
    SegIdx supersedeNext_ = kNoSeg;
    unsigned recordSegments_ = 0;
    std::uint64_t recordInsts_ = 0;
    Cycle recordStartCycle_ = 0;
    Addr lastBlock_ = ~Addr(0);

    // ---- Replay state ----
    std::vector<ReplaySegment> replay_;
    std::size_t replayPos_ = 0;
    /**
     * Blocks already issued for the current replay. Loops re-open
     * spatial regions in the record, so a Bundle's region sequence
     * repeats blocks; issuing each block once per Bundle keeps the
     * replay from thrashing the L1-I with copies of content the core
     * has already consumed.
     */
    std::unordered_set<Addr> replayIssued_;

    // ---- Probes ----
    HierarchicalStats stats_;
    /** Previous execution footprint per Bundle (block set), for Jaccard. */
    std::unordered_map<BundleId, std::vector<Addr>> prevFootprint_;
    std::vector<Addr> curFootprint_;

    friend class HierarchicalPrefetcherProbe;
};

} // namespace hp

#endif // HP_CORE_HIERARCHICAL_PREFETCHER_HH
