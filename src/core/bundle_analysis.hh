/**
 * @file
 * Bundle entry-point identification (the paper's Algorithm 1).
 *
 * A Bundle is the stable acyclic region of the call graph between major
 * control-flow divergence points. A function becomes a Bundle entry
 * when (a) its reachable size meets the divergence threshold and (b) it
 * is either a call-graph root or some caller's reachable size exceeds
 * its own by more than the threshold (a major divergence point).
 */

#ifndef HP_CORE_BUNDLE_ANALYSIS_HH
#define HP_CORE_BUNDLE_ANALYSIS_HH

#include <cstdint>
#include <vector>

#include "binary/call_graph.hh"
#include "binary/program.hh"

namespace hp
{

/** Default divergence threshold from the paper (200 KB). */
constexpr std::uint64_t kDefaultBundleThreshold = 200 * 1024;

/** Result of the Bundle identification pass. */
struct BundleAnalysis
{
    /** Functions whose entry starts a Bundle, in ascending id order. */
    std::vector<FuncId> entries;

    /** Reachable size (bytes) of every function, for reporting. */
    std::vector<std::uint64_t> reachableSizes;

    /** Convenience: entries.size() / numFunctions. */
    double entryFraction = 0.0;

    /** True if @p f is a Bundle entry. */
    bool isEntry(FuncId f) const { return entryMask_[f]; }

    friend BundleAnalysis findBundleEntries(const CallGraph &,
                                            std::uint64_t);

  private:
    std::vector<bool> entryMask_;
};

/**
 * Runs Algorithm 1 over a call graph.
 *
 * @param graph     Call graph of the laid-out program.
 * @param threshold Divergence threshold in bytes (paper: 200 KB).
 */
BundleAnalysis findBundleEntries(
    const CallGraph &graph,
    std::uint64_t threshold = kDefaultBundleThreshold);

} // namespace hp

#endif // HP_CORE_BUNDLE_ANALYSIS_HH
