/**
 * @file
 * Spatial region encoding: a base cache-block address plus a 32-bit
 * vector of the blocks touched in the 32-block window starting at the
 * base. This is the compression unit shared by the Compression Buffer,
 * the Metadata Buffer and the replay engine (Section 5.3.1).
 */

#ifndef HP_CORE_SPATIAL_REGION_HH
#define HP_CORE_SPATIAL_REGION_HH

#include <cstdint>

#include "util/types.hh"

namespace hp
{

/** Number of cache blocks covered by one spatial region. */
constexpr unsigned kRegionBlocks = 32;

/**
 * Bytes one region occupies in the in-memory metadata encoding:
 * a 6-byte block base plus a 4-byte bit vector, padded to 11 bytes so
 * that a 32-region segment plus header lands at the paper's 0.36 KB.
 */
constexpr unsigned kRegionEncodedBytes = 11;

/** One spatial region: block-aligned base plus touched-block vector. */
struct SpatialRegion
{
    /** Block-aligned base address of the window. */
    Addr base = 0;

    /** Bit i set means block (base + i * kBlockBytes) was touched. */
    std::uint32_t bits = 0;

    /** True if @p block_addr falls in this region's 32-block window. */
    bool
    covers(Addr block_addr) const
    {
        return block_addr >= base &&
               block_addr < base + Addr(kRegionBlocks) * kBlockBytes;
    }

    /** Sets the bit for @p block_addr (must be covered). */
    void
    touch(Addr block_addr)
    {
        bits |= 1u << ((block_addr - base) >> kBlockShift);
    }

    /** Number of touched blocks. */
    unsigned count() const { return __builtin_popcount(bits); }

    template <class Ar>
    void
    serializeState(Ar &ar)
    {
        ar.value(base);
        ar.value(bits);
    }

    /** Address of the i-th block in the window. */
    Addr
    blockAt(unsigned i) const
    {
        return base + Addr(i) * kBlockBytes;
    }

    bool operator==(const SpatialRegion &other) const = default;
};

} // namespace hp

#endif // HP_CORE_SPATIAL_REGION_HH
