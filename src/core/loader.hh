/**
 * @file
 * The software/hardware interface (Section 5.2): the linker-side pass
 * that records Bundle entry points in a binary segment, and the
 * loader-side pass that tags the corresponding call and return
 * instructions via the reserved encoding bit.
 */

#ifndef HP_CORE_LOADER_HH
#define HP_CORE_LOADER_HH

#include <cstdint>
#include <unordered_set>
#include <vector>

#include "binary/program.hh"
#include "core/bundle_analysis.hh"

namespace hp
{

/**
 * The ELF-like metadata segment emitted at link time: the addresses of
 * every instruction that must carry the Bundle entry tag. Tagged
 * instructions are (a) call instructions whose callee (or any indirect
 * candidate) is a Bundle entry function and (b) the return instructions
 * of Bundle entry functions.
 */
struct BundleInfoSection
{
    /** Sorted, unique addresses of tagged instructions. */
    std::vector<Addr> taggedInstructions;

    /** Entry functions, kept for diagnostics. */
    std::vector<FuncId> entryFunctions;
};

/** Builds the metadata segment from an analysis result. */
BundleInfoSection buildBundleInfo(const Program &program,
                                  const BundleAnalysis &analysis);

/**
 * Loader-side tag map: O(1) "is this instruction tagged?" lookups,
 * emulating the reserved bit the loader sets in each call/ret encoding.
 */
class TagMap
{
  public:
    TagMap() = default;

    explicit TagMap(const BundleInfoSection &section)
        : tags_(section.taggedInstructions.begin(),
                section.taggedInstructions.end())
    {}

    bool isTagged(Addr pc) const { return tags_.count(pc) != 0; }

    std::size_t size() const { return tags_.size(); }

  private:
    std::unordered_set<Addr> tags_;
};

/** Everything the link+load pipeline produces for one program. */
struct LinkedImage
{
    BundleAnalysis analysis;
    BundleInfoSection section;
    TagMap tags;
};

/**
 * Convenience wrapper for the full software flow: call-graph
 * construction, Algorithm 1, segment emission, and tagging.
 */
LinkedImage linkAndTag(const Program &program,
                       std::uint64_t threshold = kDefaultBundleThreshold);

} // namespace hp

#endif // HP_CORE_LOADER_HH
