/**
 * @file
 * In-memory Metadata Buffer (Section 5.3.2): stores every Bundle's
 * spatial-region sequence as a chain of fixed-size segments allocated
 * from a circular buffer. When the buffer wraps, reclaimed segments
 * invalidate their owning Bundle (the caller invalidates the Metadata
 * Address Table entry).
 */

#ifndef HP_CORE_METADATA_BUFFER_HH
#define HP_CORE_METADATA_BUFFER_HH

#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include "core/spatial_region.hh"

namespace hp
{

/** Spatial regions per segment (Section 5.3: 32). */
constexpr unsigned kRegionsPerSegment = 32;

/** Segment header: next pointer, num-insts checkpoint, Bundle ID. */
constexpr unsigned kSegmentHeaderBytes = 16;

/** Encoded size of one segment (the paper's 0.36 KB prefetch unit). */
constexpr unsigned kSegmentEncodedBytes =
    kRegionsPerSegment * kRegionEncodedBytes + kSegmentHeaderBytes;

/** Segment index inside the Metadata Buffer. */
using SegIdx = std::uint32_t;

/** Sentinel for "no segment". */
constexpr SegIdx kNoSeg = 0xffffffff;

/** One segment of a Bundle record. */
struct Segment
{
    /** Bundle that owns this segment (24-bit ID); checked on replay. */
    std::uint32_t owner = 0;

    /** True only for the head segment of a chain. */
    bool headOfBundle = false;

    /** True once allocated (until reclaimed by the circular cursor). */
    bool live = false;

    /** Next segment in the chain, or kNoSeg. */
    SegIdx next = kNoSeg;

    /**
     * Instructions retired from the Bundle start when this segment was
     * created; paces the replay of the following segment (§5.3.5).
     */
    std::uint64_t numInsts = 0;

    /** Recorded spatial regions (up to kRegionsPerSegment). */
    std::vector<SpatialRegion> regions;

    bool full() const { return regions.size() >= kRegionsPerSegment; }

    template <class Ar>
    void
    serializeState(Ar &ar)
    {
        ar.value(owner);
        ar.value(headOfBundle);
        ar.value(live);
        ar.value(next);
        ar.value(numInsts);
        io(ar, regions);
    }
};

/**
 * The circular segment allocator plus segment storage. This class
 * models only the *contents* of the in-memory buffer; the latency and
 * bandwidth of reaching it are charged by the prefetcher through the
 * MetadataMemory service.
 */
class MetadataBuffer
{
  public:
    /** @param capacity_bytes Total buffer size (paper: 512 KB/core). */
    explicit MetadataBuffer(std::uint64_t capacity_bytes = 512 * 1024);

    std::size_t numSegments() const { return segments_.size(); }

    /**
     * Allocates the segment at the circular cursor for @p owner.
     * @return Pair of (new segment index, owner Bundle ID of a
     *         reclaimed head segment if one was overwritten —
     *         the caller must invalidate its table entry).
     */
    std::pair<SegIdx, std::optional<std::uint32_t>>
    allocate(std::uint32_t owner, bool head);

    Segment &seg(SegIdx idx) { return segments_[idx]; }
    const Segment &seg(SegIdx idx) const { return segments_[idx]; }

    /** True if @p idx currently belongs to Bundle @p owner. */
    bool
    ownedBy(SegIdx idx, std::uint32_t owner) const
    {
        return idx < segments_.size() && segments_[idx].owner == owner &&
               segments_[idx].live;
    }

    /** Bits needed to index a segment (the table pointer width). */
    unsigned pointerBits() const;

    /** Serializes/restores segments and the circular cursor. */
    template <class Ar> void serializeState(Ar &ar);

  private:
    std::vector<Segment> segments_;
    SegIdx cursor_ = 0;
};

} // namespace hp

#endif // HP_CORE_METADATA_BUFFER_HH
