/**
 * @file
 * Compression Buffer (Section 5.3.1): a small fully-associative FIFO of
 * spatial regions that compacts the retired-block stream before it is
 * written to the in-memory Metadata Buffer.
 */

#ifndef HP_CORE_COMPRESSION_BUFFER_HH
#define HP_CORE_COMPRESSION_BUFFER_HH

#include <deque>
#include <optional>
#include <vector>

#include "core/spatial_region.hh"

namespace hp
{

/**
 * FIFO of spatial regions. Each retired block either sets a bit in a
 * matching resident region or opens a new region (evicting the oldest
 * when full). Region creation order is preserved so replay approximates
 * the retire order.
 */
class CompressionBuffer
{
  public:
    explicit CompressionBuffer(unsigned entries = 16);

    /**
     * Records one retired cache block.
     * @param block_addr Block-aligned instruction address.
     * @return The evicted region if the insertion displaced one.
     */
    std::optional<SpatialRegion> touch(Addr block_addr);

    /** Drains all resident regions in FIFO order and empties the buffer. */
    std::vector<SpatialRegion> flush();

    std::size_t size() const { return fifo_.size(); }
    unsigned capacity() const { return capacity_; }

    /** On-chip storage in bits (base 58b + vector 32b per entry). */
    std::uint64_t storageBits() const { return std::uint64_t(capacity_) * (58 + 32); }

    /** Serializes/restores the resident regions (checkpointing). */
    template <class Ar> void serializeState(Ar &ar);

  private:
    unsigned capacity_;
    std::deque<SpatialRegion> fifo_;
};

} // namespace hp

#endif // HP_CORE_COMPRESSION_BUFFER_HH
