#include "core/metadata_buffer.hh"

#include "util/serialize.hh"

#include "util/logging.hh"

namespace hp
{

MetadataBuffer::MetadataBuffer(std::uint64_t capacity_bytes)
{
    std::uint64_t count = capacity_bytes / kSegmentEncodedBytes;
    fatalIf(count < 2, "Metadata Buffer too small for two segments");
    segments_.resize(count);
}

std::pair<SegIdx, std::optional<std::uint32_t>>
MetadataBuffer::allocate(std::uint32_t owner, bool head)
{
    SegIdx idx = cursor_;
    cursor_ = (cursor_ + 1) % segments_.size();

    Segment &victim = segments_[idx];
    std::optional<std::uint32_t> invalidated;
    if (victim.live && victim.headOfBundle && victim.owner != owner)
        invalidated = victim.owner;

    victim.owner = owner;
    victim.headOfBundle = head;
    victim.live = true;
    victim.next = kNoSeg;
    victim.numInsts = 0;
    victim.regions.clear();
    return {idx, invalidated};
}

unsigned
MetadataBuffer::pointerBits() const
{
    unsigned bits = 1;
    while ((1ull << bits) < segments_.size())
        ++bits;
    return bits;
}

template <class Ar>
void
MetadataBuffer::serializeState(Ar &ar)
{
    if (!checkShape(ar, segments_))
        return;
    io(ar, segments_);
    io(ar, cursor_);
}

template void MetadataBuffer::serializeState(StateWriter &);
template void MetadataBuffer::serializeState(StateLoader &);

} // namespace hp
