#include "core/loader.hh"

#include <algorithm>

namespace hp
{

BundleInfoSection
buildBundleInfo(const Program &program, const BundleAnalysis &analysis)
{
    BundleInfoSection section;
    section.entryFunctions = analysis.entries;

    for (const Function &fn : program.functions()) {
        for (const BodyOp &op : fn.body) {
            switch (op.kind) {
              case OpKind::CallSite:
                // Tag the call if any candidate callee is an entry; at
                // run time the hardware derives the Bundle ID from the
                // actual target, so indirect sites with a mix of entry
                // and non-entry candidates still behave sensibly.
                for (FuncId callee : fn.targets[op.targetIdx].candidates) {
                    if (analysis.isEntry(callee)) {
                        section.taggedInstructions.push_back(
                            fn.instAddr(op.offset));
                        break;
                    }
                }
                break;
              case OpKind::Ret:
                if (analysis.isEntry(fn.id)) {
                    section.taggedInstructions.push_back(
                        fn.instAddr(op.offset));
                }
                break;
              default:
                break;
            }
        }
    }

    std::sort(section.taggedInstructions.begin(),
              section.taggedInstructions.end());
    section.taggedInstructions.erase(
        std::unique(section.taggedInstructions.begin(),
                    section.taggedInstructions.end()),
        section.taggedInstructions.end());
    return section;
}

LinkedImage
linkAndTag(const Program &program, std::uint64_t threshold)
{
    LinkedImage image;
    CallGraph graph(program);
    image.analysis = findBundleEntries(graph, threshold);
    image.section = buildBundleInfo(program, image.analysis);
    image.tags = TagMap(image.section);
    return image;
}

} // namespace hp
