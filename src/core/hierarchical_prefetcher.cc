#include "core/hierarchical_prefetcher.hh"

#include <algorithm>

#include "util/logging.hh"

namespace hp
{

namespace
{

/** Pointer width for the default 512 KB buffer (11 bits, per paper). */
unsigned
tablePointerBits(const MetadataBuffer &buffer)
{
    return buffer.pointerBits();
}

} // namespace

HierarchicalPrefetcher::HierarchicalPrefetcher(
    const HierarchicalConfig &config, MetadataMemory &memory)
    : config_(config),
      memory_(memory),
      compression_(config.compressionEntries),
      buffer_(config.metadataBufferBytes),
      table_(config.matEntries, config.matWays,
             /*pointer_bits=*/0)
{
    // Rebuild the table with the pointer width the buffer actually
    // needs so the storage report is exact.
    table_ = MetadataAddressTable(config.matEntries, config.matWays,
                                  tablePointerBits(buffer_));
    // Bulk replay: a Bundle can stream thousands of blocks; the queue
    // is the pacing buffer between segment reads and the issue port.
    setMaxQueue(8192);
}

std::uint64_t
HierarchicalPrefetcher::storageBits() const
{
    // Only the Metadata Address Table and the Compression Buffer live
    // on chip; all Bundle records are in main memory.
    return table_.storageBits() + compression_.storageBits();
}

void
HierarchicalPrefetcher::registerStats(StatsRegistry &reg,
                                      const std::string &prefix) const
{
    Prefetcher::registerStats(reg, prefix);
    const HierarchicalStats &s = stats_;
    reg.add(prefix + ".tagged_commits",
            [&s] { return s.taggedCommits; });
    reg.add(prefix + ".bundles_started",
            [&s] { return s.bundlesStarted; });
    reg.add(prefix + ".mat_hits", [&s] { return s.matHits; });
    reg.add(prefix + ".mat_misses", [&s] { return s.matMisses; });
    reg.add(prefix + ".mat_invalidations",
            [&s] { return s.matInvalidations; });
    reg.add(prefix + ".segments_allocated",
            [&s] { return s.segmentsAllocated; });
    reg.add(prefix + ".regions_recorded",
            [&s] { return s.regionsRecorded; });
    reg.add(prefix + ".replays_started",
            [&s] { return s.replaysStarted; });
    reg.add(prefix + ".replay_prefetches",
            [&s] { return s.replayPrefetches; });
    reg.add(prefix + ".records_truncated",
            [&s] { return s.recordsTruncated; });
    reg.add(prefix + ".metadata_read_bytes",
            [&s] { return s.metadataReadBytes; });
    reg.add(prefix + ".metadata_write_bytes",
            [&s] { return s.metadataWriteBytes; });
    reg.add(prefix + ".dynamic_bundles",
            [&s] { return s.dynamicBundles; });
}

void
HierarchicalPrefetcher::onCommit(const DynInst &inst, Cycle now)
{
    if (inst.tagged && (isCall(inst.kind) || inst.kind == InstKind::Return))
        bundleBoundary(inst, now);

    if (!recording_)
        return;

    ++recordInsts_;
    Addr block = blockAlign(inst.pc);
    if (block != lastBlock_) {
        lastBlock_ = block;
        if (auto evicted = compression_.touch(block))
            appendRegion(*evicted, now);
        if (config_.trackBundleStats)
            curFootprint_.push_back(block);
    }
}

void
HierarchicalPrefetcher::bundleBoundary(const DynInst &inst, Cycle now)
{
    ++stats_.taggedCommits;

    endRecord(now);

    BundleId id = bundleIdFor(inst.nextFetchPc());
    ++stats_.bundlesStarted;
    HP_EMIT(eventSink(), emit(EventKind::BundleBoundary, now,
                              blockAlign(inst.pc), 0, id));

    // Replay must look up the table *before* record allocation can
    // disturb it.
    auto head = table_.lookup(id);
    if (head && buffer_.ownedBy(*head, id)) {
        ++stats_.matHits;
        beginReplay(*head, now);
    } else {
        ++stats_.matMisses;
        // A stale pointer (record reclaimed by buffer wraparound)
        // behaves like a miss.
        head.reset();
    }

    beginRecord(id, now);
    recordStartCycle_ = now;
}

void
HierarchicalPrefetcher::endRecord(Cycle now)
{
    if (!recording_)
        return;

    HP_EMIT(eventSink(), emitSpan(EventKind::BundleRecord,
                                  recordStartCycle_, now, 0, recordId_));

    for (const SpatialRegion &region : compression_.flush())
        appendRegion(region, now);

    // Terminate the chain at the current segment: a superseding record
    // that came out shorter strands the old tail, which the circular
    // allocator reclaims eventually — exactly the implicit-linked-list
    // behaviour of the in-memory buffer.
    if (recordCur_ != kNoSeg)
        buffer_.seg(recordCur_).next = kNoSeg;

    // Header writeback for the final segment.
    memory_.metadataWrite(kSegmentHeaderBytes, now);
    stats_.metadataWriteBytes += kSegmentHeaderBytes;

    if (config_.trackBundleStats) {
        stats_.bundleExecInsts.sample(double(recordInsts_));
        stats_.bundleExecCycles.sample(double(now - recordStartCycle_));

        std::sort(curFootprint_.begin(), curFootprint_.end());
        curFootprint_.erase(
            std::unique(curFootprint_.begin(), curFootprint_.end()),
            curFootprint_.end());
        stats_.bundleFootprintBlocks.sample(double(curFootprint_.size()));

        auto it = prevFootprint_.find(recordId_);
        if (it != prevFootprint_.end() && !curFootprint_.empty()) {
            std::size_t inter = 0;
            const auto &prev = it->second;
            std::size_t i = 0, j = 0;
            while (i < prev.size() && j < curFootprint_.size()) {
                if (prev[i] < curFootprint_[j]) {
                    ++i;
                } else if (prev[i] > curFootprint_[j]) {
                    ++j;
                } else {
                    ++inter;
                    ++i;
                    ++j;
                }
            }
            std::size_t uni = prev.size() + curFootprint_.size() - inter;
            if (uni > 0)
                stats_.bundleJaccard.sample(double(inter) / double(uni));
        }
        if (it == prevFootprint_.end())
            ++stats_.dynamicBundles;
        prevFootprint_[recordId_] = std::move(curFootprint_);
        curFootprint_.clear();
    }

    recording_ = false;
}

void
HierarchicalPrefetcher::beginRecord(BundleId id, Cycle now)
{
    recordId_ = id;
    recordInsts_ = 0;
    recordSegments_ = 0;
    lastBlock_ = ~Addr(0);
    curFootprint_.clear();

    auto head = table_.lookup(id);
    if (head && buffer_.ownedBy(*head, id) &&
        config_.supersedeRecords) {
        // Supersede the existing record in place.
        recordHead_ = *head;
        recordCur_ = recordHead_;
        Segment &seg = buffer_.seg(recordCur_);
        supersedeNext_ = seg.next;
        seg.regions.clear();
        seg.numInsts = 0;
        ++recordSegments_;
    } else if (head && buffer_.ownedBy(*head, id)) {
        // Accumulation ablation: append the new execution after the
        // existing chain instead of replacing it.
        recordHead_ = *head;
        recordCur_ = recordHead_;
        unsigned chain_len = 1;
        while (buffer_.seg(recordCur_).next != kNoSeg &&
               buffer_.ownedBy(buffer_.seg(recordCur_).next, id) &&
               chain_len < config_.maxSegmentsPerBundle) {
            recordCur_ = buffer_.seg(recordCur_).next;
            ++chain_len;
        }
        supersedeNext_ = kNoSeg;
        recordSegments_ = chain_len;
    } else {
        auto [idx, invalidated] = buffer_.allocate(id, /*head=*/true);
        if (invalidated) {
            table_.invalidate(*invalidated);
            ++stats_.matInvalidations;
        }
        ++stats_.segmentsAllocated;
        HP_EMIT(eventSink(), emit(EventKind::SegmentAllocated, now, 0,
                                  0, idx));
        recordHead_ = idx;
        recordCur_ = idx;
        supersedeNext_ = kNoSeg;
        ++recordSegments_;
        table_.insert(id, recordHead_);
    }

    memory_.metadataWrite(kSegmentHeaderBytes, now);
    stats_.metadataWriteBytes += kSegmentHeaderBytes;
    recording_ = true;
}

void
HierarchicalPrefetcher::advanceRecordSegment(Cycle now)
{
    Segment &cur = buffer_.seg(recordCur_);

    SegIdx next;
    if (supersedeNext_ != kNoSeg &&
        buffer_.ownedBy(supersedeNext_, recordId_)) {
        // Reuse the next segment of the superseded chain.
        next = supersedeNext_;
        Segment &reused = buffer_.seg(next);
        supersedeNext_ = reused.next;
        reused.regions.clear();
        reused.headOfBundle = false;
        reused.next = kNoSeg;
    } else {
        supersedeNext_ = kNoSeg;
        auto [idx, invalidated] = buffer_.allocate(recordId_,
                                                   /*head=*/false);
        if (invalidated) {
            table_.invalidate(*invalidated);
            ++stats_.matInvalidations;
        }
        ++stats_.segmentsAllocated;
        HP_EMIT(eventSink(), emit(EventKind::SegmentAllocated, now, 0,
                                  0, idx));
        next = idx;
    }

    cur.next = next;
    Segment &fresh = buffer_.seg(next);
    // Pacing checkpoint: replay of the segment after this one starts
    // once the Bundle has retired this many instructions.
    fresh.numInsts = recordInsts_;
    recordCur_ = next;
    ++recordSegments_;

    memory_.metadataWrite(kSegmentHeaderBytes, now);
    stats_.metadataWriteBytes += kSegmentHeaderBytes;
}

void
HierarchicalPrefetcher::appendRegion(const SpatialRegion &region, Cycle now)
{
    if (!recording_ || recordCur_ == kNoSeg)
        return;
    if (recordSegments_ > config_.maxSegmentsPerBundle) {
        ++stats_.recordsTruncated;
        return;
    }

    Segment *cur = &buffer_.seg(recordCur_);
    if (cur->full()) {
        if (recordSegments_ == config_.maxSegmentsPerBundle) {
            ++recordSegments_;
            ++stats_.recordsTruncated;
            return;
        }
        advanceRecordSegment(now);
        cur = &buffer_.seg(recordCur_);
    }
    cur->regions.push_back(region);
    ++stats_.regionsRecorded;
    HP_EMIT(eventSink(), emit(EventKind::CompressionFlush, now,
                              region.blockAt(0), 0, region.bits));

    memory_.metadataWrite(kRegionEncodedBytes, now);
    stats_.metadataWriteBytes += kRegionEncodedBytes;
}

void
HierarchicalPrefetcher::beginReplay(SegIdx head, Cycle now)
{
    // Snapshot the chain contents up front. In hardware the replay
    // reads race ahead of the superseding record's writes (the record
    // trails execution by the Compression Buffer depth while replay
    // runs ahead of execution), so reading the pre-supersede contents
    // is the common case; snapshotting models it without simulating
    // the byte-level race. Latency is still charged per segment read.
    replay_.clear();
    replayPos_ = 0;
    replayIssued_.clear();

    // Walk the chain and snapshot each segment.
    std::vector<const Segment *> chain;
    SegIdx idx = head;
    BundleId owner = buffer_.seg(head).owner;
    while (idx != kNoSeg && buffer_.ownedBy(idx, owner) &&
           chain.size() < config_.maxSegmentsPerBundle) {
        chain.push_back(&buffer_.seg(idx));
        idx = chain.back()->next;
    }

    // Pacing (Section 5.3.5): segment N+1 becomes eligible once the
    // Bundle has retired the num-insts checkpoint recorded for segment
    // N, and its regions stream out across segment N's execution
    // window — the region FIFO feeds the prefetch engine at roughly
    // the pace the core consumes the previous segment. The first
    // segment(s) are issued immediately at Bundle start.
    Cycle chain_ready = now;
    for (std::size_t i = 0; i < chain.size(); ++i) {
        ReplaySegment rs;
        rs.regions = chain[i]->regions;
        rs.immediate = i == 0;
        rs.gateInsts =
            (i < config_.aheadSegments) ? 0 : chain[i - 1]->numInsts;
        rs.paceStart = (i == 0) ? 0 : chain[i - 1]->numInsts;
        rs.paceEnd = chain[i]->numInsts;
        if (rs.paceEnd < rs.paceStart)
            rs.paceEnd = rs.paceStart;
        // Sequential chain walk: each segment's read depends on the
        // previous segment's next pointer.
        Cycle fetch_start = chain_ready;
        chain_ready = memory_.metadataRead(kSegmentEncodedBytes,
                                           chain_ready);
        rs.readyAt = chain_ready;
        stats_.metadataReadBytes += kSegmentEncodedBytes;
        HP_EMIT(eventSink(), emitSpan(EventKind::SegmentFetch,
                                      fetch_start, chain_ready, 0, i));
        replay_.push_back(std::move(rs));
    }

    if (!replay_.empty()) {
        ++stats_.replaysStarted;
        HP_EMIT(eventSink(), emit(EventKind::ReplayStart, now, 0, 0,
                                  replay_.size()));
    }
}

void
HierarchicalPrefetcher::tick(Cycle now)
{
    // Issue replay regions whose metadata has arrived, whose segment
    // gate has opened, and whose sub-segment pacing point has been
    // reached; leave queue room for a region's worth of blocks.
    while (replayPos_ < replay_.size()) {
        ReplaySegment &rs = replay_[replayPos_];
        if (now < rs.readyAt)
            return;
        if (recordInsts_ < rs.gateInsts)
            return;

        while (rs.cursor < rs.regions.size()) {
            if (config_.subSegmentPacing && !rs.immediate &&
                !rs.regions.empty()) {
                // Stream regions across the previous segment's
                // execution window.
                std::uint64_t span = rs.paceEnd - rs.paceStart;
                std::uint64_t sub_gate = rs.paceStart +
                    span * rs.cursor / rs.regions.size();
                if (recordInsts_ < sub_gate)
                    return;
            }
            if (queueDepth() + kRegionBlocks > maxQueue())
                return;

            const SpatialRegion &region = rs.regions[rs.cursor];
            std::uint32_t bits = region.bits;
            while (bits) {
                unsigned bit = __builtin_ctz(bits);
                bits &= bits - 1;
                Addr block = region.blockAt(bit);
                if (config_.replayDedup &&
                    !replayIssued_.insert(block).second) {
                    continue;
                }
                push(block);
                ++stats_.replayPrefetches;
            }
            ++rs.cursor;
        }
        ++replayPos_;
    }
}

template <class Ar>
void
HierarchicalPrefetcher::serializeState(Ar &ar)
{
    compression_.serializeState(ar);
    buffer_.serializeState(ar);
    table_.serializeState(ar);
    io(ar, recording_);
    io(ar, recordId_);
    io(ar, recordHead_);
    io(ar, recordCur_);
    io(ar, supersedeNext_);
    io(ar, recordSegments_);
    io(ar, recordInsts_);
    io(ar, recordStartCycle_);
    io(ar, lastBlock_);
    io(ar, replay_);
    io(ar, replayPos_);
    io(ar, replayIssued_);
    stats_.serializeState(ar);
    io(ar, prevFootprint_);
    io(ar, curFootprint_);
}

void
HierarchicalPrefetcher::saveState(StateWriter &ar)
{
    Prefetcher::saveState(ar);
    serializeState(ar);
}

void
HierarchicalPrefetcher::restoreState(StateLoader &ar)
{
    Prefetcher::restoreState(ar);
    serializeState(ar);
}

} // namespace hp
