#include "core/bundle_analysis.hh"

namespace hp
{

BundleAnalysis
findBundleEntries(const CallGraph &graph, std::uint64_t threshold)
{
    BundleAnalysis result;
    result.reachableSizes = graph.reachableSizes();
    const std::size_t n = graph.numFunctions();
    result.entryMask_.assign(n, false);

    for (std::size_t f = 0; f < n; ++f) {
        const std::uint64_t size = result.reachableSizes[f];
        if (size < threshold)
            continue;

        const auto &parents = graph.parents(static_cast<FuncId>(f));
        bool is_entry = false;
        if (parents.empty()) {
            // Root nodes are Bundles whenever they meet the size
            // requirement.
            is_entry = true;
        } else {
            // Relaxed divergence test from Section 5.1: the child must
            // meet the threshold and differ from some caller by more
            // than the threshold.
            for (FuncId parent : parents) {
                std::uint64_t parent_size = result.reachableSizes[parent];
                if (parent_size > size && parent_size - size > threshold) {
                    is_entry = true;
                    break;
                }
            }
        }
        if (is_entry) {
            result.entries.push_back(static_cast<FuncId>(f));
            result.entryMask_[f] = true;
        }
    }

    result.entryFraction =
        n ? static_cast<double>(result.entries.size()) / n : 0.0;
    return result;
}

} // namespace hp
