#include "cache/tlb.hh"

#include "util/logging.hh"
#include "util/serialize.hh"

namespace hp
{

Tlb::Tlb(unsigned entries, Cycle walk_latency)
    : entries_(entries), walkLatency_(walk_latency)
{
    fatalIf(entries == 0, "TLB needs at least one entry");
}

Cycle
Tlb::translate(Addr addr)
{
    ++accesses_;
    Addr page = pageAlign(addr);
    auto it = map_.find(page);
    if (it != map_.end()) {
        lru_.splice(lru_.begin(), lru_, it->second);
        return 0;
    }

    ++misses_;
    if (map_.size() >= entries_) {
        Addr victim = lru_.back();
        lru_.pop_back();
        map_.erase(victim);
    }
    lru_.push_front(page);
    map_[page] = lru_.begin();
    return walkLatency_;
}

void
Tlb::resetStats()
{
    accesses_ = 0;
    misses_ = 0;
}

template <class Ar>
void
Tlb::serializeState(Ar &ar)
{
    io(ar, lru_);
    io(ar, accesses_);
    io(ar, misses_);
    if constexpr (Ar::loading) {
        map_.clear();
        map_.reserve(lru_.size());
        for (auto it = lru_.begin(); it != lru_.end(); ++it)
            map_[*it] = it;
    }
}

template void Tlb::serializeState(StateWriter &);
template void Tlb::serializeState(StateLoader &);

} // namespace hp
