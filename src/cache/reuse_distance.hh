/**
 * @file
 * Exact LRU stack-distance (reuse-distance) tracking at cache-block
 * granularity, via the classic Olken algorithm on a Fenwick tree.
 *
 * The Figure 12 study classifies the top 10% of instruction accesses by
 * reuse distance — measured in unique interleaved cache blocks — as
 * "long-range" and asks how many of their L2 misses each prefetcher
 * eliminates.
 */

#ifndef HP_CACHE_REUSE_DISTANCE_HH
#define HP_CACHE_REUSE_DISTANCE_HH

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "util/types.hh"

namespace hp
{

/** Exact reuse-distance tracker over a block access stream. */
class ReuseDistanceTracker
{
  public:
    /** Distance reported for the first access to a block. */
    static constexpr std::uint64_t kColdAccess = ~std::uint64_t(0);

    ReuseDistanceTracker() = default;

    /**
     * Records an access to @p block.
     * @return Number of unique blocks touched since the previous access
     *         to @p block, or kColdAccess for the first access.
     */
    std::uint64_t access(Addr block);

    /** Unique blocks seen so far. */
    std::size_t uniqueBlocks() const { return lastSeq_.size(); }

    /** Serializes/restores the tracker (checkpointing). */
    template <class Ar> void serializeState(Ar &ar);

  private:
    void bitAdd(std::size_t pos, int delta);
    std::uint64_t bitPrefix(std::size_t pos) const;

    std::unordered_map<Addr, std::uint64_t> lastSeq_;
    std::vector<std::int32_t> tree_;
    std::uint64_t seq_ = 0;
};

} // namespace hp

#endif // HP_CACHE_REUSE_DISTANCE_HH
