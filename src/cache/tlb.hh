/**
 * @file
 * Instruction TLB model: fully-associative, LRU. Misses charge a fixed
 * page-walk latency; prefetch-side translations never stall the core
 * but inherit the walk latency in their readiness time (Section 5.3.5
 * dispatches spatial-region base addresses to the TLB).
 */

#ifndef HP_CACHE_TLB_HH
#define HP_CACHE_TLB_HH

#include <cstdint>
#include <list>
#include <unordered_map>

#include "stats/registry.hh"
#include "util/types.hh"

namespace hp
{

/** Fully-associative I-TLB with LRU replacement. */
class Tlb
{
  public:
    /**
     * @param entries      Capacity in page entries.
     * @param walk_latency Page-walk latency in cycles on a miss.
     */
    explicit Tlb(unsigned entries = 64, Cycle walk_latency = 50);

    /**
     * Translates the page containing @p addr.
     * @return Added latency: 0 on a hit, the walk latency on a miss
     *         (the entry is filled).
     */
    Cycle translate(Addr addr);

    std::uint64_t accesses() const { return accesses_; }
    std::uint64_t misses() const { return misses_; }
    Cycle walkLatency() const { return walkLatency_; }

    /** Registers this TLB's counters under @p prefix. */
    void
    registerStats(StatsRegistry &reg, const std::string &prefix) const
    {
        reg.add(prefix + ".accesses", [this] { return accesses_; });
        reg.add(prefix + ".misses", [this] { return misses_; });
    }

    void resetStats();

    /** Serializes/restores the LRU contents and counters; the lookup
     *  map is rebuilt from the restored list (checkpointing). */
    template <class Ar> void serializeState(Ar &ar);

  private:
    unsigned entries_;
    Cycle walkLatency_;

    /** LRU list of resident pages; front = MRU. */
    std::list<Addr> lru_;
    std::unordered_map<Addr, std::list<Addr>::iterator> map_;

    std::uint64_t accesses_ = 0;
    std::uint64_t misses_ = 0;
};

} // namespace hp

#endif // HP_CACHE_TLB_HH
