#include "cache/hierarchy.hh"

#include <algorithm>

#include "util/logging.hh"
#include "util/serialize.hh"

namespace hp
{

std::uint64_t
instShareBytes(std::uint64_t total, double fraction, unsigned ways)
{
    fatalIf(fraction <= 0.0 || fraction > 1.0,
            "instruction share must be in (0, 1]");
    std::uint64_t bytes = static_cast<std::uint64_t>(total * fraction);
    std::uint64_t set_bytes = std::uint64_t(ways) * kBlockBytes;
    bytes = std::max<std::uint64_t>(bytes / set_bytes, 1) * set_bytes;
    return bytes;
}

CacheHierarchy::CacheHierarchy(const HierarchyParams &params)
    : params_(params),
      l1i_("L1I", params.l1iBytes, params.l1iWays),
      l2_("L2i", instShareBytes(params.l2Bytes, params.l2InstFraction,
                                params.l2Ways), params.l2Ways),
      llc_("LLCi", instShareBytes(params.llcBytes, params.llcInstFraction,
                                  params.llcWays), params.llcWays),
      itlb_(params.itlbEntries, params.itlbWalkLatency)
{}

PrefetchStats &
CacheHierarchy::statsFor(Origin origin)
{
    return origin == Origin::Fdip ? stats_.fdip : stats_.ext;
}

void
CacheHierarchy::recordExtOutcome(Addr block, bool useful)
{
    auto it = extIssueSeq_.find(block);
    if (it == extIssueSeq_.end())
        return;
    std::uint64_t distance = fetchBlockSeq_ - it->second;
    extIssueSeq_.erase(it);

    unsigned bin = 0;
    while (bin + 1 < HierarchyStats::kDistanceBins &&
           (1ull << (bin + 1)) <= distance) {
        ++bin;
    }
    if (useful) {
        stats_.extUsefulDistance.sample(double(distance));
        ++stats_.extDistUseful[bin];
    } else {
        ++stats_.extDistUnused[bin];
    }
}

void
CacheHierarchy::tick(Cycle now)
{
    while (!completions_.empty() && completions_.begin()->first <= now) {
        Addr block = completions_.begin()->second;
        completions_.erase(completions_.begin());
        auto it = mshrs_.find(block);
        if (it == mshrs_.end())
            continue;
        completeFill(it->second);
        mshrs_.erase(it);
    }
}

void
CacheHierarchy::completeFill(const Mshr &mshr)
{
    if (mshr.fromMem) {
        std::uint64_t &bucket =
            mshr.origin == Origin::Demand ? stats_.dramDemandBytes :
            mshr.origin == Origin::Fdip ? stats_.dramFdipBytes :
            stats_.dramExtBytes;
        bucket += kBlockBytes;
    }

    if (mshr.fillLlc)
        llc_.insert(mshr.block, mshr.origin);
    if (mshr.fillL2)
        l2_.insert(mshr.block, mshr.origin);

    if (mshr.toL2Only)
        return;

    // A prefetched block that a demand merged into counts as serving
    // demand; insert it as used so eviction does not call it useless.
    Origin l1_origin = mshr.origin;
    EvictInfo evicted = l1i_.insert(mshr.block, l1_origin);
    if (mshr.origin != Origin::Demand) {
        ++statsFor(mshr.origin).inserted;
        HP_EMIT(obs_, emit(EventKind::PrefetchFill, mshr.readyAt,
                           mshr.block, 0, mshr.demandMerged,
                           static_cast<std::uint8_t>(mshr.origin)));
        if (mshr.demandMerged) {
            // Mark used immediately: the merged demand consumes it.
            l1i_.markUsed(mshr.block);
        }
    }
    if (evicted.valid && evicted.origin != Origin::Demand &&
        !evicted.used) {
        ++statsFor(evicted.origin).uselessEvicted;
        HP_EMIT(obs_, emit(EventKind::PrefetchEvictedUnused,
                           mshr.readyAt, evicted.block, 0, 0,
                           static_cast<std::uint8_t>(evicted.origin)));
        if (evicted.origin == Origin::Ext)
            recordExtOutcome(evicted.block, /*useful=*/false);
    }
    if (evicted.valid && attr_.enabled()) {
        attr_.onEvicted(evicted.block,
                        evicted.origin != Origin::Demand, evicted.used);
    }
}

CacheHierarchy::ProbeResult
CacheHierarchy::probeBeyondL1(Addr block, bool demand)
{
    ProbeResult result;
    if (!demand) {
        // Prefetch-side probes must not disturb recency or the
        // first-use tracking of resident blocks.
        if (l2_.contains(block)) {
            result.latency = params_.l2Latency;
            result.level = ServiceLevel::L2;
            return result;
        }
        result.fillL2 = true;
        if (llc_.contains(block)) {
            result.latency = params_.llcLatency;
            result.level = ServiceLevel::Llc;
            return result;
        }
        result.fillLlc = true;
        result.fromMem = true;
        result.latency = params_.memLatency;
        result.level = ServiceLevel::Mem;
        return result;
    }
    if (auto hit = l2_.access(block)) {
        result.latency = params_.l2Latency;
        result.level = ServiceLevel::L2;
        if (demand && hit->firstUse) {
            if (hit->origin == Origin::Ext)
                result.extServedAtL2 = true;
            else if (hit->origin == Origin::Fdip)
                result.fdipServedAtL2 = true;
        }
        return result;
    }
    result.fillL2 = true;
    if (llc_.access(block)) {
        result.latency = params_.llcLatency;
        result.level = ServiceLevel::Llc;
        return result;
    }
    result.fillLlc = true;
    result.fromMem = true;
    result.latency = params_.memLatency;
    result.level = ServiceLevel::Mem;
    return result;
}

DemandResult
CacheHierarchy::demandAccess(Addr block, Cycle now)
{
    ++stats_.demandAccesses;

    if (auto hit = l1i_.access(block)) {
        if (hit->firstUse && hit->origin != Origin::Demand) {
            ++statsFor(hit->origin).usefulL1;
            if (hit->origin == Origin::Ext)
                recordExtOutcome(block, /*useful=*/true);
        }
        return {false, now + params_.l1iLatency, ServiceLevel::L1};
    }

    ++stats_.demandL1Misses;

    if (auto it = mshrs_.find(block); it != mshrs_.end()) {
        Mshr &mshr = it->second;
        if (mshr.origin != Origin::Demand && !mshr.demandMerged) {
            ++statsFor(mshr.origin).lateMerges;
            HP_EMIT(obs_, emit(EventKind::PrefetchLate, now, block, 0,
                               mshr.readyAt > now ? mshr.readyAt - now
                                                  : 0,
                               static_cast<std::uint8_t>(mshr.origin)));
            if (mshr.origin == Origin::Ext)
                recordExtOutcome(block, /*useful=*/true);
        }
        bool was_prefetch = mshr.origin != Origin::Demand;
        mshr.demandMerged = true;
        // A prefetch targeting the L2 must now fill the L1-I too.
        mshr.toL2Only = false;
        Cycle wait = mshr.readyAt > now ? mshr.readyAt - now : 0;
        stats_.missCyclesMshr += wait;
        ++stats_.servedByMshr;
        if (mshr.fillL2)
            ++stats_.demandL2Misses;
        if (mshr.fillLlc)
            ++stats_.demandLlcMisses;
        HP_EMIT(obs_, emitSpan(EventKind::DemandMissMshr, now,
                               now + wait, block));
        if (attr_.enabled())
            attr_.onMissMerge(block, was_prefetch, wait);
        return {false, std::max(mshr.readyAt, now), ServiceLevel::Mshr};
    }

    if (mshrs_.size() >= params_.l1iMshrs) {
        HP_EMIT(obs_, emitSpan(EventKind::DemandMissMshr, now, now + 1,
                               block, /*arg=*/1));
        if (attr_.enabled())
            attr_.onMissRetry(block);
        return {true, now + 1, ServiceLevel::Mshr};
    }

    ProbeResult probe = probeBeyondL1(block, /*demand=*/true);
    if (probe.extServedAtL2) {
        ++stats_.ext.usefulL2;
        // In prefetch-to-L2 mode this is the prefetch's payoff point.
        recordExtOutcome(block, /*useful=*/true);
    }
    if (probe.fdipServedAtL2)
        ++stats_.fdip.usefulL2;

    switch (probe.level) {
      case ServiceLevel::L2:
        ++stats_.servedByL2;
        stats_.missCyclesL2 += probe.latency;
        break;
      case ServiceLevel::Llc:
        ++stats_.servedByLlc;
        stats_.missCyclesLlc += probe.latency;
        ++stats_.demandL2Misses;
        break;
      case ServiceLevel::Mem:
        ++stats_.servedByMem;
        stats_.missCyclesMem += probe.latency;
        ++stats_.demandL2Misses;
        ++stats_.demandLlcMisses;
        break;
      default:
        break;
    }

    Mshr mshr;
    mshr.block = block;
    mshr.origin = Origin::Demand;
    mshr.readyAt = now + probe.latency;
    mshr.fillL2 = probe.fillL2;
    mshr.fillLlc = probe.fillLlc;
    mshr.fromMem = probe.fromMem;
    mshr.demandMerged = true;
    mshrs_.emplace(block, mshr);
    completions_.emplace(mshr.readyAt, block);
#ifndef HP_NO_OBS
    if (obs_) {
        EventKind kind = probe.level == ServiceLevel::L2
            ? EventKind::DemandMissL2
            : probe.level == ServiceLevel::Llc ? EventKind::DemandMissLlc
                                               : EventKind::DemandMissMem;
        obs_->emitSpan(kind, now, mshr.readyAt, block);
    }
#endif
    if (attr_.enabled())
        attr_.onMissFill(block, probe.latency);
    return {false, mshr.readyAt, probe.level};
}

bool
CacheHierarchy::prefetch(Addr block, Origin origin, Cycle now, bool to_l2)
{
    PrefetchStats &ps = statsFor(origin);
    ++ps.issued;
    const std::uint8_t org = static_cast<std::uint8_t>(origin);

    if (to_l2 ? l2_.contains(block) : l1i_.contains(block)) {
        ++ps.redundant;
        HP_EMIT(obs_, emit(EventKind::PrefetchRedundant, now, block,
                           0, 0, org));
        return false;
    }
    if (mshrs_.count(block)) {
        ++ps.redundant;
        HP_EMIT(obs_, emit(EventKind::PrefetchRedundant, now, block,
                           0, 1, org));
        return false;
    }
    if (mshrs_.size() + params_.mshrsReservedForDemand >=
        params_.l1iMshrs) {
        ++ps.dropped;
        HP_EMIT(obs_, emit(EventKind::PrefetchDropped, now, block,
                           0, 0, org));
        if (attr_.enabled())
            attr_.onPrefetchDropped(block);
        return false;
    }

    ProbeResult probe = probeBeyondL1(block, /*demand=*/false);
    if (to_l2 && probe.level == ServiceLevel::L2) {
        // Already in the L2: nothing to do for an L2-targeted prefetch.
        ++ps.redundant;
        HP_EMIT(obs_, emit(EventKind::PrefetchRedundant, now, block,
                           0, 2, org));
        return false;
    }

    Mshr mshr;
    mshr.block = block;
    mshr.origin = origin;
    mshr.readyAt = now + probe.latency;
    mshr.fillL2 = probe.fillL2;
    mshr.fillLlc = probe.fillLlc;
    mshr.fromMem = probe.fromMem;
    mshr.toL2Only = to_l2;
    mshrs_.emplace(block, mshr);
    completions_.emplace(mshr.readyAt, block);
    HP_EMIT(obs_, emit(EventKind::PrefetchIssued, now, block, 0,
                       probe.latency, org));
    if (attr_.enabled() && !to_l2)
        attr_.onPrefetchAccepted(block);
    if (to_l2)
        ++ps.inserted;
    if (origin == Origin::Ext)
        extIssueSeq_[block] = fetchBlockSeq_;
    return true;
}

unsigned
CacheHierarchy::freeMshrs() const
{
    return params_.l1iMshrs > mshrs_.size()
        ? params_.l1iMshrs - static_cast<unsigned>(mshrs_.size()) : 0;
}

Cycle
CacheHierarchy::metadataRead(std::uint64_t bytes, Cycle now)
{
    ++metadataReads_;
    bool from_dram = params_.metadataDramEvery != 0 &&
        metadataReads_ % params_.metadataDramEvery == 0;
    Cycle ready = now +
        (from_dram ? params_.memLatency : params_.llcLatency);
    HP_EMIT(obs_, emitSpan(EventKind::MetadataRead, now, ready,
                           /*addr=*/from_dram ? 1 : 0, bytes));
    if (from_dram)
        stats_.dramMetadataReadBytes += roundUp(bytes, kBlockBytes);
    return ready;
}

void
CacheHierarchy::metadataWrite(std::uint64_t bytes, Cycle now)
{
    HP_EMIT(obs_, emit(EventKind::MetadataWrite, now, 0, 0, bytes));
    // Posted writes; dirty metadata lines eventually reach DRAM.
    stats_.dramMetadataWriteBytes += bytes;
}

namespace
{

/** Registers one PrefetchStats group under @p prefix. */
void
registerPrefetchStats(StatsRegistry &reg, const std::string &prefix,
                      const PrefetchStats &ps)
{
    reg.add(prefix + ".issued", [&ps] { return ps.issued; });
    reg.add(prefix + ".redundant", [&ps] { return ps.redundant; });
    reg.add(prefix + ".dropped", [&ps] { return ps.dropped; });
    reg.add(prefix + ".inserted", [&ps] { return ps.inserted; });
    reg.add(prefix + ".useful_l1", [&ps] { return ps.usefulL1; });
    reg.add(prefix + ".useful_l2", [&ps] { return ps.usefulL2; });
    reg.add(prefix + ".late_merges", [&ps] { return ps.lateMerges; });
    reg.add(prefix + ".useless_evicted",
            [&ps] { return ps.uselessEvicted; });
}

} // namespace

void
CacheHierarchy::registerStats(StatsRegistry &reg) const
{
    const HierarchyStats &s = stats_;
    reg.add("l1i.demand_accesses", [&s] { return s.demandAccesses; });
    reg.add("l1i.demand_misses", [&s] { return s.demandL1Misses; });
    reg.add("l2i.demand_misses", [&s] { return s.demandL2Misses; });
    reg.add("llc.demand_misses", [&s] { return s.demandLlcMisses; });
    reg.add("l1i.served_by_l2", [&s] { return s.servedByL2; });
    reg.add("l1i.served_by_llc", [&s] { return s.servedByLlc; });
    reg.add("l1i.served_by_mem", [&s] { return s.servedByMem; });
    reg.add("l1i.served_by_mshr", [&s] { return s.servedByMshr; });
    reg.add("l1i.miss_cycles_l2", [&s] { return s.missCyclesL2; });
    reg.add("l1i.miss_cycles_llc", [&s] { return s.missCyclesLlc; });
    reg.add("l1i.miss_cycles_mem", [&s] { return s.missCyclesMem; });
    reg.add("l1i.miss_cycles_mshr", [&s] { return s.missCyclesMshr; });

    registerPrefetchStats(reg, "fdip", s.fdip);
    registerPrefetchStats(reg, "ext", s.ext);
    reg.add("ext.useful_distance_samples",
            [&s] { return s.extUsefulDistance.count(); });

    reg.add("dram.demand_bytes", [&s] { return s.dramDemandBytes; });
    reg.add("dram.fdip_bytes", [&s] { return s.dramFdipBytes; });
    reg.add("dram.ext_bytes", [&s] { return s.dramExtBytes; });
    reg.add("dram.metadata_read_bytes",
            [&s] { return s.dramMetadataReadBytes; });
    reg.add("dram.metadata_write_bytes",
            [&s] { return s.dramMetadataWriteBytes; });

    itlb_.registerStats(reg, "itlb");

    attr_.registerStats(reg, "missAttribution");
}

void
CacheHierarchy::resetStats()
{
    stats_ = HierarchyStats{};
    l1i_.resetStats();
    l2_.resetStats();
    llc_.resetStats();
    itlb_.resetStats();
    attr_.resetCounters();
}

template <class Ar>
void
CacheHierarchy::serializeState(Ar &ar)
{
    l1i_.serializeState(ar);
    l2_.serializeState(ar);
    llc_.serializeState(ar);
    itlb_.serializeState(ar);
    io(ar, mshrs_);
    io(ar, completions_);
    io(ar, extIssueSeq_);
    io(ar, fetchBlockSeq_);
    io(ar, metadataReads_);
    stats_.serializeState(ar);
    // Appendix: only present when attribution runs, so the default
    // checkpoint byte stream (and the golden blob) is unchanged.
    // Enablement is process-global config, so writer and loader agree.
    if (attr_.enabled())
        attr_.serializeState(ar);
}

template void CacheHierarchy::serializeState(StateWriter &);
template void CacheHierarchy::serializeState(StateLoader &);

} // namespace hp
