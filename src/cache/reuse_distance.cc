#include "cache/reuse_distance.hh"

#include "util/serialize.hh"

#include <algorithm>

namespace hp
{

namespace
{

constexpr std::size_t kInitialCapacity = 1u << 20;

} // namespace

void
ReuseDistanceTracker::bitAdd(std::size_t pos, int delta)
{
    if (pos >= tree_.size()) {
        // Grow to the next power of two and rebuild: every resident
        // block has exactly one mark, at its last access sequence.
        std::size_t capacity = std::max(tree_.size() * 2,
                                        kInitialCapacity);
        while (capacity <= pos)
            capacity *= 2;
        tree_.assign(capacity, 0);
        for (const auto &[block, last] : lastSeq_) {
            (void)block;
            for (std::size_t i = static_cast<std::size_t>(last) + 1;
                 i <= capacity; i += i & (~i + 1)) {
                tree_[i - 1] += 1;
            }
        }
        // The mark being re-added right now was already re-inserted by
        // the loop above iff it is present in lastSeq_; compensate by
        // falling through to the normal add only for new marks. The
        // caller always updates lastSeq_ before bitAdd(+1), so undo one
        // increment for that entry here.
        if (delta > 0) {
            for (std::size_t i = pos + 1; i <= tree_.size();
                 i += i & (~i + 1)) {
                tree_[i - 1] -= 1;
            }
        }
    }
    for (std::size_t i = pos + 1; i <= tree_.size(); i += i & (~i + 1))
        tree_[i - 1] += delta;
}

std::uint64_t
ReuseDistanceTracker::bitPrefix(std::size_t pos) const
{
    // Sum of marks in [0, pos].
    std::uint64_t total = 0;
    std::size_t i = std::min(pos + 1, tree_.size());
    for (; i > 0; i -= i & (~i + 1))
        total += static_cast<std::uint64_t>(tree_[i - 1]);
    return total;
}

std::uint64_t
ReuseDistanceTracker::access(Addr block)
{
    std::uint64_t now = seq_++;

    std::uint64_t distance = kColdAccess;
    auto it = lastSeq_.find(block);
    if (it != lastSeq_.end()) {
        std::uint64_t last = it->second;
        // Unique blocks accessed strictly after `last`, excluding the
        // mark of `block` itself at `last`.
        distance = bitPrefix(static_cast<std::size_t>(now)) -
                   bitPrefix(static_cast<std::size_t>(last));
        bitAdd(static_cast<std::size_t>(last), -1);
        it->second = now;
    } else {
        lastSeq_.emplace(block, now);
    }
    bitAdd(static_cast<std::size_t>(now), +1);
    return distance;
}

template <class Ar>
void
ReuseDistanceTracker::serializeState(Ar &ar)
{
    io(ar, lastSeq_);
    io(ar, tree_);
    io(ar, seq_);
}

template void ReuseDistanceTracker::serializeState(StateWriter &);
template void ReuseDistanceTracker::serializeState(StateLoader &);

} // namespace hp
