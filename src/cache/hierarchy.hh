/**
 * @file
 * Instruction-side cache hierarchy: L1-I with MSHRs, the instruction
 * share of the unified L2 and LLC, DRAM latency, and full bandwidth
 * accounting (demand fills, prefetch fills, and the Hierarchical
 * Prefetcher's in-memory metadata traffic).
 *
 * Latencies default to the paper's Table 1 (L1-I 2, L2 14, LLC 50
 * cycles, DDR4-2400 main memory). The unified L2/LLC are modeled by
 * their instruction-capacity share, since data references are not
 * simulated (see DESIGN.md Section 5).
 */

#ifndef HP_CACHE_HIERARCHY_HH
#define HP_CACHE_HIERARCHY_HH

#include <algorithm>
#include <array>
#include <cstdint>
#include <map>
#include <unordered_map>
#include <vector>

#include "cache/cache.hh"
#include "cache/tlb.hh"
#include "obs/event_sink.hh"
#include "obs/miss_attribution.hh"
#include "prefetch/prefetcher.hh"
#include "stats/histogram.hh"
#include "stats/registry.hh"
#include "util/types.hh"

namespace hp
{

/** Cache hierarchy geometry and latencies. */
struct HierarchyParams
{
    std::uint64_t l1iBytes = 32 * 1024;
    unsigned l1iWays = 8;
    Cycle l1iLatency = 2;
    unsigned l1iMshrs = 16;

    std::uint64_t l2Bytes = 512 * 1024;
    unsigned l2Ways = 8;
    Cycle l2Latency = 14;
    /** Instruction share of the unified L2 capacity. */
    double l2InstFraction = 0.65;

    std::uint64_t llcBytes = 2 * 1024 * 1024;
    unsigned llcWays = 16;
    Cycle llcLatency = 50;
    /** Instruction share of the shared LLC capacity. */
    double llcInstFraction = 0.6;

    Cycle memLatency = 160;

    unsigned itlbEntries = 64;
    Cycle itlbWalkLatency = 50;

    /** MSHRs kept free for demand misses (prefetch cannot take them). */
    unsigned mshrsReservedForDemand = 4;

    /**
     * Every Nth metadata read misses the LLC and pays DRAM latency
     * (the rest hit; records are LLC-cacheable per Section 5.3).
     */
    unsigned metadataDramEvery = 4;

    bool operator==(const HierarchyParams &) const = default;
};

/** Service level of a demand instruction access. */
enum class ServiceLevel : std::uint8_t
{
    L1,   ///< Hit in the L1-I.
    Mshr, ///< Merged into an outstanding fill.
    L2,
    Llc,
    Mem,
};

/** Result of a demand block access. */
struct DemandResult
{
    /** True when no MSHR was available; the access must be retried. */
    bool retry = false;

    /** Cycle at which fetch may consume the block. */
    Cycle readyAt = 0;

    ServiceLevel level = ServiceLevel::L1;
};

/** Per-origin prefetch effectiveness counters. */
struct PrefetchStats
{
    std::uint64_t issued = 0;     ///< Requests presented to the hierarchy.
    std::uint64_t redundant = 0;  ///< Already resident or in flight.
    std::uint64_t dropped = 0;    ///< No MSHR available.
    std::uint64_t inserted = 0;   ///< Fills that landed in the cache.
    std::uint64_t usefulL1 = 0;   ///< First demand use of a prefetched block.
    std::uint64_t usefulL2 = 0;   ///< Demand L1 miss served by prefetched L2 block.
    std::uint64_t lateMerges = 0; ///< Demand merged into an in-flight prefetch.
    std::uint64_t uselessEvicted = 0; ///< Evicted from L1-I without use.

    /** Accuracy as in the paper: prefetches that served a demand fetch. */
    double
    accuracy() const
    {
        // Served can transiently exceed inserted: a late merge is
        // counted when the demand merges, but the insertion only
        // lands when the fill completes, so a run can end with merges
        // whose fill is still in flight. Use the larger of the two as
        // the denominator so accuracy stays in [0, 1] while remaining
        // exactly served/inserted in the steady-state case.
        std::uint64_t served = usefulL1 + lateMerges;
        std::uint64_t total = std::max(inserted, served);
        return total ? double(served) / double(total) : 0.0;
    }

    /** Fraction of demand-serving prefetches that arrived late. */
    double
    lateFraction() const
    {
        std::uint64_t served = usefulL1 + lateMerges;
        return served ? double(lateMerges) / double(served) : 0.0;
    }

    template <class Ar>
    void
    serializeState(Ar &ar)
    {
        ar.value(issued);
        ar.value(redundant);
        ar.value(dropped);
        ar.value(inserted);
        ar.value(usefulL1);
        ar.value(usefulL2);
        ar.value(lateMerges);
        ar.value(uselessEvicted);
    }
};

/** Aggregate hierarchy statistics. */
struct HierarchyStats
{
    std::uint64_t demandAccesses = 0;
    std::uint64_t demandL1Misses = 0;  ///< Includes MSHR merges.
    std::uint64_t demandL2Misses = 0;  ///< Demand misses not served by L2.
    std::uint64_t demandLlcMisses = 0;

    std::uint64_t servedByL2 = 0;
    std::uint64_t servedByLlc = 0;
    std::uint64_t servedByMem = 0;
    std::uint64_t servedByMshr = 0;

    /** Total demand stall-relevant miss latency, split by server. */
    std::uint64_t missCyclesL2 = 0;
    std::uint64_t missCyclesLlc = 0;
    std::uint64_t missCyclesMem = 0;
    std::uint64_t missCyclesMshr = 0;

    PrefetchStats fdip;
    PrefetchStats ext;

    /**
     * Prefetch distance (in fetched cache blocks between issue and
     * demand use) of useful Ext prefetches — Table 2's "Distance" row.
     */
    Accumulator extUsefulDistance;

    /**
     * Distance-binned Ext prefetch outcomes for the Figure 2c study.
     * Bin i covers distances [2^i, 2^(i+1)); the last bin is open.
     */
    static constexpr unsigned kDistanceBins = 10;
    std::array<std::uint64_t, kDistanceBins> extDistUseful{};
    std::array<std::uint64_t, kDistanceBins> extDistUnused{};

    std::uint64_t dramDemandBytes = 0;
    std::uint64_t dramFdipBytes = 0;
    std::uint64_t dramExtBytes = 0;
    std::uint64_t dramMetadataReadBytes = 0;
    std::uint64_t dramMetadataWriteBytes = 0;

    std::uint64_t totalMissCycles() const
    {
        return missCyclesL2 + missCyclesLlc + missCyclesMem +
               missCyclesMshr;
    }

    template <class Ar>
    void
    serializeState(Ar &ar)
    {
        ar.value(demandAccesses);
        ar.value(demandL1Misses);
        ar.value(demandL2Misses);
        ar.value(demandLlcMisses);
        ar.value(servedByL2);
        ar.value(servedByLlc);
        ar.value(servedByMem);
        ar.value(servedByMshr);
        ar.value(missCyclesL2);
        ar.value(missCyclesLlc);
        ar.value(missCyclesMem);
        ar.value(missCyclesMshr);
        fdip.serializeState(ar);
        ext.serializeState(ar);
        extUsefulDistance.serializeState(ar);
        for (std::uint64_t &v : extDistUseful)
            ar.value(v);
        for (std::uint64_t &v : extDistUnused)
            ar.value(v);
        ar.value(dramDemandBytes);
        ar.value(dramFdipBytes);
        ar.value(dramExtBytes);
        ar.value(dramMetadataReadBytes);
        ar.value(dramMetadataWriteBytes);
    }
};

/**
 * The instruction-path hierarchy. Also implements the MetadataMemory
 * service so the Hierarchical Prefetcher's metadata traffic competes
 * with regular traffic in the statistics.
 */
class CacheHierarchy : public MetadataMemory
{
  public:
    explicit CacheHierarchy(const HierarchyParams &params);

    /** Processes fills that complete at or before @p now. */
    void tick(Cycle now);

    /**
     * Demand access from fetch for the block containing @p addr.
     * The I-TLB is consulted for page crossings by the caller (fetch);
     * this interface works on block-aligned addresses.
     */
    DemandResult demandAccess(Addr block, Cycle now);

    /**
     * Prefetch request.
     * @param block  Block-aligned target.
     * @param origin Fdip or Ext.
     * @param to_l2  Insert into the L2 only (the Figure 17 mode).
     * @return True if a fill was initiated (not redundant/dropped).
     */
    bool prefetch(Addr block, Origin origin, Cycle now,
                  bool to_l2 = false);

    /** True if a demand for @p block would hit L1-I or merge. */
    bool
    wouldHitL1(Addr block) const
    {
        return l1i_.contains(block) || mshrs_.count(block) != 0;
    }

    /** Free MSHR slots (fetch uses this to pace itself). */
    unsigned freeMshrs() const;

    /**
     * Advances the fetched-block sequence counter; called by the
     * simulator whenever fetch moves to a new cache block. Prefetch
     * distances are measured in this unit.
     */
    void noteFetchBlock() { ++fetchBlockSeq_; }

    std::uint64_t fetchBlockSeq() const { return fetchBlockSeq_; }

    // MetadataMemory interface (Section 5.3: metadata lives in memory,
    // cacheable in the LLC, competing with regular traffic).
    Cycle metadataRead(std::uint64_t bytes, Cycle now) override;
    void metadataWrite(std::uint64_t bytes, Cycle now) override;

    const HierarchyStats &stats() const { return stats_; }

    /**
     * Registers every hierarchy counter: the l1i/l2i/llc demand path,
     * the per-origin fdip/ext prefetch stats, DRAM traffic buckets,
     * the I-TLB (which this hierarchy owns) under "itlb", and the
     * miss-attribution cause classes under "missAttribution".
     */
    void registerStats(StatsRegistry &reg) const;

    /** Points the observability emit sites at @p sink (may be null). */
    void setEventSink(EventSink *sink) { obs_ = sink; }

    /** Turns on per-line miss attribution (off by default). */
    void enableMissAttribution() { attr_.setEnabled(true); }

    MissAttribution &missAttribution() { return attr_; }
    const MissAttribution &missAttribution() const { return attr_; }

    Tlb &itlb() { return itlb_; }
    SetAssocCache &l1i() { return l1i_; }
    SetAssocCache &l2() { return l2_; }
    SetAssocCache &llc() { return llc_; }
    const HierarchyParams &params() const { return params_; }

    /** Clears statistics after warmup (cache contents persist). */
    void resetStats();

    /** Serializes/restores caches, MSHRs, and counters. */
    template <class Ar> void serializeState(Ar &ar);

  private:
    struct Mshr
    {
        Addr block = 0;
        Origin origin = Origin::Demand;
        Cycle readyAt = 0;
        bool fillL2 = false;
        bool fillLlc = false;
        bool demandMerged = false;
        bool toL2Only = false;
        bool fromMem = false;

        template <class Ar>
        void
        serializeState(Ar &ar)
        {
            ar.value(block);
            ar.value(origin);
            ar.value(readyAt);
            ar.value(fillL2);
            ar.value(fillLlc);
            ar.value(demandMerged);
            ar.value(toL2Only);
            ar.value(fromMem);
        }
    };

    PrefetchStats &statsFor(Origin origin);
    void completeFill(const Mshr &mshr);

    /** Looks up L2/LLC/mem and returns (latency, fill flags, fromMem). */
    struct ProbeResult
    {
        Cycle latency = 0;
        bool fillL2 = false;
        bool fillLlc = false;
        bool fromMem = false;
        ServiceLevel level = ServiceLevel::L2;
        /** Set when a demand L1 miss was served by an Ext block in L2. */
        bool extServedAtL2 = false;
        bool fdipServedAtL2 = false;
    };
    ProbeResult probeBeyondL1(Addr block, bool demand);

    HierarchyParams params_;
    SetAssocCache l1i_;
    SetAssocCache l2_;
    SetAssocCache llc_;
    Tlb itlb_;

    std::unordered_map<Addr, Mshr> mshrs_;
    std::multimap<Cycle, Addr> completions_;

    /** Issue sequence (fetch-block units) of in-cache Ext prefetches. */
    std::unordered_map<Addr, std::uint64_t> extIssueSeq_;

    void recordExtOutcome(Addr block, bool useful);

    std::uint64_t fetchBlockSeq_ = 0;
    std::uint64_t metadataReads_ = 0;

    HierarchyStats stats_;

    /** Observability: null unless tracing was requested. */
    EventSink *obs_ = nullptr;
    /** L1-I miss attribution; counters always registered, hooks only
     *  run when enabled. */
    MissAttribution attr_;
};

/** Computes the instruction-share capacity of a unified level. */
std::uint64_t instShareBytes(std::uint64_t total, double fraction,
                             unsigned ways);

} // namespace hp

#endif // HP_CACHE_HIERARCHY_HH
