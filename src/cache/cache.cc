#include "cache/cache.hh"

#include "util/hash.hh"
#include "util/logging.hh"
#include "util/serialize.hh"

namespace hp
{

SetAssocCache::SetAssocCache(std::string name, std::uint64_t size_bytes,
                             unsigned ways)
    : name_(std::move(name)), sizeBytes_(size_bytes), ways_(ways)
{
    fatalIf(ways == 0, name_ + ": associativity must be positive");
    std::uint64_t blocks = size_bytes / kBlockBytes;
    fatalIf(blocks < ways || blocks % ways != 0,
            name_ + ": size/associativity mismatch");
    numSets_ = static_cast<unsigned>(blocks / ways);
    // Allow non-power-of-two set counts (needed for the fractional
    // instruction share of unified levels); indexing uses modulo of a
    // mixed address.
    lines_.resize(blocks);
}

unsigned
SetAssocCache::setIndex(Addr block) const
{
    return static_cast<unsigned>(blockNumber(block) % numSets_);
}

std::optional<HitInfo>
SetAssocCache::access(Addr block)
{
    ++accesses_;
    Line *set = &lines_[std::uint64_t(setIndex(block)) * ways_];
    for (unsigned w = 0; w < ways_; ++w) {
        Line &line = set[w];
        if (line.valid && line.tag == block) {
            line.lastUse = ++useClock_;
            HitInfo info{line.origin, !line.used};
            line.used = true;
            return info;
        }
    }
    ++misses_;
    return std::nullopt;
}

bool
SetAssocCache::contains(Addr block) const
{
    const Line *set = &lines_[std::uint64_t(setIndex(block)) * ways_];
    for (unsigned w = 0; w < ways_; ++w) {
        if (set[w].valid && set[w].tag == block)
            return true;
    }
    return false;
}

EvictInfo
SetAssocCache::insert(Addr block, Origin origin)
{
    Line *set = &lines_[std::uint64_t(setIndex(block)) * ways_];
    Line *victim = &set[0];
    for (unsigned w = 0; w < ways_; ++w) {
        Line &line = set[w];
        if (line.valid && line.tag == block) {
            // Refill of a resident block: refresh recency only.
            line.lastUse = ++useClock_;
            return {};
        }
        if (!line.valid) {
            victim = &line;
            break;
        }
        if (line.lastUse < victim->lastUse)
            victim = &line;
    }

    EvictInfo evicted;
    if (victim->valid) {
        evicted.valid = true;
        evicted.block = victim->tag;
        evicted.origin = victim->origin;
        evicted.used = victim->used;
    }

    victim->valid = true;
    victim->tag = block;
    victim->origin = origin;
    victim->used = false;
    victim->lastUse = ++useClock_;
    return evicted;
}

void
SetAssocCache::invalidate(Addr block)
{
    Line *set = &lines_[std::uint64_t(setIndex(block)) * ways_];
    for (unsigned w = 0; w < ways_; ++w) {
        if (set[w].valid && set[w].tag == block) {
            set[w].valid = false;
            return;
        }
    }
}

void
SetAssocCache::markUsed(Addr block)
{
    Line *set = &lines_[std::uint64_t(setIndex(block)) * ways_];
    for (unsigned w = 0; w < ways_; ++w) {
        if (set[w].valid && set[w].tag == block) {
            set[w].used = true;
            return;
        }
    }
}

void
SetAssocCache::resetStats()
{
    accesses_ = 0;
    misses_ = 0;
}

template <class Ar>
void
SetAssocCache::serializeState(Ar &ar)
{
    if (!checkShape(ar, lines_))
        return;
    io(ar, useClock_);
    io(ar, lines_);
    io(ar, accesses_);
    io(ar, misses_);
}

template void SetAssocCache::serializeState(StateWriter &);
template void SetAssocCache::serializeState(StateLoader &);

} // namespace hp
