/**
 * @file
 * Set-associative cache with LRU replacement and prefetch-origin
 * tracking. Every resident block remembers who brought it in (demand,
 * FDIP, or the external prefetcher under test) and whether a demand
 * access has used it yet — the raw material for the accuracy, coverage
 * and pollution statistics in the evaluation.
 */

#ifndef HP_CACHE_CACHE_HH
#define HP_CACHE_CACHE_HH

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "util/types.hh"

namespace hp
{

/** Who caused a block to be brought into a cache. */
enum class Origin : std::uint8_t
{
    Demand, ///< Demand fetch miss.
    Fdip,   ///< FDIP (FTQ-directed) prefetch.
    Ext,    ///< The external prefetcher under evaluation.
};

/** Outcome of a probe that hit. */
struct HitInfo
{
    Origin origin;
    /** True if this is the first demand use of a prefetched block. */
    bool firstUse = false;
};

/** What was displaced by an insertion. */
struct EvictInfo
{
    Addr block = 0;
    Origin origin = Origin::Demand;
    bool used = false;
    bool valid = false;
};

/** A single cache level (block-grain, LRU, no data payload). */
class SetAssocCache
{
  public:
    /**
     * @param name        For diagnostics.
     * @param size_bytes  Capacity.
     * @param ways        Associativity.
     */
    SetAssocCache(std::string name, std::uint64_t size_bytes,
                  unsigned ways);

    /**
     * Demand probe. On a hit the block is marked used and moved to MRU.
     * @return Hit metadata, or nullopt on miss.
     */
    std::optional<HitInfo> access(Addr block);

    /** Probe without any state change (for redundancy filtering). */
    bool contains(Addr block) const;

    /**
     * Inserts @p block with @p origin (moves to MRU if present,
     * keeping the earliest origin).
     * @return The evicted victim, if any.
     */
    EvictInfo insert(Addr block, Origin origin);

    /** Invalidates the block if resident. */
    void invalidate(Addr block);

    /** Marks the block used without counting an access (MSHR merges). */
    void markUsed(Addr block);

    const std::string &name() const { return name_; }
    std::uint64_t sizeBytes() const { return sizeBytes_; }
    unsigned numSets() const { return numSets_; }
    unsigned ways() const { return ways_; }

    std::uint64_t accesses() const { return accesses_; }
    std::uint64_t misses() const { return misses_; }

    double
    missRate() const
    {
        return accesses_ ? double(misses_) / accesses_ : 0.0;
    }

    /** Resets statistics (not contents) at the end of warmup. */
    void resetStats();

    /** Serializes/restores contents and counters (checkpointing). */
    template <class Ar> void serializeState(Ar &ar);

  private:
    struct Line
    {
        bool valid = false;
        Addr tag = 0;
        Origin origin = Origin::Demand;
        bool used = false;
        std::uint64_t lastUse = 0;

        template <class Ar>
        void
        serializeState(Ar &ar)
        {
            ar.value(valid);
            ar.value(tag);
            ar.value(origin);
            ar.value(used);
            ar.value(lastUse);
        }
    };

    unsigned setIndex(Addr block) const;

    std::string name_;
    std::uint64_t sizeBytes_;
    unsigned numSets_;
    unsigned ways_;
    std::uint64_t useClock_ = 0;
    std::vector<Line> lines_;

    std::uint64_t accesses_ = 0;
    std::uint64_t misses_ = 0;
};

} // namespace hp

#endif // HP_CACHE_CACHE_HH
