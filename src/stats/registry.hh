/**
 * @file
 * Unified statistics registry.
 *
 * Every simulated component owns plain counter fields that the hot path
 * increments directly; the registry holds zero-overhead *reader
 * closures* over those fields, keyed by a dotted path
 * (`l1i.demand_misses`, `hier.metadata_read_bytes`, ...). Reading is
 * pull-based: nothing is touched until someone asks for a snapshot, so
 * registering a component costs the simulation loop nothing.
 *
 * A StatsSnapshot freezes every registered counter at one instant;
 * the measurement phase of a run is the delta between the end-of-run
 * snapshot and the one taken when warmup finished. This replaces the
 * per-counter `*AtWarmup_` shadow fields the simulator used to carry.
 *
 * Snapshots serialize to (and parse back from) a flat JSON object, the
 * "stats" section of the machine-readable run reports every bench
 * binary can emit (see sim/run_report.hh and DESIGN.md).
 */

#ifndef HP_STATS_REGISTRY_HH
#define HP_STATS_REGISTRY_HH

#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

namespace hp
{

/** Point-in-time values of every registered counter. */
class StatsSnapshot
{
  public:
    using Entry = std::pair<std::string, std::uint64_t>;

    StatsSnapshot() = default;

    /** Appends an entry (registration order is preserved). */
    void add(std::string path, std::uint64_t value);

    bool empty() const { return entries_.empty(); }
    std::size_t size() const { return entries_.size(); }
    const std::vector<Entry> &entries() const { return entries_; }

    bool has(const std::string &path) const;

    /** Value of @p path; fatal if the path is not present. */
    std::uint64_t value(const std::string &path) const;

    /**
     * Counter-wise difference @p later - @p earlier. The snapshots
     * must come from the same registry (same paths, same order);
     * anything else is a programming error and fatal.
     */
    static StatsSnapshot delta(const StatsSnapshot &later,
                               const StatsSnapshot &earlier);

    /**
     * Flat JSON object, one `"path": value` member per entry, in
     * entry order. @p indent prefixes every line with that many
     * spaces (used when embedding into a larger document).
     */
    std::string toJson(unsigned indent = 0) const;

    /** Parses the output of toJson() (round-trip exact). */
    static StatsSnapshot fromJson(const std::string &text);

  private:
    std::vector<Entry> entries_;
};

/**
 * The registry: dotted path -> reader closure. Components register
 * their counters once at construction; the simulator snapshots the
 * registry at warmup end and at run end.
 */
class StatsRegistry
{
  public:
    using Reader = std::function<std::uint64_t()>;

    /**
     * Registers @p path with @p reader. Paths must be unique within a
     * registry; duplicates are fatal (they always indicate two
     * components claiming the same scope).
     */
    void add(std::string path, Reader reader);

    std::size_t size() const { return stats_.size(); }
    bool has(const std::string &path) const;

    /** All registered paths, in registration order. */
    std::vector<std::string> paths() const;

    /** Reads @p path right now; fatal if unregistered. */
    std::uint64_t value(const std::string &path) const;

    /** Reads every counter into a snapshot. */
    StatsSnapshot snapshot() const;

  private:
    std::vector<std::pair<std::string, Reader>> stats_;
};

} // namespace hp

#endif // HP_STATS_REGISTRY_HH
