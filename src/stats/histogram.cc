#include "stats/histogram.hh"

#include <algorithm>

#include "util/logging.hh"

namespace hp
{

void
Accumulator::sample(double value)
{
    if (count_ == 0) {
        min_ = value;
        max_ = value;
    } else {
        min_ = std::min(min_, value);
        max_ = std::max(max_, value);
    }
    ++count_;
    sum_ += value;
}

void
Accumulator::reset()
{
    count_ = 0;
    sum_ = 0.0;
    min_ = 0.0;
    max_ = 0.0;
}

Histogram::Histogram(double bucket_width, std::size_t num_buckets)
    : bucketWidth_(bucket_width), buckets_(num_buckets + 1, 0)
{
    fatalIf(bucket_width <= 0.0, "Histogram bucket width must be positive");
    fatalIf(num_buckets == 0, "Histogram needs at least one bucket");
}

void
Histogram::sample(double value, std::uint64_t weight)
{
    std::size_t index = buckets_.size() - 1;
    if (value >= 0.0) {
        auto raw = static_cast<std::size_t>(value / bucketWidth_);
        index = std::min(raw, buckets_.size() - 1);
    } else {
        index = 0;
    }
    buckets_[index] += weight;
    count_ += weight;
    sum_ += value * weight;
}

double
Histogram::percentile(double q) const
{
    if (count_ == 0)
        return 0.0;
    q = std::clamp(q, 0.0, 1.0);
    auto target = static_cast<std::uint64_t>(q * count_);
    std::uint64_t seen = 0;
    for (std::size_t i = 0; i < buckets_.size(); ++i) {
        seen += buckets_[i];
        if (seen >= target)
            return bucketLow(i + 1);
    }
    return bucketLow(buckets_.size());
}

void
Histogram::reset()
{
    std::fill(buckets_.begin(), buckets_.end(), 0);
    count_ = 0;
    sum_ = 0.0;
}

} // namespace hp
