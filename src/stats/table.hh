/**
 * @file
 * ASCII table and CSV rendering used by the benchmark harnesses to print
 * the rows/series of each paper table and figure.
 */

#ifndef HP_STATS_TABLE_HH
#define HP_STATS_TABLE_HH

#include <string>
#include <vector>

namespace hp
{

/** A simple column-aligned ASCII table with an optional title. */
class AsciiTable
{
  public:
    explicit AsciiTable(std::string title = "");

    /** Sets the header row. */
    void setHeader(std::vector<std::string> header);

    /** Appends a data row (cells are pre-formatted strings). */
    void addRow(std::vector<std::string> row);

    /** Renders the table with aligned columns and separators. */
    std::string render() const;

    /** Renders as CSV (header first, comma-separated, quoted as needed). */
    std::string renderCsv() const;

    std::size_t numRows() const { return rows_.size(); }

  private:
    std::string title_;
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

/** Formats a double with @p decimals decimal places. */
std::string fmtDouble(double value, int decimals = 2);

/** Formats a fraction as a percentage string, e.g. 0.066 -> "6.6%". */
std::string fmtPercent(double fraction, int decimals = 1);

/** Formats a byte count using KB/MB units, e.g. 524288 -> "512.0KB". */
std::string fmtBytes(double bytes, int decimals = 1);

} // namespace hp

#endif // HP_STATS_TABLE_HH
