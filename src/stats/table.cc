#include "stats/table.hh"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "util/logging.hh"

namespace hp
{

AsciiTable::AsciiTable(std::string title)
    : title_(std::move(title))
{}

void
AsciiTable::setHeader(std::vector<std::string> header)
{
    header_ = std::move(header);
}

void
AsciiTable::addRow(std::vector<std::string> row)
{
    panicIf(!header_.empty() && row.size() != header_.size(),
            "AsciiTable row width does not match the header");
    rows_.push_back(std::move(row));
}

std::string
AsciiTable::render() const
{
    std::vector<std::size_t> widths(header_.size(), 0);
    auto widen = [&widths](const std::vector<std::string> &row) {
        if (widths.size() < row.size())
            widths.resize(row.size(), 0);
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());
    };
    widen(header_);
    for (const auto &row : rows_)
        widen(row);

    std::ostringstream out;
    if (!title_.empty())
        out << title_ << '\n';

    auto emitRow = [&out, &widths](const std::vector<std::string> &row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            out << (c == 0 ? "| " : " | ");
            out << row[c];
            out << std::string(widths[c] - row[c].size(), ' ');
        }
        out << " |\n";
    };

    auto emitRule = [&out, &widths]() {
        for (std::size_t c = 0; c < widths.size(); ++c) {
            out << (c == 0 ? "|-" : "-|-");
            out << std::string(widths[c], '-');
        }
        out << "-|\n";
    };

    if (!header_.empty()) {
        emitRow(header_);
        emitRule();
    }
    for (const auto &row : rows_)
        emitRow(row);
    return out.str();
}

std::string
AsciiTable::renderCsv() const
{
    std::ostringstream out;
    auto emit = [&out](const std::vector<std::string> &row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            if (c)
                out << ',';
            bool quote = row[c].find_first_of(",\"\n") != std::string::npos;
            if (quote) {
                out << '"';
                for (char ch : row[c]) {
                    if (ch == '"')
                        out << '"';
                    out << ch;
                }
                out << '"';
            } else {
                out << row[c];
            }
        }
        out << '\n';
    };
    if (!header_.empty())
        emit(header_);
    for (const auto &row : rows_)
        emit(row);
    return out.str();
}

std::string
fmtDouble(double value, int decimals)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", decimals, value);
    return buf;
}

std::string
fmtPercent(double fraction, int decimals)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f%%", decimals, fraction * 100.0);
    return buf;
}

std::string
fmtBytes(double bytes, int decimals)
{
    char buf[64];
    if (bytes >= 1024.0 * 1024.0) {
        std::snprintf(buf, sizeof(buf), "%.*fMB", decimals,
                      bytes / (1024.0 * 1024.0));
    } else if (bytes >= 1024.0) {
        std::snprintf(buf, sizeof(buf), "%.*fKB", decimals, bytes / 1024.0);
    } else {
        std::snprintf(buf, sizeof(buf), "%.*fB", decimals, bytes);
    }
    return buf;
}

} // namespace hp
