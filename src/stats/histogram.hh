/**
 * @file
 * Scalar accumulators and histograms used by the simulator statistics.
 */

#ifndef HP_STATS_HISTOGRAM_HH
#define HP_STATS_HISTOGRAM_HH

#include <cstdint>
#include <vector>

namespace hp
{

/** Running mean/min/max accumulator for a scalar sample stream. */
class Accumulator
{
  public:
    void sample(double value);

    std::uint64_t count() const { return count_; }
    double sum() const { return sum_; }
    double mean() const { return count_ ? sum_ / count_ : 0.0; }
    double min() const { return count_ ? min_ : 0.0; }
    double max() const { return count_ ? max_ : 0.0; }

    void reset();

    /** Serializes/restores the accumulated samples. */
    template <class Ar>
    void
    serializeState(Ar &ar)
    {
        ar.value(count_);
        ar.value(sum_);
        ar.value(min_);
        ar.value(max_);
    }

  private:
    std::uint64_t count_ = 0;
    double sum_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

/**
 * Fixed-bucket histogram over [0, bucketWidth * numBuckets); samples
 * beyond the top bucket land in an overflow bucket.
 */
class Histogram
{
  public:
    Histogram(double bucket_width, std::size_t num_buckets);

    void sample(double value, std::uint64_t weight = 1);

    std::uint64_t count() const { return count_; }
    double mean() const { return count_ ? sum_ / count_ : 0.0; }

    /** Bucket population including the overflow bucket (last index). */
    const std::vector<std::uint64_t> &buckets() const { return buckets_; }

    /** Lower edge of bucket @p i. */
    double bucketLow(std::size_t i) const { return bucketWidth_ * i; }

    /** Smallest value v such that at least fraction @p q of samples <= v. */
    double percentile(double q) const;

    void reset();

    /** Serializes/restores bucket populations (width is config). */
    template <class Ar>
    void
    serializeState(Ar &ar)
    {
        std::uint64_t n = buckets_.size();
        ar.value(n);
        if constexpr (Ar::loading)
            buckets_.assign(n, 0);
        for (std::uint64_t &b : buckets_)
            ar.value(b);
        ar.value(count_);
        ar.value(sum_);
    }

  private:
    double bucketWidth_;
    std::vector<std::uint64_t> buckets_;
    std::uint64_t count_ = 0;
    double sum_ = 0.0;
};

} // namespace hp

#endif // HP_STATS_HISTOGRAM_HH
