#include "stats/registry.hh"

#include <cctype>
#include <sstream>

#include "util/logging.hh"

namespace hp
{

// ---- StatsSnapshot ----

void
StatsSnapshot::add(std::string path, std::uint64_t value)
{
    entries_.emplace_back(std::move(path), value);
}

bool
StatsSnapshot::has(const std::string &path) const
{
    for (const Entry &e : entries_) {
        if (e.first == path)
            return true;
    }
    return false;
}

std::uint64_t
StatsSnapshot::value(const std::string &path) const
{
    for (const Entry &e : entries_) {
        if (e.first == path)
            return e.second;
    }
    panic("StatsSnapshot: unknown stat path '" + path + "'");
}

StatsSnapshot
StatsSnapshot::delta(const StatsSnapshot &later,
                     const StatsSnapshot &earlier)
{
    panicIf(later.size() != earlier.size(),
            "StatsSnapshot::delta: snapshots differ in size");
    StatsSnapshot out;
    for (std::size_t i = 0; i < later.entries_.size(); ++i) {
        const Entry &end = later.entries_[i];
        const Entry &begin = earlier.entries_[i];
        panicIf(end.first != begin.first,
                "StatsSnapshot::delta: path mismatch at '" + end.first +
                    "' vs '" + begin.first + "'");
        panicIf(end.second < begin.second,
                "StatsSnapshot::delta: counter '" + end.first +
                    "' went backwards");
        out.add(end.first, end.second - begin.second);
    }
    return out;
}

std::string
StatsSnapshot::toJson(unsigned indent) const
{
    const std::string pad(indent, ' ');
    std::ostringstream out;
    out << pad << "{";
    for (std::size_t i = 0; i < entries_.size(); ++i) {
        out << (i ? "," : "") << "\n" << pad << "  \""
            << entries_[i].first << "\": " << entries_[i].second;
    }
    if (!entries_.empty())
        out << "\n" << pad;
    out << "}";
    return out.str();
}

namespace
{

void
skipSpace(const std::string &s, std::size_t &pos)
{
    while (pos < s.size() &&
           std::isspace(static_cast<unsigned char>(s[pos]))) {
        ++pos;
    }
}

void
expect(const std::string &s, std::size_t &pos, char c)
{
    skipSpace(s, pos);
    fatalIf(pos >= s.size() || s[pos] != c,
            std::string("StatsSnapshot::fromJson: expected '") + c +
                "' at offset " + std::to_string(pos));
    ++pos;
}

std::string
parseString(const std::string &s, std::size_t &pos)
{
    expect(s, pos, '"');
    std::string out;
    while (pos < s.size() && s[pos] != '"')
        out.push_back(s[pos++]);
    expect(s, pos, '"');
    return out;
}

std::uint64_t
parseUint(const std::string &s, std::size_t &pos)
{
    skipSpace(s, pos);
    fatalIf(pos >= s.size() ||
                !std::isdigit(static_cast<unsigned char>(s[pos])),
            "StatsSnapshot::fromJson: expected integer at offset " +
                std::to_string(pos));
    std::uint64_t value = 0;
    while (pos < s.size() &&
           std::isdigit(static_cast<unsigned char>(s[pos]))) {
        value = value * 10 + std::uint64_t(s[pos] - '0');
        ++pos;
    }
    return value;
}

} // namespace

StatsSnapshot
StatsSnapshot::fromJson(const std::string &text)
{
    StatsSnapshot out;
    std::size_t pos = 0;
    expect(text, pos, '{');
    skipSpace(text, pos);
    if (pos < text.size() && text[pos] == '}')
        return out;
    while (true) {
        std::string path = parseString(text, pos);
        expect(text, pos, ':');
        out.add(std::move(path), parseUint(text, pos));
        skipSpace(text, pos);
        if (pos < text.size() && text[pos] == ',') {
            ++pos;
            continue;
        }
        break;
    }
    expect(text, pos, '}');
    return out;
}

// ---- StatsRegistry ----

void
StatsRegistry::add(std::string path, Reader reader)
{
    panicIf(!reader, "StatsRegistry: null reader for '" + path + "'");
    panicIf(has(path),
            "StatsRegistry: duplicate stat path '" + path + "'");
    stats_.emplace_back(std::move(path), std::move(reader));
}

bool
StatsRegistry::has(const std::string &path) const
{
    for (const auto &stat : stats_) {
        if (stat.first == path)
            return true;
    }
    return false;
}

std::vector<std::string>
StatsRegistry::paths() const
{
    std::vector<std::string> out;
    out.reserve(stats_.size());
    for (const auto &stat : stats_)
        out.push_back(stat.first);
    return out;
}

std::uint64_t
StatsRegistry::value(const std::string &path) const
{
    for (const auto &stat : stats_) {
        if (stat.first == path)
            return stat.second();
    }
    panic("StatsRegistry: unknown stat path '" + path + "'");
}

StatsSnapshot
StatsRegistry::snapshot() const
{
    StatsSnapshot out;
    for (const auto &stat : stats_)
        out.add(stat.first, stat.second());
    return out;
}

} // namespace hp
