/**
 * @file
 * Dynamic bit vector used for reachable-set propagation in the Bundle
 * analysis and for footprint sets in the evaluation probes.
 */

#ifndef HP_UTIL_BITVEC_HH
#define HP_UTIL_BITVEC_HH

#include <bit>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace hp
{

/** A fixed-capacity dynamic bit vector with set-algebra operations. */
class BitVec
{
  public:
    BitVec() = default;

    explicit BitVec(std::size_t bits)
        : bits_(bits), words_((bits + 63) / 64, 0)
    {}

    std::size_t size() const { return bits_; }

    void
    set(std::size_t i)
    {
        words_[i >> 6] |= 1ULL << (i & 63);
    }

    void
    reset(std::size_t i)
    {
        words_[i >> 6] &= ~(1ULL << (i & 63));
    }

    bool
    test(std::size_t i) const
    {
        return (words_[i >> 6] >> (i & 63)) & 1;
    }

    /** In-place union; both vectors must have the same capacity. */
    void
    orWith(const BitVec &other)
    {
        for (std::size_t w = 0; w < words_.size(); ++w)
            words_[w] |= other.words_[w];
    }

    /** Number of set bits. */
    std::size_t
    count() const
    {
        std::size_t total = 0;
        for (std::uint64_t word : words_)
            total += static_cast<std::size_t>(std::popcount(word));
        return total;
    }

    /** Number of set bits in the intersection with @p other. */
    std::size_t
    intersectCount(const BitVec &other) const
    {
        std::size_t total = 0;
        for (std::size_t w = 0; w < words_.size(); ++w) {
            total += static_cast<std::size_t>(
                std::popcount(words_[w] & other.words_[w]));
        }
        return total;
    }

    void
    clear()
    {
        for (auto &word : words_)
            word = 0;
    }

    bool operator==(const BitVec &other) const = default;

  private:
    std::size_t bits_ = 0;
    std::vector<std::uint64_t> words_;
};

} // namespace hp

#endif // HP_UTIL_BITVEC_HH
