/**
 * @file
 * Small integer mixing functions used for table indexing and Bundle IDs.
 *
 * All hardware tables in this library (BTB, Metadata Address Table,
 * entangling tables...) index with these mixers so that synthetic
 * address layouts do not alias pathologically.
 */

#ifndef HP_UTIL_HASH_HH
#define HP_UTIL_HASH_HH

#include <cstdint>

namespace hp
{

/** Finalizer from SplitMix64; a high-quality 64->64 bit mixer. */
constexpr std::uint64_t
mix64(std::uint64_t x)
{
    x ^= x >> 30;
    x *= 0xbf58476d1ce4e5b9ULL;
    x ^= x >> 27;
    x *= 0x94d049bb133111ebULL;
    x ^= x >> 31;
    return x;
}

/** Combines a hash with a new value (boost::hash_combine style). */
constexpr std::uint64_t
hashCombine(std::uint64_t seed, std::uint64_t value)
{
    return seed ^ (mix64(value) + 0x9e3779b97f4a7c15ULL + (seed << 6) +
                   (seed >> 2));
}

/** Folds a 64-bit hash down to @p bits bits (bits in [1, 63]). */
constexpr std::uint64_t
foldTo(std::uint64_t hash, unsigned bits)
{
    std::uint64_t folded = hash ^ (hash >> 32);
    folded ^= folded >> 16;
    return folded & ((1ULL << bits) - 1);
}

} // namespace hp

#endif // HP_UTIL_HASH_HH
