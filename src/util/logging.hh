/**
 * @file
 * Error-reporting helpers in the spirit of gem5's logging.hh.
 *
 * panic() flags an internal invariant violation (a bug in this library)
 * and aborts; fatal() flags a user error (bad configuration) and exits
 * cleanly; warn()/logInfo()/logDebug() print diagnostics and continue.
 *
 * Diagnostics are filtered by a process-wide verbosity read once from
 * the HP_LOG_LEVEL environment variable ("quiet"/"warn"/"info"/"debug"
 * or 0-3; default warn). Call sites that can fire once per simulated
 * event wrap themselves in HP_WARN_LIMIT / HP_WARN_ONCE so a
 * misbehaving run emits a handful of lines, not millions.
 */

#ifndef HP_UTIL_LOGGING_HH
#define HP_UTIL_LOGGING_HH

#include <atomic>
#include <cstdint>
#include <string>

namespace hp
{

/** Aborts with a message; use for internal invariant violations. */
[[noreturn]] void panic(const std::string &msg);

/** Exits with an error code; use for user/configuration errors. */
[[noreturn]] void fatal(const std::string &msg);

/** Diagnostic verbosity, most quiet first. */
enum class LogLevel : int
{
    Quiet = 0, ///< Suppress warn/info/debug (errors still print).
    Warn = 1,  ///< warn() only (the default).
    Info = 2,  ///< warn() + logInfo().
    Debug = 3, ///< Everything.
};

/** The process verbosity (HP_LOG_LEVEL; parsed on first use). */
LogLevel logLevel();

/** True when messages at @p level should print. */
inline bool
logEnabled(LogLevel level)
{
    return static_cast<int>(logLevel()) >= static_cast<int>(level);
}

/** Prints a warning to stderr (level >= warn) and continues. */
void warn(const std::string &msg);

/** Prints an informational line to stderr (level >= info). */
void logInfo(const std::string &msg);

/** Prints a debug line to stderr (level >= debug). */
void logDebug(const std::string &msg);

/**
 * Checks an invariant that must hold regardless of user input.
 * Unlike assert(), stays active in release builds.
 */
inline void
panicIf(bool condition, const std::string &msg)
{
    if (condition)
        panic(msg);
}

/** Checks a user-facing precondition (configuration validity etc.). */
inline void
fatalIf(bool condition, const std::string &msg)
{
    if (condition)
        fatal(msg);
}

/**
 * Rate-limited warning: prints at most @p limit times from this call
 * site (a function-local counter, so each textual site has its own
 * budget), annotating the last allowed line. Thread-safe.
 */
#define HP_WARN_LIMIT(limit, msg)                                         \
    do {                                                                  \
        static std::atomic<std::uint64_t> hp_warn_seen_{0};               \
        const std::uint64_t hp_warn_n_ =                                  \
            hp_warn_seen_.fetch_add(1, std::memory_order_relaxed);        \
        if (hp_warn_n_ < static_cast<std::uint64_t>(limit)) {             \
            if (hp_warn_n_ + 1 == static_cast<std::uint64_t>(limit)) {    \
                ::hp::warn(std::string(msg) +                             \
                           " (further warnings from this call site "      \
                           "suppressed)");                                \
            } else {                                                      \
                ::hp::warn(msg);                                          \
            }                                                             \
        }                                                                 \
    } while (0)

/** Prints a warning at most once per call site. */
#define HP_WARN_ONCE(msg)                                                 \
    do {                                                                  \
        static std::atomic<bool> hp_warn_fired_{false};                   \
        if (!hp_warn_fired_.exchange(true, std::memory_order_relaxed))    \
            ::hp::warn(msg);                                              \
    } while (0)

} // namespace hp

#endif // HP_UTIL_LOGGING_HH
