/**
 * @file
 * Error-reporting helpers in the spirit of gem5's logging.hh.
 *
 * panic() flags an internal invariant violation (a bug in this library)
 * and aborts; fatal() flags a user error (bad configuration) and exits
 * cleanly; warn() prints a diagnostic and continues.
 */

#ifndef HP_UTIL_LOGGING_HH
#define HP_UTIL_LOGGING_HH

#include <string>

namespace hp
{

/** Aborts with a message; use for internal invariant violations. */
[[noreturn]] void panic(const std::string &msg);

/** Exits with an error code; use for user/configuration errors. */
[[noreturn]] void fatal(const std::string &msg);

/** Prints a warning to stderr and continues. */
void warn(const std::string &msg);

/**
 * Checks an invariant that must hold regardless of user input.
 * Unlike assert(), stays active in release builds.
 */
inline void
panicIf(bool condition, const std::string &msg)
{
    if (condition)
        panic(msg);
}

/** Checks a user-facing precondition (configuration validity etc.). */
inline void
fatalIf(bool condition, const std::string &msg)
{
    if (condition)
        fatal(msg);
}

} // namespace hp

#endif // HP_UTIL_LOGGING_HH
