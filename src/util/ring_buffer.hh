/**
 * @file
 * A growable power-of-two ring buffer with deque semantics.
 *
 * The simulator's FTQ and instruction window are FIFO structures that
 * are pushed at the back and popped at the front millions of times per
 * simulated second. std::deque pays for its segmented storage with a
 * double indirection on every access; this ring keeps the live window
 * contiguous (modulo one wrap point), indexes with a mask, and only
 * reallocates when the population outgrows the current capacity.
 */

#ifndef HP_UTIL_RING_BUFFER_HH
#define HP_UTIL_RING_BUFFER_HH

#include <cstddef>
#include <utility>
#include <vector>

namespace hp
{

template <typename T>
class RingBuffer
{
  public:
    explicit RingBuffer(std::size_t initial_capacity = 64)
    {
        std::size_t cap = 1;
        while (cap < initial_capacity)
            cap <<= 1;
        buf_.resize(cap);
    }

    bool empty() const { return count_ == 0; }
    std::size_t size() const { return count_; }
    std::size_t capacity() const { return buf_.size(); }

    T &front() { return buf_[head_]; }
    const T &front() const { return buf_[head_]; }

    T &back() { return buf_[wrap(head_ + count_ - 1)]; }
    const T &back() const { return buf_[wrap(head_ + count_ - 1)]; }

    T &operator[](std::size_t i) { return buf_[wrap(head_ + i)]; }
    const T &operator[](std::size_t i) const
    {
        return buf_[wrap(head_ + i)];
    }

    void
    push_back(T value)
    {
        if (count_ == buf_.size())
            grow();
        buf_[wrap(head_ + count_)] = std::move(value);
        ++count_;
    }

    void
    pop_front()
    {
        buf_[head_] = T{};
        head_ = wrap(head_ + 1);
        --count_;
    }

    void
    clear()
    {
        while (count_ > 0)
            pop_front();
        head_ = 0;
    }

  private:
    std::size_t wrap(std::size_t i) const { return i & (buf_.size() - 1); }

    void
    grow()
    {
        std::vector<T> bigger(buf_.size() * 2);
        for (std::size_t i = 0; i < count_; ++i)
            bigger[i] = std::move(buf_[wrap(head_ + i)]);
        buf_ = std::move(bigger);
        head_ = 0;
    }

    std::vector<T> buf_;
    std::size_t head_ = 0;
    std::size_t count_ = 0;
};

} // namespace hp

#endif // HP_UTIL_RING_BUFFER_HH
