/**
 * @file
 * Fundamental types and address arithmetic shared by every subsystem.
 *
 * The simulated machine uses 64-byte cache blocks and fixed 4-byte
 * instructions (AArch64-like), which keeps the synthetic binary model
 * simple without affecting any of the phenomena the paper studies.
 */

#ifndef HP_UTIL_TYPES_HH
#define HP_UTIL_TYPES_HH

#include <cstdint>

namespace hp
{

/** Byte address in the simulated address space. */
using Addr = std::uint64_t;

/** Simulation time in core clock cycles. */
using Cycle = std::uint64_t;

/** Size of a cache block in bytes. */
constexpr unsigned kBlockBytes = 64;

/** log2 of the cache block size. */
constexpr unsigned kBlockShift = 6;

/** Size of one instruction in bytes (fixed-width ISA model). */
constexpr unsigned kInstBytes = 4;

/** Instructions per cache block. */
constexpr unsigned kInstsPerBlock = kBlockBytes / kInstBytes;

/** Size of a memory page in bytes (for the I-TLB model). */
constexpr unsigned kPageBytes = 4096;

/** Returns the cache-block-aligned address containing @p addr. */
constexpr Addr
blockAlign(Addr addr)
{
    return addr & ~static_cast<Addr>(kBlockBytes - 1);
}

/** Returns the block number (address divided by the block size). */
constexpr Addr
blockNumber(Addr addr)
{
    return addr >> kBlockShift;
}

/** Returns the page-aligned address containing @p addr. */
constexpr Addr
pageAlign(Addr addr)
{
    return addr & ~static_cast<Addr>(kPageBytes - 1);
}

/** Rounds @p value up to the next multiple of @p align (a power of 2). */
constexpr std::uint64_t
roundUp(std::uint64_t value, std::uint64_t align)
{
    return (value + align - 1) & ~(align - 1);
}

} // namespace hp

#endif // HP_UTIL_TYPES_HH
