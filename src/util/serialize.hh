/**
 * @file
 * Canonical byte-stream archives for checkpointing simulator state.
 *
 * A component exposes one `template <class Ar> void serializeState(Ar&)`
 * that lists its mutable fields; the same body runs against a
 * StateWriter (capture) and a StateLoader (restore), so the two can
 * never drift apart. The encoding is canonical and padding-free:
 * scalars are written field by field as fixed-width little-endian
 * values (never whole-struct memcpy, whose padding bytes would break
 * byte-identical round-trips), unordered containers are emitted sorted
 * by key, and ordered containers in iteration order. The result is
 * that capturing the same microarchitectural state always yields the
 * same bytes — the property the golden checkpoint test pins down.
 */

#ifndef HP_UTIL_SERIALIZE_HH
#define HP_UTIL_SERIALIZE_HH

#include <algorithm>
#include <array>
#include <cstdint>
#include <cstring>
#include <deque>
#include <list>
#include <map>
#include <string>
#include <type_traits>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "util/ring_buffer.hh"

namespace hp
{

/** Serializes state into a growing canonical byte buffer. */
class StateWriter
{
  public:
    static constexpr bool loading = false;

    template <typename T>
    void
    value(const T &v)
    {
        static_assert(std::is_arithmetic_v<T> || std::is_enum_v<T>,
                      "value() takes scalars only; add an io() overload");
        if constexpr (std::is_same_v<T, bool>) {
            buf_.push_back(v ? 1 : 0);
        } else if constexpr (std::is_floating_point_v<T>) {
            static_assert(sizeof(T) == 8, "only double is supported");
            std::uint64_t bits = 0;
            std::memcpy(&bits, &v, sizeof(bits));
            writeUint(bits, 8);
        } else if constexpr (std::is_enum_v<T>) {
            using U = std::underlying_type_t<T>;
            writeUint(static_cast<std::uint64_t>(
                          static_cast<std::make_unsigned_t<U>>(
                              static_cast<U>(v))),
                      sizeof(U));
        } else {
            writeUint(static_cast<std::uint64_t>(
                          static_cast<std::make_unsigned_t<T>>(v)),
                      sizeof(T));
        }
    }

    void
    bytes(const void *data, std::size_t n)
    {
        const auto *p = static_cast<const std::uint8_t *>(data);
        buf_.insert(buf_.end(), p, p + n);
    }

    const std::vector<std::uint8_t> &buffer() const { return buf_; }
    std::vector<std::uint8_t> take() { return std::move(buf_); }

  private:
    void
    writeUint(std::uint64_t v, unsigned width)
    {
        for (unsigned i = 0; i < width; ++i)
            buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }

    std::vector<std::uint8_t> buf_;
};

/**
 * Restores state from a byte buffer produced by StateWriter.
 *
 * A truncated stream is reported through fail() rather than read out
 * of bounds; the caller (Checkpoint::restoreInto) turns a failed load
 * into a hard error with context. Reads past the end return zeros.
 */
class StateLoader
{
  public:
    static constexpr bool loading = true;

    StateLoader(const std::uint8_t *data, std::size_t size)
        : data_(data), size_(size)
    {
    }

    template <typename T>
    void
    value(T &v)
    {
        static_assert(std::is_arithmetic_v<T> || std::is_enum_v<T>,
                      "value() takes scalars only; add an io() overload");
        if constexpr (std::is_same_v<T, bool>) {
            std::uint8_t b = 0;
            bytes(&b, 1);
            v = b != 0;
        } else if constexpr (std::is_floating_point_v<T>) {
            static_assert(sizeof(T) == 8, "only double is supported");
            const std::uint64_t bits = readUint(8);
            std::memcpy(&v, &bits, sizeof(v));
        } else if constexpr (std::is_enum_v<T>) {
            using U = std::underlying_type_t<T>;
            v = static_cast<T>(static_cast<U>(readUint(sizeof(U))));
        } else {
            v = static_cast<T>(readUint(sizeof(T)));
        }
    }

    void
    bytes(void *out, std::size_t n)
    {
        if (size_ - pos_ < n) {
            failed_ = true;
            std::memset(out, 0, n);
            pos_ = size_;
            return;
        }
        std::memcpy(out, data_ + pos_, n);
        pos_ += n;
    }

    std::size_t remaining() const { return size_ - pos_; }

    /** True once any read ran past the end of the stream. */
    bool failed() const { return failed_; }

    /** Marks the stream bad (shape mismatch); stops further reads. */
    void
    markFailed()
    {
        failed_ = true;
        pos_ = size_;
    }

  private:
    std::uint64_t
    readUint(unsigned width)
    {
        std::uint8_t raw[8] = {};
        bytes(raw, width);
        std::uint64_t v = 0;
        for (unsigned i = 0; i < width; ++i)
            v |= static_cast<std::uint64_t>(raw[i]) << (8 * i);
        return v;
    }

    const std::uint8_t *data_;
    std::size_t size_;
    std::size_t pos_ = 0;
    bool failed_ = false;
};

/**
 * Geometry guard for containers whose size is fixed by configuration
 * (cache line arrays, BTB ways, MSHR files, ...): records the size on
 * capture and, on restore, fails the stream when it does not match the
 * constructed container — a blob captured under a different geometry
 * must be rejected, never silently reshape the component.
 * @return false when the load must stop (shape mismatch).
 */
template <class Ar, typename C>
bool
checkShape(Ar &ar, const C &c)
{
    std::uint64_t n = c.size();
    ar.value(n);
    if constexpr (Ar::loading) {
        if (n != c.size()) {
            ar.markFailed();
            return false;
        }
    }
    return true;
}

/** Scalars go through value(); anything else must serializeState. */
template <class Ar, typename T>
void
io(Ar &ar, T &v)
{
    if constexpr (std::is_arithmetic_v<T> || std::is_enum_v<T>)
        ar.value(v);
    else
        v.serializeState(ar);
}

template <class Ar>
void
io(Ar &ar, std::string &s)
{
    std::uint64_t n = s.size();
    ar.value(n);
    if constexpr (Ar::loading)
        s.resize(n);
    if (n > 0)
        ar.bytes(s.data(), n);
}

template <class Ar, typename T>
void
io(Ar &ar, std::vector<T> &v)
{
    std::uint64_t n = v.size();
    ar.value(n);
    if constexpr (Ar::loading) {
        v.clear();
        v.resize(n);
    }
    for (auto &e : v)
        io(ar, e);
}

template <class Ar, typename T, std::size_t N>
void
io(Ar &ar, std::array<T, N> &a)
{
    for (auto &e : a)
        io(ar, e);
}

template <class Ar, typename T>
void
io(Ar &ar, std::deque<T> &d)
{
    std::uint64_t n = d.size();
    ar.value(n);
    if constexpr (Ar::loading) {
        d.clear();
        d.resize(n);
    }
    for (auto &e : d)
        io(ar, e);
}

template <class Ar, typename T>
void
io(Ar &ar, std::list<T> &l)
{
    std::uint64_t n = l.size();
    ar.value(n);
    if constexpr (Ar::loading) {
        l.clear();
        l.resize(n);
    }
    for (auto &e : l)
        io(ar, e);
}

template <class Ar, typename A, typename B>
void
io(Ar &ar, std::pair<A, B> &p)
{
    io(ar, p.first);
    io(ar, p.second);
}

/** Multimaps keep iteration order; equal keys stay in insertion
 *  order, which tick loops that pop equal-cycle entries rely on. */
template <class Ar, typename K, typename V>
void
io(Ar &ar, std::multimap<K, V> &m)
{
    if constexpr (Ar::loading) {
        std::uint64_t n = 0;
        ar.value(n);
        m.clear();
        for (std::uint64_t i = 0; i < n; ++i) {
            K k{};
            V v{};
            io(ar, k);
            io(ar, v);
            m.emplace_hint(m.end(), std::move(k), std::move(v));
        }
    } else {
        std::uint64_t n = m.size();
        ar.value(n);
        for (auto &kv : m) {
            K k = kv.first;
            io(ar, k);
            io(ar, kv.second);
        }
    }
}

/** Unordered maps are emitted sorted by key so the encoding is
 *  canonical regardless of hash-table history. */
template <class Ar, typename K, typename V>
void
io(Ar &ar, std::unordered_map<K, V> &m)
{
    if constexpr (Ar::loading) {
        std::uint64_t n = 0;
        ar.value(n);
        m.clear();
        m.reserve(n);
        for (std::uint64_t i = 0; i < n; ++i) {
            K k{};
            io(ar, k);
            io(ar, m[k]);
        }
    } else {
        std::uint64_t n = m.size();
        ar.value(n);
        std::vector<K> keys;
        keys.reserve(m.size());
        for (const auto &kv : m)
            keys.push_back(kv.first);
        std::sort(keys.begin(), keys.end());
        for (K &k : keys) {
            io(ar, k);
            io(ar, m.at(k));
        }
    }
}

template <class Ar, typename K>
void
io(Ar &ar, std::unordered_set<K> &s)
{
    if constexpr (Ar::loading) {
        std::uint64_t n = 0;
        ar.value(n);
        s.clear();
        s.reserve(n);
        for (std::uint64_t i = 0; i < n; ++i) {
            K k{};
            io(ar, k);
            s.insert(std::move(k));
        }
    } else {
        std::uint64_t n = s.size();
        ar.value(n);
        std::vector<K> keys(s.begin(), s.end());
        std::sort(keys.begin(), keys.end());
        for (K &k : keys)
            io(ar, k);
    }
}

/** Ring buffers serialize their logical contents front-to-back; the
 *  head position and capacity are representation, not state. */
template <class Ar, typename T>
void
io(Ar &ar, RingBuffer<T> &rb)
{
    if constexpr (Ar::loading) {
        std::uint64_t n = 0;
        ar.value(n);
        rb.clear();
        for (std::uint64_t i = 0; i < n; ++i) {
            T t{};
            io(ar, t);
            rb.push_back(std::move(t));
        }
    } else {
        std::uint64_t n = rb.size();
        ar.value(n);
        for (std::uint64_t i = 0; i < n; ++i)
            io(ar, rb[i]);
    }
}

} // namespace hp

#endif // HP_UTIL_SERIALIZE_HH
