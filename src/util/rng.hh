/**
 * @file
 * Deterministic random number generation.
 *
 * Every stochastic decision in the library (program construction,
 * request mixes, intra-functionality jitter) draws from an explicitly
 * seeded Rng so that a given configuration always produces the same
 * statistics. The generator is xoshiro256**, seeded via SplitMix64.
 */

#ifndef HP_UTIL_RNG_HH
#define HP_UTIL_RNG_HH

#include <cstdint>
#include <vector>

namespace hp
{

/** Deterministic xoshiro256** generator with distribution helpers. */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed = 1);

    /** Returns the next raw 64-bit value. */
    std::uint64_t next();

    /** Uniform integer in [0, bound); bound must be > 0. */
    std::uint64_t nextUint(std::uint64_t bound);

    /** Uniform integer in [lo, hi] inclusive. */
    std::int64_t nextRange(std::int64_t lo, std::int64_t hi);

    /** Uniform double in [0, 1). */
    double nextDouble();

    /** Bernoulli trial with probability @p p of returning true. */
    bool nextBool(double p);

    /**
     * Geometric-ish body length: returns a value in [lo, hi] with an
     * exponential bias toward lo, matching the long-tailed function
     * size distributions seen in real server binaries.
     */
    std::uint64_t nextSkewed(std::uint64_t lo, std::uint64_t hi);

    /** Derives an independent child generator (for nested builders). */
    Rng fork();

    /** Serializes/restores the generator state (checkpointing). */
    template <class Ar>
    void
    serializeState(Ar &ar)
    {
        for (std::uint64_t &s : s_)
            ar.value(s);
    }

  private:
    std::uint64_t s_[4];
};

/**
 * Zipfian sampler over [0, n). Used for request-type popularity, which
 * in real server workloads is strongly skewed.
 */
class ZipfSampler
{
  public:
    /**
     * @param n     Number of items.
     * @param theta Skew (0 = uniform; ~0.99 = typical YCSB skew).
     */
    ZipfSampler(std::size_t n, double theta);

    /** Draws an item index in [0, n). */
    std::size_t sample(Rng &rng) const;

    std::size_t size() const { return cdf_.size(); }

  private:
    std::vector<double> cdf_;
};

} // namespace hp

#endif // HP_UTIL_RNG_HH
