#include "util/logging.hh"

#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace hp
{

namespace
{

LogLevel
parseLogLevel()
{
    const char *v = std::getenv("HP_LOG_LEVEL");
    if (v == nullptr || *v == '\0')
        return LogLevel::Warn;
    if (std::strcmp(v, "quiet") == 0 || std::strcmp(v, "0") == 0)
        return LogLevel::Quiet;
    if (std::strcmp(v, "warn") == 0 || std::strcmp(v, "1") == 0)
        return LogLevel::Warn;
    if (std::strcmp(v, "info") == 0 || std::strcmp(v, "2") == 0)
        return LogLevel::Info;
    if (std::strcmp(v, "debug") == 0 || std::strcmp(v, "3") == 0)
        return LogLevel::Debug;
    std::fprintf(stderr,
                 "warn: unrecognized HP_LOG_LEVEL '%s' "
                 "(want quiet|warn|info|debug or 0-3); using warn\n",
                 v);
    return LogLevel::Warn;
}

} // namespace

LogLevel
logLevel()
{
    static const LogLevel level = parseLogLevel();
    return level;
}

void
panic(const std::string &msg)
{
    std::fprintf(stderr, "panic: %s\n", msg.c_str());
    std::abort();
}

void
fatal(const std::string &msg)
{
    std::fprintf(stderr, "fatal: %s\n", msg.c_str());
    std::exit(1);
}

void
warn(const std::string &msg)
{
    if (logEnabled(LogLevel::Warn))
        std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

void
logInfo(const std::string &msg)
{
    if (logEnabled(LogLevel::Info))
        std::fprintf(stderr, "info: %s\n", msg.c_str());
}

void
logDebug(const std::string &msg)
{
    if (logEnabled(LogLevel::Debug))
        std::fprintf(stderr, "debug: %s\n", msg.c_str());
}

} // namespace hp
