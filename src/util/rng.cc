#include "util/rng.hh"

#include <algorithm>
#include <cmath>

#include "util/logging.hh"

namespace hp
{

namespace
{

std::uint64_t
splitMix64(std::uint64_t &state)
{
    state += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = state;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

constexpr std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(std::uint64_t seed)
{
    // xoshiro256** must not be seeded with an all-zero state; SplitMix64
    // never produces four consecutive zeros.
    std::uint64_t sm = seed;
    for (auto &word : s_)
        word = splitMix64(sm);
}

std::uint64_t
Rng::next()
{
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
}

std::uint64_t
Rng::nextUint(std::uint64_t bound)
{
    panicIf(bound == 0, "Rng::nextUint with zero bound");
    // Lemire-style bounded draw without modulo bias (rejection variant).
    std::uint64_t threshold = (0 - bound) % bound;
    for (;;) {
        std::uint64_t raw = next();
        if (raw >= threshold)
            return raw % bound;
    }
}

std::int64_t
Rng::nextRange(std::int64_t lo, std::int64_t hi)
{
    panicIf(lo > hi, "Rng::nextRange with lo > hi");
    return lo + static_cast<std::int64_t>(
        nextUint(static_cast<std::uint64_t>(hi - lo) + 1));
}

double
Rng::nextDouble()
{
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

bool
Rng::nextBool(double p)
{
    if (p <= 0.0)
        return false;
    if (p >= 1.0)
        return true;
    return nextDouble() < p;
}

std::uint64_t
Rng::nextSkewed(std::uint64_t lo, std::uint64_t hi)
{
    panicIf(lo > hi, "Rng::nextSkewed with lo > hi");
    if (lo == hi)
        return lo;
    // Exponentially distributed offset, clamped into the range. The
    // scale is 1/4 of the span so the tail reaches hi but is rare.
    double span = static_cast<double>(hi - lo);
    double draw = -std::log(1.0 - nextDouble()) * (span / 4.0);
    double clamped = std::min(draw, span);
    return lo + static_cast<std::uint64_t>(clamped);
}

Rng
Rng::fork()
{
    return Rng(next());
}

ZipfSampler::ZipfSampler(std::size_t n, double theta)
{
    fatalIf(n == 0, "ZipfSampler over an empty domain");
    cdf_.resize(n);
    double sum = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
        sum += 1.0 / std::pow(static_cast<double>(i + 1), theta);
        cdf_[i] = sum;
    }
    for (auto &value : cdf_)
        value /= sum;
}

std::size_t
ZipfSampler::sample(Rng &rng) const
{
    double u = rng.nextDouble();
    auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
    if (it == cdf_.end())
        return cdf_.size() - 1;
    return static_cast<std::size_t>(it - cdf_.begin());
}

} // namespace hp
