/**
 * @file
 * Workload profiles for the 11 server applications of the evaluation.
 *
 * Real traces of beego/caddy/dgraph/... are not available here, so each
 * application is modeled by a profile that drives both the synthetic
 * program builder (static shape: function counts and sizes, stage and
 * routine structure, cold library code) and the request engine (dynamic
 * shape: request mix, loop trip counts, control-flow jitter). Profiles
 * are calibrated so the derived statistics land near the paper's
 * Table 4 (scaled ~10x down in function count; see EXPERIMENTS.md).
 */

#ifndef HP_WORKLOAD_APP_PROFILE_HH
#define HP_WORKLOAD_APP_PROFILE_HH

#include <cstdint>
#include <string>
#include <vector>

namespace hp
{

/** Static and dynamic shape of one server application + benchmark. */
struct AppProfile
{
    /** Workload name, e.g. "tidb-tpcc". */
    std::string name;

    /** Binary name, e.g. "tidb" (several workloads share a binary). */
    std::string binary;

    /** Seed for program construction (per binary, not per workload). */
    std::uint64_t binarySeed = 1;

    /** Seed for the request stream (per workload). */
    std::uint64_t requestSeed = 1;

    // ---- Static structure (program builder) ----

    /** Pipeline stages per request (cf. Figure 1: Read..Finish). */
    unsigned numStages = 5;

    /** Alternative functionality routines per stage. */
    std::vector<unsigned> routinesPerStage;

    /** Dedicated functions in one routine's hot call tree. */
    unsigned funcsPerRoutine = 40;

    /** Shared runtime/utility pool size (allocator, codec, logging). */
    unsigned sharedUtilFuncs = 300;

    /** Utility functions one routine links against. */
    unsigned utilsPerRoutine = 60;

    /** Cold library packages (static-only code, for the call graph). */
    unsigned coldLibraries = 40;

    /** Function body size range in instructions (skewed draw). */
    unsigned funcInstsMin = 40;
    unsigned funcInstsMax = 1600;

    /** Feature subtrees per cold library (each a divergence branch). */
    unsigned featuresPerColdLibrary = 4;

    /** Functions per cold-library feature subtree. */
    unsigned funcsPerColdFeature = 26;

    /** Local utility-pool functions per cold library. */
    unsigned coldPoolFuncs = 56;

    // ---- Dynamic behaviour (request engine) ----

    /** Distinct request types. */
    unsigned requestTypes = 12;

    /** Zipf skew of the request-type mix. */
    double typeZipfTheta = 0.9;

    /** Row-processing loop trips in the heavy stages (min..max). */
    unsigned rowsMin = 4;
    unsigned rowsMax = 16;

    /** Percent chance a biased branch flips per evaluation. */
    unsigned branchJitter = 4;

    /** Percent chance a conditional call-site decision flips. */
    unsigned callJitter = 4;

    /**
     * Percent of decision sites whose stable outcome depends on the
     * request type (the rest are stable across all executions of the
     * containing functionality). Higher values reduce Bundle footprint
     * similarity across executions — databases (tidb, mysql) are far
     * more type-sensitive than web-framework request handlers.
     */
    unsigned typeSensitivePercent = 8;

    /**
     * Percent chance, at each stage boundary, that an OS/kernel noise
     * routine (timer, network poll) runs — fine-grained interleaving
     * noise for the temporal prefetchers (0 = none).
     */
    unsigned irqProbPercent = 35;

    /** Synthetic data-side DRAM traffic (bytes per kilo-instruction),
     *  used only to normalize the Figure 16 bandwidth overhead. */
    double dataDramBytesPerKiloInst = 400.0;
};

/** Returns the profile for workload @p name; fatals if unknown. */
const AppProfile &appProfile(const std::string &name);

/** All 11 workload names, in the paper's order. */
const std::vector<std::string> &allWorkloads();

/** The 8 distinct binaries (for the Table 4 rows). */
const std::vector<std::string> &allBinaries();

/** A representative workload per binary (Table 4 statistics). */
const std::string &workloadForBinary(const std::string &binary);

} // namespace hp

#endif // HP_WORKLOAD_APP_PROFILE_HH
