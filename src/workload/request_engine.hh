/**
 * @file
 * The request engine: interprets a built application's function bodies
 * to produce the dynamic instruction stream the simulator consumes.
 *
 * Requests draw a type from a Zipfian mix; each request walks the
 * request driver through every stage dispatcher, which diverges into
 * the routine selected by the request type. Branch directions and
 * conditional-call decisions are *stable per (site, request type)* with
 * a small per-evaluation jitter — giving each functionality the stable
 * instruction footprint with bounded variation that the paper observes
 * (Jaccard > 0.8 between consecutive executions of a Bundle).
 */

#ifndef HP_WORKLOAD_REQUEST_ENGINE_HH
#define HP_WORKLOAD_REQUEST_ENGINE_HH

#include <memory>
#include <unordered_map>
#include <vector>

#include "isa/inst.hh"
#include "stats/registry.hh"
#include "util/rng.hh"
#include "workload/program_builder.hh"

namespace hp
{

/** Statistics the engine can report about the emitted stream. */
struct EngineStats
{
    std::uint64_t instructions = 0;
    std::uint64_t requests = 0;
    std::uint64_t calls = 0;
    std::uint64_t returns = 0;
    std::uint64_t condBranches = 0;
    std::uint64_t taggedInsts = 0;
};

/** Interprets a BuiltApp as an infinite instruction stream. */
class RequestEngine : public InstStream
{
  public:
    /**
     * @param app     The built (linked + tagged) application.
     * @param profile Workload profile (request mix and jitter; may be a
     *                different workload than the one that built the
     *                binary, e.g. tidb-tpcc vs tidb-sysbench).
     */
    RequestEngine(std::shared_ptr<const BuiltApp> app,
                  const AppProfile &profile);

    /** Emits the next instruction; the stream never ends. */
    bool next(DynInst &inst) override;

    const EngineStats &stats() const { return stats_; }

    /** Registers the emitted-stream counters under @p prefix. */
    void
    registerStats(StatsRegistry &reg, const std::string &prefix) const
    {
        const EngineStats &s = stats_;
        reg.add(prefix + ".instructions",
                [&s] { return s.instructions; });
        reg.add(prefix + ".requests", [&s] { return s.requests; });
        reg.add(prefix + ".calls", [&s] { return s.calls; });
        reg.add(prefix + ".returns", [&s] { return s.returns; });
        reg.add(prefix + ".cond_branches",
                [&s] { return s.condBranches; });
        reg.add(prefix + ".tagged_insts",
                [&s] { return s.taggedInsts; });
    }

    /** Request type of the request currently executing. */
    unsigned currentType() const { return requestType_; }

    /** Serializes/restores RNG, call frames, and counters. */
    template <class Ar> void serializeState(Ar &ar);

  private:
    struct LoopState
    {
        std::uint32_t opIdx = 0;
        std::uint16_t remaining = 0;

        template <class Ar>
        void
        serializeState(Ar &ar)
        {
            ar.value(opIdx);
            ar.value(remaining);
        }
    };

    struct Frame
    {
        FuncId func = kNoFunc;
        std::uint32_t opIdx = 0;
        std::uint32_t intraRun = 0;
        Addr returnAddr = 0;
        /** Active loops in this frame (rarely more than one). */
        std::vector<LoopState> loops;

        template <class Ar>
        void
        serializeState(Ar &ar)
        {
            ar.value(func);
            ar.value(opIdx);
            ar.value(intraRun);
            ar.value(returnAddr);
            io(ar, loops);
        }
    };

    void startRequest();
    void pushFrame(FuncId func, Addr return_addr);

    /** Stable per-(site, type) decision with per-evaluation jitter. */
    bool decide(Addr pc, unsigned bias, unsigned jitter);

    /** Jumps the top frame's cursor to instruction slot @p slot. */
    void seek(Frame &frame, std::uint32_t slot);

    std::shared_ptr<const BuiltApp> app_;
    const AppProfile &profile_;
    Rng rng_;
    ZipfSampler typeSampler_;

    std::vector<Frame> frames_;
    unsigned requestType_ = 0;

    StreamMarker pendingMarker_ = StreamMarker::None;
    std::uint16_t pendingMarkerArg_ = 0;

    /** Dispatcher func -> stage index (for StageBegin markers). */
    std::unordered_map<FuncId, std::uint16_t> dispatcherStage_;

    EngineStats stats_;

    static constexpr std::size_t kMaxDepth = 96;
};

} // namespace hp

#endif // HP_WORKLOAD_REQUEST_ENGINE_HH
