/**
 * @file
 * Synthetic server-application builder.
 *
 * Constructs a Program whose static shape mimics a real server binary:
 * a request driver, per-stage dispatchers that diverge into
 * per-request-type functionality routines (each a call tree of
 * dedicated functions plus shared runtime utilities), kernel noise
 * routines, and a large body of cold library code that only the static
 * call graph sees. The built image is then linked and tagged with the
 * paper's Bundle algorithm.
 */

#ifndef HP_WORKLOAD_PROGRAM_BUILDER_HH
#define HP_WORKLOAD_PROGRAM_BUILDER_HH

#include <memory>
#include <vector>

#include "binary/program.hh"
#include "core/loader.hh"
#include "workload/app_profile.hh"

namespace hp
{

/** A fully built, linked and tagged application image. */
struct BuiltApp
{
    const AppProfile *profile = nullptr;

    Program program;
    LinkedImage image;

    /** Per-request root function (calls every stage dispatcher). */
    FuncId requestDriver = kNoFunc;

    /** Stage dispatcher functions, one per pipeline stage. */
    std::vector<FuncId> dispatchers;

    /** Routine roots per stage (dispatcher call candidates). */
    std::vector<std::vector<FuncId>> stageRoutines;

    /** Kernel/OS noise routine roots. */
    std::vector<FuncId> irqRoutines;
};

/**
 * Builds (and caches) the application for a workload profile.
 * Programs are deterministic in profile.binarySeed, so workloads that
 * share a binary (e.g. tidb-tpcc / tidb-sysbench) share the image.
 */
class ProgramBuilder
{
  public:
    /** Builds a fresh image for @p profile. */
    static std::shared_ptr<const BuiltApp> build(const AppProfile &profile);

    /** Process-wide cache keyed by binary name. */
    static std::shared_ptr<const BuiltApp> cached(const AppProfile &profile);
};

} // namespace hp

#endif // HP_WORKLOAD_PROGRAM_BUILDER_HH
