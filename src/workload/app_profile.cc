#include "workload/app_profile.hh"

#include <map>

#include "util/logging.hh"

namespace hp
{

namespace
{

/** Builds the registry of the 11 evaluated workloads. */
std::map<std::string, AppProfile>
makeRegistry()
{
    std::map<std::string, AppProfile> reg;

    auto add = [&reg](AppProfile p) {
        reg[p.name] = std::move(p);
    };

    // --- Go web frameworks (large, stable request handlers) ---
    {
        AppProfile p;
        p.name = "beego";
        p.binary = "beego";
        p.binarySeed = 0xbee60;
        p.requestSeed = 0x1001;
        p.numStages = 5;
        p.routinesPerStage = {1, 3, 4, 5, 1};
        p.funcsPerRoutine = 48;
        p.sharedUtilFuncs = 340;
        p.utilsPerRoutine = 70;
        p.coldLibraries = 42;
        p.requestTypes = 10;
        p.rowsMin = 3;
        p.rowsMax = 7;
        p.branchJitter = 1;
        p.callJitter = 0;
        p.typeSensitivePercent = 2;
        add(p);
    }
    {
        AppProfile p;
        p.name = "gin";
        p.binary = "gin";
        p.binarySeed = 0x61717;
        p.requestSeed = 0x1002;
        p.numStages = 5;
        p.routinesPerStage = {1, 3, 4, 5, 1};
        p.funcsPerRoutine = 50;
        p.sharedUtilFuncs = 340;
        p.utilsPerRoutine = 74;
        p.coldLibraries = 42;
        p.requestTypes = 10;
        p.rowsMin = 4;
        p.rowsMax = 9;
        p.branchJitter = 1;
        p.callJitter = 0;
        p.typeSensitivePercent = 3;
        add(p);
    }
    {
        AppProfile p;
        p.name = "echo";
        p.binary = "echo";
        p.binarySeed = 0xec000;
        p.requestSeed = 0x1003;
        p.numStages = 5;
        p.routinesPerStage = {1, 4, 5, 6, 2};
        p.funcsPerRoutine = 48;
        p.sharedUtilFuncs = 320;
        p.utilsPerRoutine = 72;
        p.coldLibraries = 30;
        p.requestTypes = 12;
        p.rowsMin = 3;
        p.rowsMax = 7;
        p.branchJitter = 1;
        p.callJitter = 0;
        p.typeSensitivePercent = 2;
        add(p);
    }

    // --- Caddy web server (HTTP/1-2-3, smaller handlers) ---
    {
        AppProfile p;
        p.name = "caddy";
        p.binary = "caddy";
        p.binarySeed = 0xcadd1;
        p.requestSeed = 0x1004;
        p.numStages = 4;
        p.routinesPerStage = {1, 3, 4, 1};
        p.funcsPerRoutine = 48;
        p.sharedUtilFuncs = 360;
        p.utilsPerRoutine = 56;
        p.coldLibraries = 56;
        p.requestTypes = 14;
        p.rowsMin = 2;
        p.rowsMax = 6;
        p.branchJitter = 3;
        p.callJitter = 1;
        p.typeSensitivePercent = 5;
        add(p);
    }

    // --- DGraph graph database (big binary, noisy control flow) ---
    {
        AppProfile p;
        p.name = "dgraph";
        p.binary = "dgraph";
        p.binarySeed = 0xd64af;
        p.requestSeed = 0x1005;
        p.numStages = 6;
        p.routinesPerStage = {1, 4, 5, 6, 4, 1};
        p.funcsPerRoutine = 28;
        p.sharedUtilFuncs = 420;
        p.utilsPerRoutine = 64;
        p.coldLibraries = 90;
        p.requestTypes = 18;
        p.rowsMin = 5;
        p.rowsMax = 12;
        p.branchJitter = 5;
        p.callJitter = 1;
        p.typeSensitivePercent = 10;
        add(p);
    }

    // --- gorm ORM with PostgreSQL ---
    {
        AppProfile p;
        p.name = "gorm";
        p.binary = "gorm";
        p.binarySeed = 0x60aa1;
        p.requestSeed = 0x1006;
        p.numStages = 5;
        p.routinesPerStage = {1, 3, 5, 4, 1};
        p.funcsPerRoutine = 26;
        p.sharedUtilFuncs = 330;
        p.utilsPerRoutine = 58;
        p.coldLibraries = 40;
        p.requestTypes = 12;
        p.rowsMin = 5;
        p.rowsMax = 13;
        p.branchJitter = 4;
        p.callJitter = 1;
        p.typeSensitivePercent = 7;
        add(p);
    }

    // --- MySQL under three benchmarks (shared binary) ---
    auto mysqlBase = []() {
        AppProfile p;
        p.binary = "mysql";
        p.binarySeed = 0x3150a;
        p.numStages = 6;
        p.routinesPerStage = {1, 4, 6, 8, 4, 1};
        p.funcsPerRoutine = 16;
        p.sharedUtilFuncs = 420;
        p.utilsPerRoutine = 36;
        p.coldLibraries = 70;
        p.rowsMin = 5;
        p.rowsMax = 11;
        p.branchJitter = 5;
        p.callJitter = 1;
        p.typeSensitivePercent = 10;
        return p;
    };
    {
        AppProfile p = mysqlBase();
        p.name = "mysql-sysbench";
        p.requestSeed = 0x1007;
        p.requestTypes = 10;
        p.typeZipfTheta = 0.6;
        add(p);
    }
    {
        AppProfile p = mysqlBase();
        p.name = "mysql-ycsb";
        p.requestSeed = 0x1008;
        p.requestTypes = 6;
        p.typeZipfTheta = 0.99;
        p.rowsMin = 3;
        p.rowsMax = 7;
        add(p);
    }
    {
        AppProfile p = mysqlBase();
        p.name = "mysql-sibench";
        p.requestSeed = 0x1009;
        p.requestTypes = 4;
        p.typeZipfTheta = 0.4;
        p.rowsMin = 6;
        p.rowsMax = 14;
        add(p);
    }

    // --- TiDB under two benchmarks (shared binary; biggest program,
    //     smallest/shortest Bundles per Table 4) ---
    auto tidbBase = []() {
        AppProfile p;
        p.binary = "tidb";
        p.binarySeed = 0x71d00;
        p.numStages = 7;
        p.routinesPerStage = {1, 5, 8, 10, 8, 5, 1};
        p.funcsPerRoutine = 13;
        p.sharedUtilFuncs = 480;
        p.utilsPerRoutine = 30;
        p.coldLibraries = 150;
        p.rowsMin = 2;
        p.rowsMax = 4;
        p.branchJitter = 4;
        p.callJitter = 1;
        p.typeSensitivePercent = 9;
        return p;
    };
    {
        AppProfile p = tidbBase();
        p.name = "tidb-sysbench";
        p.requestSeed = 0x100a;
        p.requestTypes = 10;
        p.typeZipfTheta = 0.6;
        add(p);
    }
    {
        AppProfile p = tidbBase();
        p.name = "tidb-tpcc";
        p.requestSeed = 0x100b;
        p.requestTypes = 20;
        p.typeZipfTheta = 0.8;
        add(p);
    }

    return reg;
}

const std::map<std::string, AppProfile> &
registry()
{
    static const std::map<std::string, AppProfile> reg = makeRegistry();
    return reg;
}

} // namespace

const AppProfile &
appProfile(const std::string &name)
{
    auto it = registry().find(name);
    fatalIf(it == registry().end(), "unknown workload: " + name);
    return it->second;
}

const std::vector<std::string> &
allWorkloads()
{
    static const std::vector<std::string> names = {
        "beego", "caddy", "dgraph", "echo", "gin", "gorm",
        "mysql-sysbench", "tidb-sysbench", "tidb-tpcc",
        "mysql-ycsb", "mysql-sibench",
    };
    return names;
}

const std::vector<std::string> &
allBinaries()
{
    static const std::vector<std::string> names = {
        "beego", "caddy", "dgraph", "echo", "gin", "gorm",
        "mysql", "tidb",
    };
    return names;
}

const std::string &
workloadForBinary(const std::string &binary)
{
    static const std::map<std::string, std::string> map = {
        {"beego", "beego"},   {"caddy", "caddy"},
        {"dgraph", "dgraph"}, {"echo", "echo"},
        {"gin", "gin"},       {"gorm", "gorm"},
        {"mysql", "mysql-sysbench"}, {"tidb", "tidb-tpcc"},
    };
    auto it = map.find(binary);
    fatalIf(it == map.end(), "unknown binary: " + binary);
    return it->second;
}

} // namespace hp
