#include "workload/program_builder.hh"

#include <algorithm>
#include <future>
#include <map>
#include <mutex>

#include "util/logging.hh"
#include "util/rng.hh"

namespace hp
{

namespace
{

/** A call the body generator must place. */
struct PlannedCall
{
    std::vector<FuncId> candidates;
    std::uint8_t prob = 100;
    std::uint8_t jitter = 0;
    bool indirect = false;
    bool inLoop = false;
};

/** Loop request for the body generator. */
struct LoopPlan
{
    bool enabled = false;
    std::uint16_t meanIter = 0;
};

/**
 * Emits a function body of roughly @p target_insts instructions:
 * interleaved instruction runs, biased skip branches, the planned call
 * sites, and optionally a row-processing loop containing the calls
 * marked inLoop.
 */
class BodyMaker
{
  public:
    BodyMaker(Function &fn, Rng &rng, const AppProfile &profile)
        : fn_(fn), rng_(rng), profile_(profile)
    {}

    void
    make(std::uint32_t target_insts, std::vector<PlannedCall> calls,
         const LoopPlan &loop)
    {
        std::vector<PlannedCall> pre, in, post;
        for (auto &call : calls) {
            if (loop.enabled && call.inLoop)
                in.push_back(std::move(call));
            else if (rng_.nextBool(0.5))
                pre.push_back(std::move(call));
            else
                post.push_back(std::move(call));
        }

        // Reserve roughly a third of the body for each section.
        std::uint32_t section = std::max<std::uint32_t>(
            target_insts / (loop.enabled ? 3 : 2), 24);

        emitSection(section, pre);
        if (loop.enabled) {
            std::uint32_t loop_start = cursor_;
            emitSection(section, in);
            std::uint32_t span = cursor_ - loop_start;
            if (span > 0) {
                BodyOp op;
                op.kind = OpKind::Loop;
                op.offset = cursor_;
                op.span = span;
                op.biasTaken = 100;
                op.meanIter = loop.meanIter;
                fn_.body.push_back(op);
                ++cursor_;
            }
        }
        emitSection(section, post);

        BodyOp ret;
        ret.kind = OpKind::Ret;
        ret.offset = cursor_;
        fn_.body.push_back(ret);
        ++cursor_;
    }

  private:
    /** Emits ~insts instructions plus all of the given call sites. */
    void
    emitSection(std::uint32_t insts, const std::vector<PlannedCall> &calls)
    {
        std::uint32_t emitted = 0;
        std::size_t next_call = 0;
        std::uint32_t call_gap = static_cast<std::uint32_t>(
            insts / (calls.size() + 1));

        while (emitted < insts || next_call < calls.size()) {
            if (next_call < calls.size() &&
                emitted >= call_gap * (next_call + 1)) {
                emitCall(calls[next_call]);
                ++next_call;
                continue;
            }
            if (emitted >= insts) {
                // Runs exhausted but calls remain: emit them back to
                // back with small separators.
                emitRun(4);
                emitted += 4;
                continue;
            }
            std::uint32_t len = static_cast<std::uint32_t>(
                rng_.nextSkewed(6, 26));
            len = std::min(len, insts - emitted + 4);
            if (len >= 8 && rng_.nextBool(0.6)) {
                emitBranchOverRun(len);
            } else {
                emitRun(len);
            }
            emitted += len;

            // Small inner loops (string scans, row filters): they add
            // dynamic instructions and I-cache reuse without growing
            // the footprint, like real server code.
            if (len >= 10 && rng_.nextBool(0.15)) {
                BodyOp loop;
                loop.kind = OpKind::Loop;
                loop.offset = cursor_;
                loop.span = len;
                loop.biasTaken = 100;
                loop.meanIter = static_cast<std::uint16_t>(
                    rng_.nextRange(2, 5));
                fn_.body.push_back(loop);
                ++cursor_;
                ++emitted;
            }
        }
    }

    void
    emitRun(std::uint32_t len)
    {
        BodyOp op;
        op.kind = OpKind::Run;
        op.offset = cursor_;
        op.length = len;
        fn_.body.push_back(op);
        cursor_ += len;
    }

    /** A conditional branch that skips part of the following run. */
    void
    emitBranchOverRun(std::uint32_t run_len)
    {
        std::uint32_t span = static_cast<std::uint32_t>(
            rng_.nextRange(3, std::max<std::int64_t>(3, run_len - 1)));

        BodyOp branch;
        branch.kind = OpKind::Branch;
        branch.offset = cursor_;
        branch.span = span;
        // Mostly strongly biased branches, some moderately biased —
        // the mix real compilers/profiles produce.
        if (rng_.nextBool(0.7)) {
            branch.biasTaken = rng_.nextBool(0.5) ? 88 : 8;
        } else {
            branch.biasTaken = static_cast<std::uint8_t>(
                rng_.nextRange(45, 75));
        }
        branch.jitter = static_cast<std::uint8_t>(profile_.branchJitter);
        fn_.body.push_back(branch);
        ++cursor_;

        emitRun(run_len);
    }

    void
    emitCall(const PlannedCall &call)
    {
        panicIf(call.candidates.empty(), "planned call with no callees");
        CallTarget target;
        target.candidates = call.candidates;
        fn_.targets.push_back(std::move(target));

        BodyOp op;
        op.kind = OpKind::CallSite;
        op.offset = cursor_;
        op.targetIdx = static_cast<std::uint32_t>(fn_.targets.size() - 1);
        op.execProb = call.prob;
        op.execJitter = call.jitter;
        op.indirect = call.indirect;
        fn_.body.push_back(op);
        ++cursor_;
    }

    Function &fn_;
    Rng &rng_;
    const AppProfile &profile_;
    std::uint32_t cursor_ = 0;
};

/** Module numbering: stable layout groups. */
enum ModuleId : std::uint16_t
{
    kModDriver = 0,
    kModUtils = 1,
    kModKernel = 2,
    kModStagesBase = 3,
    // Cold libraries follow the stage modules.
};

/** Builds the whole application; see the header for the shape. */
class BuilderImpl
{
  public:
    BuilderImpl(const AppProfile &profile)
        : profile_(profile), rng_(profile.binarySeed)
    {}

    BuiltApp
    build()
    {
        BuiltApp app;
        app.profile = &profile_;

        buildUtils();
        buildKernel(app);
        buildStages(app);
        buildDriver(app);
        buildColdLibraries();

        app.program = std::move(program_);
        app.program.layout();
        app.program.validate();
        app.image = linkAndTag(app.program);
        return app;
    }

  private:
    /** Draws a function size in instructions from the profile range. */
    std::uint32_t
    drawSize()
    {
        return static_cast<std::uint32_t>(
            rng_.nextSkewed(profile_.funcInstsMin, profile_.funcInstsMax));
    }

    FuncId
    makeFunc(const std::string &name, std::uint16_t module,
             std::uint32_t insts, std::vector<PlannedCall> calls,
             const LoopPlan &loop = {})
    {
        FuncId id = program_.addFunction(name, module);
        BodyMaker maker(program_.func(id), rng_, profile_);
        maker.make(insts, std::move(calls), loop);
        return id;
    }

    /** Utility calls into @p pool: a stable per-site subset. */
    std::vector<PlannedCall>
    drawPoolCalls(const std::vector<FuncId> &pool, unsigned count,
                  double prob_scale = 1.0)
    {
        std::vector<PlannedCall> calls;
        for (unsigned i = 0; i < count; ++i) {
            PlannedCall call;
            call.candidates = {pool[rng_.nextUint(pool.size())]};
            call.prob = static_cast<std::uint8_t>(
                std::clamp<int>(int(rng_.nextRange(20, 90) * prob_scale),
                                5, 100));
            call.jitter = static_cast<std::uint8_t>(profile_.callJitter);
            calls.push_back(std::move(call));
        }
        return calls;
    }

    /** Utility calls into the shared runtime pool. */
    std::vector<PlannedCall>
    drawUtilCalls(unsigned count, double prob_scale = 1.0)
    {
        return drawPoolCalls(utils_, count, prob_scale);
    }

    /**
     * A pool of mutually-calling helper functions (shallow chains:
     * each may call 0..2 later pool members).
     */
    std::vector<FuncId>
    buildPool(const std::string &prefix, std::uint16_t module,
              unsigned count)
    {
        std::vector<FuncId> pool(count);
        std::vector<std::uint32_t> sizes(count);
        for (auto &s : sizes)
            s = drawSize();
        for (unsigned i = count; i-- > 0;) {
            std::vector<PlannedCall> calls;
            unsigned fanout = static_cast<unsigned>(rng_.nextUint(3));
            for (unsigned c = 0; c < fanout && i + 1 < count; ++c) {
                PlannedCall call;
                unsigned callee = i + 1 + static_cast<unsigned>(
                    rng_.nextUint(count - i - 1));
                call.candidates = {pool[callee]};
                call.prob = static_cast<std::uint8_t>(
                    rng_.nextRange(20, 50));
                call.jitter = static_cast<std::uint8_t>(
                    profile_.callJitter);
                calls.push_back(std::move(call));
            }
            pool[i] = makeFunc(prefix + std::to_string(i), module,
                               sizes[i], std::move(calls));
        }
        return pool;
    }

    /**
     * Shared runtime/utility pool: shallow chains (a utility may call
     * 0..2 later utilities), heavily shared by all routines.
     */
    void
    buildUtils()
    {
        utils_ = buildPool("util_", kModUtils, profile_.sharedUtilFuncs);
    }

    /** Kernel/OS noise routines (timer tick, network poll). */
    void
    buildKernel(BuiltApp &app)
    {
        // Interrupt handlers are small and hot: they perturb the
        // fine-grained access stream without dominating any Bundle's
        // footprint.
        for (unsigned k = 0; k < 3; ++k) {
            std::vector<FuncId> leaves;
            for (unsigned i = 0; i < 3; ++i) {
                leaves.push_back(makeFunc(
                    "irq" + std::to_string(k) + "_leaf" +
                        std::to_string(i),
                    kModKernel,
                    40 + static_cast<std::uint32_t>(rng_.nextUint(80)),
                    {}));
            }
            std::vector<PlannedCall> calls;
            for (FuncId leaf : leaves) {
                PlannedCall call;
                call.candidates = {leaf};
                call.prob = static_cast<std::uint8_t>(
                    rng_.nextRange(50, 100));
                call.jitter = 20; // kernel paths vary a lot
                calls.push_back(std::move(call));
            }
            app.irqRoutines.push_back(makeFunc(
                "irq" + std::to_string(k) + "_top", kModKernel,
                60 + static_cast<std::uint32_t>(rng_.nextUint(100)),
                std::move(calls)));
        }
    }

    /**
     * One functionality routine: a call tree of dedicated functions
     * (depth ~3) plus shared utility calls; heavy stages get a
     * row-processing loop in the routine root.
     */
    FuncId
    buildRoutine(const std::string &name, std::uint16_t module,
                 bool heavy, const std::vector<FuncId> &pool,
                 unsigned budget)
    {

        // Leaves first, then internal nodes referencing them.
        unsigned leaves = std::max(budget / 2, 4u);
        unsigned internals = std::max(budget - leaves - 1, 2u);

        // "Rare" helper calls (low execution probability) model the
        // error/slow paths of real code: they add little dynamic
        // footprint but pull large subgraphs into the static reachable
        // size, keeping the static/dynamic footprint ratio at the
        // paper's 3-10x.
        auto with_rare = [this, &pool](std::vector<PlannedCall> calls) {
            auto rare = drawPoolCalls(pool, 2 + rng_.nextUint(2), 0.12);
            calls.insert(calls.end(), rare.begin(), rare.end());
            return calls;
        };

        std::vector<FuncId> leaf_funcs;
        for (unsigned i = 0; i < leaves; ++i) {
            leaf_funcs.push_back(makeFunc(
                name + "_leaf" + std::to_string(i), module, drawSize(),
                with_rare(drawPoolCalls(pool, 1 + rng_.nextUint(2),
                                        0.5))));
        }

        std::vector<FuncId> internal_funcs;
        for (unsigned i = 0; i < internals; ++i) {
            std::vector<PlannedCall> calls;
            unsigned fanout = 2 + static_cast<unsigned>(rng_.nextUint(3));
            for (unsigned c = 0; c < fanout; ++c) {
                PlannedCall call;
                call.candidates = {
                    leaf_funcs[rng_.nextUint(leaf_funcs.size())]};
                call.prob = static_cast<std::uint8_t>(
                    rng_.nextRange(55, 95));
                call.jitter = static_cast<std::uint8_t>(
                    profile_.callJitter);
                calls.push_back(std::move(call));
            }
            auto util_calls = drawPoolCalls(pool, 1 + rng_.nextUint(2),
                                            0.45);
            calls.insert(calls.end(), util_calls.begin(),
                         util_calls.end());
            internal_funcs.push_back(makeFunc(
                name + "_node" + std::to_string(i), module, drawSize(),
                with_rare(std::move(calls))));
        }

        // Root: prologue internals + per-row loop over a subset.
        std::vector<PlannedCall> calls;
        for (unsigned i = 0; i < internal_funcs.size(); ++i) {
            PlannedCall call;
            call.candidates = {internal_funcs[i]};
            call.prob = static_cast<std::uint8_t>(
                rng_.nextRange(60, 100));
            call.jitter = static_cast<std::uint8_t>(profile_.callJitter);
            // Roughly a third of the internal nodes form the per-row
            // work in heavy stages.
            call.inLoop = heavy && (i % 3 == 0);
            calls.push_back(std::move(call));
        }
        LoopPlan loop;
        loop.enabled = heavy;
        loop.meanIter = static_cast<std::uint16_t>(
            (profile_.rowsMin + profile_.rowsMax) / 2);
        return makeFunc(name + "_root", module, drawSize(),
                        std::move(calls), loop);
    }

    /** All stages: routines plus the per-stage indirect dispatcher. */
    void
    buildStages(BuiltApp &app)
    {
        fatalIf(profile_.routinesPerStage.size() != profile_.numStages,
                profile_.name + ": routinesPerStage size mismatch");
        app.stageRoutines.resize(profile_.numStages);
        for (unsigned s = 0; s < profile_.numStages; ++s) {
            std::uint16_t module =
                static_cast<std::uint16_t>(kModStagesBase + s);
            unsigned n_routines = profile_.routinesPerStage[s];
            // Middle stages do the heavy per-row work.
            bool heavy = s > 0 && s + 1 < profile_.numStages;

            for (unsigned r = 0; r < n_routines; ++r) {
                app.stageRoutines[s].push_back(buildRoutine(
                    "s" + std::to_string(s) + "_r" + std::to_string(r),
                    module, heavy, utils_, profile_.funcsPerRoutine));
            }

            // Dispatcher: glue plus one indirect call that diverges
            // into the routines (the Bundle divergence point).
            std::vector<PlannedCall> calls = drawUtilCalls(2, 0.5);
            PlannedCall dispatch;
            dispatch.candidates = app.stageRoutines[s];
            dispatch.prob = 100;
            dispatch.jitter = 0;
            dispatch.indirect = app.stageRoutines[s].size() > 1;
            calls.push_back(std::move(dispatch));
            app.dispatchers.push_back(makeFunc(
                "stage" + std::to_string(s) + "_dispatch", module,
                drawSize() / 2 + 24, std::move(calls)));
        }
    }

    /** The per-request driver: calls each dispatcher in order. */
    void
    buildDriver(BuiltApp &app)
    {
        std::vector<PlannedCall> calls;
        for (unsigned s = 0; s < profile_.numStages; ++s) {
            // Framework glue before each stage.
            auto glue = drawUtilCalls(1, 0.6);
            calls.insert(calls.end(), glue.begin(), glue.end());

            PlannedCall stage;
            stage.candidates = {app.dispatchers[s]};
            stage.prob = 100;
            calls.push_back(std::move(stage));

            if (profile_.irqProbPercent > 0 && !app.irqRoutines.empty()) {
                PlannedCall irq;
                irq.candidates = {app.irqRoutines[
                    rng_.nextUint(app.irqRoutines.size())]};
                irq.prob = static_cast<std::uint8_t>(
                    profile_.irqProbPercent);
                irq.jitter = 50; // effectively random occurrence
                calls.push_back(std::move(irq));
            }
        }
        app.requestDriver = makeFunc("request_driver", kModDriver,
                                     drawSize(), std::move(calls));
    }

    /**
     * Cold library code: static call-graph mass that never executes.
     * Each library is a small tree whose root and large interior nodes
     * become static Bundles, matching the Table 4 function/Bundle
     * counts.
     */
    void
    buildColdLibraries()
    {
        // Each library mirrors the hot structure: a local helper pool,
        // several "feature" subtrees (the divergence branches Algorithm
        // 1 discovers), and a library root. These never execute — they
        // exist so the static call graph has the function/Bundle mass
        // of a real server binary (Table 4).
        std::uint16_t module = static_cast<std::uint16_t>(
            kModStagesBase + profile_.numStages);
        for (unsigned lib = 0; lib < profile_.coldLibraries; ++lib) {
            std::uint16_t lib_module =
                static_cast<std::uint16_t>(module + lib);
            std::string prefix = "lib" + std::to_string(lib);

            auto pool = buildPool(prefix + "_h", lib_module,
                                  profile_.coldPoolFuncs);
            // Cold code links against the shared runtime too; these
            // edges give cold features realistic reachable sizes.
            pool.insert(pool.end(), utils_.begin(), utils_.end());

            unsigned n_features = std::max(1u,
                profile_.featuresPerColdLibrary / 2 +
                static_cast<unsigned>(rng_.nextUint(
                    profile_.featuresPerColdLibrary + 1)));
            std::vector<PlannedCall> root_calls;
            for (unsigned f = 0; f < n_features; ++f) {
                FuncId feature = buildRoutine(
                    prefix + "_feat" + std::to_string(f), lib_module,
                    /*heavy=*/false, pool, profile_.funcsPerColdFeature);
                PlannedCall call;
                call.candidates = {feature};
                call.prob = 70;
                root_calls.push_back(std::move(call));
            }
            makeFunc(prefix + "_root", lib_module, drawSize(),
                     std::move(root_calls));
        }
    }

    const AppProfile &profile_;
    Rng rng_;
    Program program_;
    std::vector<FuncId> utils_;
};

} // namespace

std::shared_ptr<const BuiltApp>
ProgramBuilder::build(const AppProfile &profile)
{
    BuilderImpl impl(profile);
    auto app = std::make_shared<BuiltApp>(impl.build());
    return app;
}

std::shared_ptr<const BuiltApp>
ProgramBuilder::cached(const AppProfile &profile)
{
    // The cache stores futures so that concurrent first requests for
    // the same binary block on one build, while different binaries
    // build in parallel (the builder itself runs outside the lock).
    using AppPtr = std::shared_ptr<const BuiltApp>;
    static std::mutex mutex;
    static std::map<std::string, std::shared_future<AppPtr>> cache;

    std::shared_ptr<std::promise<AppPtr>> promise;
    std::shared_future<AppPtr> future;
    {
        std::lock_guard<std::mutex> lock(mutex);
        auto it = cache.find(profile.binary);
        if (it != cache.end()) {
            future = it->second;
        } else {
            promise = std::make_shared<std::promise<AppPtr>>();
            future = promise->get_future().share();
            cache.emplace(profile.binary, future);
        }
    }

    if (promise) {
        try {
            promise->set_value(build(profile));
        } catch (...) {
            promise->set_exception(std::current_exception());
            throw;
        }
    }
    return future.get();
}

} // namespace hp
