#include "workload/request_engine.hh"

#include "util/serialize.hh"

#include <algorithm>

#include "util/hash.hh"
#include "util/logging.hh"

namespace hp
{

RequestEngine::RequestEngine(std::shared_ptr<const BuiltApp> app,
                             const AppProfile &profile)
    : app_(std::move(app)),
      profile_(profile),
      rng_(profile.requestSeed),
      typeSampler_(profile.requestTypes, profile.typeZipfTheta)
{
    fatalIf(app_ == nullptr, "RequestEngine needs a built app");
    for (std::size_t s = 0; s < app_->dispatchers.size(); ++s) {
        dispatcherStage_[app_->dispatchers[s]] =
            static_cast<std::uint16_t>(s);
    }
}

void
RequestEngine::pushFrame(FuncId func, Addr return_addr)
{
    Frame frame;
    frame.func = func;
    frame.returnAddr = return_addr;
    frames_.push_back(std::move(frame));

    auto it = dispatcherStage_.find(func);
    if (it != dispatcherStage_.end()) {
        pendingMarker_ = StreamMarker::StageBegin;
        pendingMarkerArg_ = it->second;
    }
}

void
RequestEngine::startRequest()
{
    requestType_ = static_cast<unsigned>(typeSampler_.sample(rng_));
    ++stats_.requests;
    pushFrame(app_->requestDriver, 0);
    pendingMarker_ = StreamMarker::RequestBegin;
    pendingMarkerArg_ = static_cast<std::uint16_t>(requestType_);
}

bool
RequestEngine::decide(Addr pc, unsigned bias, unsigned jitter)
{
    // Most sites have an outcome stable across every execution of the
    // containing functionality; a profile-controlled fraction also
    // depends on the request type (e.g. insert vs update paths inside
    // shared code). A small per-evaluation jitter injects the paper's
    // intra-Bundle control-flow variation.
    std::uint64_t salt = 0;
    if ((mix64(pc * 0x5851f42d4c957f2dULL) % 100) <
        profile_.typeSensitivePercent) {
        salt = std::uint64_t(requestType_) + 1;
    }
    bool stable =
        (mix64(pc ^ (salt * 0x9e3779b97f4a7c15ULL)) % 100) < bias;
    if (jitter > 0 && rng_.nextBool(jitter / 100.0))
        return !stable;
    return stable;
}

void
RequestEngine::seek(Frame &frame, std::uint32_t slot)
{
    const auto &body = app_->program.func(frame.func).body;
    // Binary search for the op containing `slot`.
    std::size_t lo = 0, hi = body.size();
    while (lo + 1 < hi) {
        std::size_t mid = (lo + hi) / 2;
        if (body[mid].offset <= slot)
            lo = mid;
        else
            hi = mid;
    }
    frame.opIdx = static_cast<std::uint32_t>(lo);
    frame.intraRun = (body[lo].kind == OpKind::Run)
        ? slot - body[lo].offset : 0;
}

bool
RequestEngine::next(DynInst &inst)
{
    if (frames_.empty())
        startRequest();

    Frame &frame = frames_.back();
    const Function &fn = app_->program.func(frame.func);
    const BodyOp &op = fn.body[frame.opIdx];

    inst = DynInst{};
    inst.func = frame.func;
    if (pendingMarker_ != StreamMarker::None) {
        inst.marker = pendingMarker_;
        inst.markerArg = pendingMarkerArg_;
        pendingMarker_ = StreamMarker::None;
    }

    switch (op.kind) {
      case OpKind::Run: {
        inst.pc = fn.instAddr(op.offset + frame.intraRun);
        inst.kind = InstKind::Plain;
        if (++frame.intraRun >= op.length) {
            frame.intraRun = 0;
            ++frame.opIdx;
        }
        break;
      }

      case OpKind::Branch: {
        Addr pc = fn.instAddr(op.offset);
        bool taken = decide(pc, op.biasTaken, op.jitter);
        inst.pc = pc;
        inst.kind = InstKind::CondBranch;
        inst.taken = taken;
        inst.target = fn.instAddr(op.offset + 1 + op.span);
        ++stats_.condBranches;
        if (taken)
            seek(frame, op.offset + 1 + op.span);
        else
            ++frame.opIdx;
        break;
      }

      case OpKind::Loop: {
        Addr pc = fn.instAddr(op.offset);
        auto it = std::find_if(
            frame.loops.begin(), frame.loops.end(),
            [&frame](const LoopState &ls) {
                return ls.opIdx == frame.opIdx;
            });
        if (it == frame.loops.end()) {
            // First arrival: trip counts are stable per site (data
            // structures have characteristic sizes), deviating only
            // occasionally — so loop exits are learnable by TAGE, as
            // in real code.
            std::uint16_t mean = std::max<std::uint16_t>(op.meanIter, 1);
            std::uint32_t lo = std::max<std::uint32_t>(1,
                mean - mean / 3);
            std::uint32_t hi = mean + mean / 3;
            std::uint32_t span_i = hi - lo + 1;
            std::uint32_t trips = lo + static_cast<std::uint32_t>(
                mix64(pc * 0x9e3779b97f4a7c15ULL) % span_i);
            if (rng_.nextBool(0.10)) {
                trips += (rng_.nextBool(0.5) && trips > lo) ? -1 : 1;
            }
            LoopState ls;
            ls.opIdx = frame.opIdx;
            ls.remaining = static_cast<std::uint16_t>(trips);
            frame.loops.push_back(ls);
            it = frame.loops.end() - 1;
        }
        inst.pc = pc;
        inst.kind = InstKind::CondBranch;
        inst.target = fn.instAddr(op.offset - op.span);
        ++stats_.condBranches;
        if (it->remaining > 0) {
            --it->remaining;
            inst.taken = true;
            seek(frame, op.offset - op.span);
        } else {
            inst.taken = false;
            frame.loops.erase(it);
            ++frame.opIdx;
        }
        break;
      }

      case OpKind::CallSite: {
        Addr pc = fn.instAddr(op.offset);
        bool execute = decide(pc, op.execProb, op.execJitter) &&
                       frames_.size() < kMaxDepth;
        ++frame.opIdx;
        if (!execute) {
            // The guard skipped the call; the slot still executes as a
            // (not-taken) test instruction.
            inst.pc = pc;
            inst.kind = InstKind::Plain;
            break;
        }
        const auto &candidates = fn.targets[op.targetIdx].candidates;
        std::size_t pick = 0;
        if (candidates.size() > 1) {
            pick = static_cast<std::size_t>(
                mix64(pc ^ (std::uint64_t(requestType_) *
                            0xc2b2ae3d27d4eb4fULL)) %
                candidates.size());
        }
        FuncId callee = candidates[pick];
        inst.pc = pc;
        inst.kind = op.indirect ? InstKind::IndirectCall : InstKind::Call;
        inst.taken = true;
        inst.target = app_->program.func(callee).addr;
        inst.tagged = app_->image.tags.isTagged(pc);
        ++stats_.calls;
        if (inst.tagged)
            ++stats_.taggedInsts;
        pushFrame(callee, pc + kInstBytes);
        break;
      }

      case OpKind::Ret: {
        Addr pc = fn.instAddr(op.offset);
        inst.pc = pc;
        inst.kind = InstKind::Return;
        inst.taken = true;
        inst.target = frame.returnAddr;
        inst.tagged = app_->image.tags.isTagged(pc);
        ++stats_.returns;
        if (inst.tagged)
            ++stats_.taggedInsts;
        frames_.pop_back();
        if (frames_.empty()) {
            // Request complete; target of the final return is the
            // next request's first instruction. Patch it to the
            // driver entry so control flow stays well-formed.
            inst.target = app_->program.func(app_->requestDriver).addr;
        }
        break;
      }
    }

    ++stats_.instructions;
    return true;
}

template <class Ar>
void
RequestEngine::serializeState(Ar &ar)
{
    rng_.serializeState(ar);
    io(ar, frames_);
    io(ar, requestType_);
    io(ar, pendingMarker_);
    io(ar, pendingMarkerArg_);
    io(ar, stats_.instructions);
    io(ar, stats_.requests);
    io(ar, stats_.calls);
    io(ar, stats_.returns);
    io(ar, stats_.condBranches);
    io(ar, stats_.taggedInsts);
}

template void RequestEngine::serializeState(StateWriter &);
template void RequestEngine::serializeState(StateLoader &);

} // namespace hp
