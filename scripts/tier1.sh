#!/usr/bin/env bash
# Tier-1 verification flow, plus the sanitizer passes.
#
# Stage 1 is exactly the ROADMAP tier-1 command: configure, build,
# ctest in build/. Stage 2 rebuilds everything with HP_SANITIZE=address
# into build-asan/ and reruns the full suite under ASan, so memory
# errors in the simulator, the checkpoint restore path, and the tests
# themselves fail CI rather than silently corrupting results. Stage 3
# does the same with HP_SANITIZE=undefined into build-ubsan/ so
# undefined behaviour (shift overflows, misaligned loads in the event
# ring and serializers, enum abuse) is caught too.
#
# Usage: scripts/tier1.sh [--asan-only|--ubsan-only|--no-sanitizers]

set -euo pipefail
cd "$(dirname "$0")/.."

run_stage() {
    local dir="$1"; shift
    cmake -B "$dir" -S . "$@"
    cmake --build "$dir" -j
    (cd "$dir" && ctest --output-on-failure -j)
}

stage="${1:-}"

if [[ "$stage" != "--asan-only" && "$stage" != "--ubsan-only" ]]; then
    run_stage build
fi

if [[ "$stage" != "--no-sanitizers" && "$stage" != "--ubsan-only" ]]; then
    run_stage build-asan -DHP_SANITIZE=address
fi

if [[ "$stage" != "--no-sanitizers" && "$stage" != "--asan-only" ]]; then
    # Abort on the first UBSan diagnostic instead of printing and
    # continuing, so ctest actually fails.
    UBSAN_OPTIONS="halt_on_error=1:print_stacktrace=1" \
        run_stage build-ubsan -DHP_SANITIZE=undefined
fi

echo "tier1: all stages passed"
