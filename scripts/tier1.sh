#!/usr/bin/env bash
# Tier-1 verification flow, plus the AddressSanitizer pass.
#
# Stage 1 is exactly the ROADMAP tier-1 command: configure, build,
# ctest in build/. Stage 2 rebuilds everything with HP_SANITIZE=address
# into build-asan/ and reruns the full suite under ASan, so memory
# errors in the simulator, the checkpoint restore path, and the tests
# themselves fail CI rather than silently corrupting results.
#
# Usage: scripts/tier1.sh [--asan-only|--no-asan]

set -euo pipefail
cd "$(dirname "$0")/.."

run_stage() {
    local dir="$1"; shift
    cmake -B "$dir" -S . "$@"
    cmake --build "$dir" -j
    (cd "$dir" && ctest --output-on-failure -j)
}

stage="${1:-}"

if [[ "$stage" != "--asan-only" ]]; then
    run_stage build
fi

if [[ "$stage" != "--no-asan" ]]; then
    run_stage build-asan -DHP_SANITIZE=address
fi

echo "tier1: all stages passed"
