/**
 * @file
 * CI check for the stats pipeline: runs a small deterministic grid,
 * prints a text summary that is diffed against a checked-in golden
 * file, and (when `--json` is given, as in the ctest registration)
 * writes the machine-readable run report, reads it back and validates
 * the hp-stats-report-v1 schema plus the StatsSnapshot JSON
 * round-trip. Any drift in the stats plumbing fails this test.
 */

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_util.hh"

namespace
{

using namespace hp;

std::string
readFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    std::ostringstream out;
    out << in.rdbuf();
    return out.str();
}

bool
contains(const std::string &haystack, const char *needle)
{
    if (haystack.find(needle) != std::string::npos)
        return true;
    std::fprintf(stderr, "report is missing %s\n", needle);
    return false;
}

} // namespace

int
main(int argc, char **argv)
{
    hpbench::JsonReportScope report(argc, argv, "stats_report_check");
    std::string golden_path;
    for (int i = 1; i < argc; ++i) {
        if (std::strncmp(argv[i], "--golden=", 9) == 0)
            golden_path = argv[i] + 9;
    }

    std::vector<SimConfig> grid;
    for (PrefetcherKind kind :
         {PrefetcherKind::None, PrefetcherKind::Hierarchical}) {
        SimConfig config;
        config.workload = "caddy";
        config.warmupInsts = 150'000;
        config.measureInsts = 300'000;
        config.prefetcher = kind;
        grid.push_back(config);
    }
    std::vector<SimMetrics> runs = hpbench::runAll(grid);

    std::ostringstream text;
    text << "stats_report_check quick grid "
            "(caddy, 150k warmup + 300k measure)\n";
    text << "prefetcher cycles instructions l1i_misses ext_inserted\n";
    for (std::size_t i = 0; i < runs.size(); ++i) {
        const SimMetrics &m = runs[i];
        text << prefetcherName(grid[i].prefetcher) << " " << m.cycles
             << " " << m.instructions << " " << m.mem.demandL1Misses
             << " " << m.mem.ext.inserted << "\n";
    }
    std::fputs(text.str().c_str(), stdout);

    bool ok = true;

    if (!golden_path.empty()) {
        const std::string golden = readFile(golden_path);
        if (golden.empty()) {
            std::fprintf(stderr, "cannot read golden file %s\n",
                         golden_path.c_str());
            ok = false;
        } else if (golden != text.str()) {
            std::fprintf(stderr,
                         "summary drifted from golden %s\n"
                         "---- golden ----\n%s"
                         "---- measured ----\n%s",
                         golden_path.c_str(), golden.c_str(),
                         text.str().c_str());
            ok = false;
        }
    }

    // Every run's snapshot must survive a JSON round-trip unchanged.
    for (const SimMetrics &m : runs) {
        const StatsSnapshot parsed =
            StatsSnapshot::fromJson(m.stats.toJson());
        if (parsed.entries() != m.stats.entries()) {
            std::fprintf(stderr, "snapshot JSON round-trip drifted\n");
            ok = false;
        }
    }

    if (report.enabled()) {
        report.write();
        const std::string doc = readFile(report.path());
        for (const char *key :
             {"\"schema\": \"hp-stats-report-v1\"", "\"runs\"",
              "\"workload\": \"caddy\"", "\"prefetcher\": \"FDIP\"",
              "\"prefetcher\": \"Hierarchical\"", "\"config_key\"",
              "\"stats\"", "\"l1i.demand_misses\"",
              "\"hier.metadata_read_bytes\"", "\"derived\"",
              "\"ipc\"", "\"total_dram_bytes\""}) {
            ok = contains(doc, key) && ok;
        }
    } else {
        std::fprintf(stderr, "note: run with --json to exercise the "
                             "report writer\n");
    }

    std::fprintf(stderr, "stats_report_check: %s\n",
                 ok ? "OK" : "FAILED");
    return ok ? 0 : 1;
}
