/**
 * @file
 * Figure 2 — the look-ahead studies of the fine-grained prefetchers:
 * (a) MANA accuracy/coverage vs look-ahead spatial regions (paper:
 *     coverage stops improving past ~4 regions, accuracy declines);
 * (b) EFetch accuracy/coverage vs look-ahead callees (paper: coverage
 *     saturates past ~7 calls, accuracy declines);
 * (c) EIP accuracy grouped by observed prefetch distance (paper:
 *     accuracy declines with distance).
 */

#include <cstdio>

#include "bench_util.hh"

namespace
{

using namespace hp;

SimConfig
sweepConfig(PrefetcherKind kind, const std::string &workload,
            unsigned lookahead)
{
    SimConfig config = defaultConfig(workload, kind);
    config.mana.lookahead = lookahead;
    config.efetch.lookahead = lookahead;
    return config;
}

void
sweep(const char *title, PrefetcherKind kind,
      const std::vector<unsigned> &lookaheads)
{
    // Full sweep grid (lookaheads x workloads) submitted up front.
    std::vector<SimConfig> grid;
    for (unsigned la : lookaheads)
        for (const std::string &workload : allWorkloads())
            grid.push_back(sweepConfig(kind, workload, la));
    std::vector<RunPair> pairs = hpbench::runPairs(grid);

    AsciiTable table(title);
    table.setHeader({"look-ahead", "accuracy", "coverage(L1)",
                     "avg distance"});
    std::size_t next = 0;
    for (unsigned la : lookaheads) {
        std::vector<double> acc, cov, dist;
        for (std::size_t w = 0; w < allWorkloads().size(); ++w) {
            const RunPair &pair = pairs[next++];
            acc.push_back(pair.paired.accuracy);
            cov.push_back(pair.paired.coverageL1);
            dist.push_back(pair.paired.avgDistance);
        }
        table.addRow({std::to_string(la),
                      fmtPercent(hpbench::mean(acc)),
                      fmtPercent(hpbench::mean(cov)),
                      fmtDouble(hpbench::mean(dist), 1)});
    }
    std::fputs(table.render().c_str(), stdout);
    std::printf("\n");
}

} // namespace

int
main(int argc, char **argv)
{
    hpbench::JsonReportScope report(argc, argv, "fig02_lookahead_sweep");
    sweep("Figure 2a: MANA look-ahead (spatial regions)",
          PrefetcherKind::Mana, {1, 2, 3, 4, 6, 8, 16});
    sweep("Figure 2b: EFetch look-ahead (callees)",
          PrefetcherKind::EFetch, {1, 2, 3, 5, 7, 10, 16});

    // (c) EIP accuracy by distance bin, averaged over apps.
    AsciiTable table("Figure 2c: EIP accuracy vs prefetch distance");
    table.setHeader({"distance (blocks)", "accuracy", "samples"});
    std::vector<std::uint64_t> useful(HierarchyStats::kDistanceBins, 0);
    std::vector<std::uint64_t> unused(HierarchyStats::kDistanceBins, 0);
    std::vector<SimConfig> eip_grid;
    for (const std::string &workload : allWorkloads())
        eip_grid.push_back(defaultConfig(workload, PrefetcherKind::Eip));
    for (const SimMetrics &m : hpbench::runAll(eip_grid)) {
        for (unsigned b = 0; b < HierarchyStats::kDistanceBins; ++b) {
            useful[b] += m.mem.extDistUseful[b];
            unused[b] += m.mem.extDistUnused[b];
        }
    }
    for (unsigned b = 0; b < HierarchyStats::kDistanceBins; ++b) {
        std::uint64_t total = useful[b] + unused[b];
        if (total < 50)
            continue;
        std::string range = "[" + std::to_string(1u << b) + "," +
                            std::to_string(1u << (b + 1)) + ")";
        table.addRow({range,
                      fmtPercent(double(useful[b]) / double(total)),
                      std::to_string(total)});
    }
    std::fputs(table.render().c_str(), stdout);

    hpbench::paperFooter(
        "Fig2",
        "all three prefetchers lose accuracy as look-ahead/distance "
        "grows; MANA coverage saturates past ~4 regions, EFetch past "
        "~7 calls",
        "see tables above: accuracy decline and coverage saturation "
        "with look-ahead");
    return 0;
}
