/**
 * @file
 * Figure 13 — Hierarchical Prefetching speedup sensitivity to (a) the
 * Metadata Address Table size and (b) the in-memory Metadata Buffer
 * size. Paper: gains saturate at 512 entries / 512 KB, justifying the
 * default configuration.
 */

#include <cstdio>

#include "bench_util.hh"

namespace
{

using namespace hp;

double
meanSpeedup(unsigned mat_entries, std::uint64_t buffer_bytes)
{
    std::vector<double> speedups;
    for (const std::string &workload : allWorkloads()) {
        SimConfig config =
            defaultConfig(workload, PrefetcherKind::Hierarchical);
        config.hier.matEntries = mat_entries;
        config.hier.metadataBufferBytes = buffer_bytes;
        speedups.push_back(
            ExperimentRunner::runPair(config).paired.speedup);
    }
    return hpbench::mean(speedups);
}

} // namespace

int
main()
{
    // The synthetic binaries are ~10x smaller than the paper's (see
    // EXPERIMENTS.md), so their dynamically-hot Bundle population is
    // ~10x smaller too; the sweep extends below the paper's range so
    // the capacity knee is visible at this scale.
    AsciiTable table_a(
        "Figure 13a: speedup vs Metadata Address Table entries "
        "(512KB buffer)");
    table_a.setHeader({"entries", "avg speedup"});
    for (unsigned entries : {8u, 16u, 32u, 64u, 128u, 512u, 2048u}) {
        table_a.addRow({std::to_string(entries),
                        fmtPercent(meanSpeedup(entries, 512 * 1024))});
    }
    std::fputs(table_a.render().c_str(), stdout);
    std::printf("\n");

    AsciiTable table_b(
        "Figure 13b: speedup vs Metadata Buffer size (512-entry "
        "table)");
    table_b.setHeader({"buffer", "avg speedup"});
    for (std::uint64_t kb : {4u, 8u, 16u, 32u, 64u, 512u, 2048u}) {
        table_b.addRow({std::to_string(kb) + "KB",
                        fmtPercent(meanSpeedup(512, kb * 1024))});
    }
    std::fputs(table_b.render().c_str(), stdout);

    hpbench::paperFooter(
        "Fig13",
        "speedup saturates at 512 table entries and 512KB buffer",
        "see tables: beyond the capacity knee, bigger metadata "
        "structures buy nothing (the knee sits ~10x lower here "
        "because the binaries are ~10x smaller)");
    return 0;
}
