/**
 * @file
 * Figure 13 — Hierarchical Prefetching speedup sensitivity to (a) the
 * Metadata Address Table size and (b) the in-memory Metadata Buffer
 * size. Paper: gains saturate at 512 entries / 512 KB, justifying the
 * default configuration.
 */

#include <cstdio>

#include "bench_util.hh"

namespace
{

using namespace hp;

/** One sweep point: configs for every workload at these settings. */
std::vector<SimConfig>
pointConfigs(unsigned mat_entries, std::uint64_t buffer_bytes)
{
    std::vector<SimConfig> configs;
    for (const std::string &workload : allWorkloads()) {
        SimConfig config =
            defaultConfig(workload, PrefetcherKind::Hierarchical);
        config.hier.matEntries = mat_entries;
        config.hier.metadataBufferBytes = buffer_bytes;
        configs.push_back(std::move(config));
    }
    return configs;
}

double
meanSpeedup(const std::vector<RunPair> &pairs, std::size_t &next)
{
    std::vector<double> speedups;
    for (std::size_t w = 0; w < allWorkloads().size(); ++w)
        speedups.push_back(pairs[next++].paired.speedup);
    return hpbench::mean(speedups);
}

} // namespace

int
main(int argc, char **argv)
{
    hpbench::JsonReportScope report(argc, argv, "fig13_metadata_sensitivity");
    // The synthetic binaries are ~10x smaller than the paper's (see
    // EXPERIMENTS.md), so their dynamically-hot Bundle population is
    // ~10x smaller too; the sweep extends below the paper's range so
    // the capacity knee is visible at this scale.
    const std::vector<unsigned> mat_sweep = {8, 16, 32, 64, 128, 512,
                                             2048};
    const std::vector<unsigned> buf_sweep_kb = {4,  8,   16,  32,
                                                64, 512, 2048};

    // Both sweeps form one grid, submitted up front (shared points —
    // e.g. 512 entries / 512KB — are deduplicated by the runner).
    std::vector<SimConfig> grid;
    for (unsigned entries : mat_sweep)
        for (SimConfig &c : pointConfigs(entries, 512 * 1024))
            grid.push_back(std::move(c));
    for (unsigned kb : buf_sweep_kb)
        for (SimConfig &c : pointConfigs(512, std::uint64_t(kb) * 1024))
            grid.push_back(std::move(c));
    std::vector<RunPair> pairs = hpbench::runPairs(grid);
    std::size_t next = 0;

    AsciiTable table_a(
        "Figure 13a: speedup vs Metadata Address Table entries "
        "(512KB buffer)");
    table_a.setHeader({"entries", "avg speedup"});
    for (unsigned entries : mat_sweep) {
        table_a.addRow({std::to_string(entries),
                        fmtPercent(meanSpeedup(pairs, next))});
    }
    std::fputs(table_a.render().c_str(), stdout);
    std::printf("\n");

    AsciiTable table_b(
        "Figure 13b: speedup vs Metadata Buffer size (512-entry "
        "table)");
    table_b.setHeader({"buffer", "avg speedup"});
    for (unsigned kb : buf_sweep_kb) {
        table_b.addRow({std::to_string(kb) + "KB",
                        fmtPercent(meanSpeedup(pairs, next))});
    }
    std::fputs(table_b.render().c_str(), stdout);

    hpbench::paperFooter(
        "Fig13",
        "speedup saturates at 512 table entries and 512KB buffer",
        "see tables: beyond the capacity knee, bigger metadata "
        "structures buy nothing (the knee sits ~10x lower here "
        "because the binaries are ~10x smaller)");
    return 0;
}
