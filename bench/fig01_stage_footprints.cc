/**
 * @file
 * Figure 1 — instruction working set of each processing stage in the
 * life cycle of a TiDB statement under TPC-C. The paper reports
 * per-stage footprints of 40-280 KB measured in accessed instruction
 * cache blocks.
 *
 * This bench drives the workload engine directly (no timing needed):
 * StageBegin markers delimit stages; each stage occurrence's footprint
 * is the set of unique blocks touched until the next marker.
 */

#include <cstdio>
#include <unordered_set>

#include "bench_util.hh"
#include "stats/histogram.hh"
#include "workload/request_engine.hh"

int
main(int argc, char **argv)
{
    hpbench::JsonReportScope report(argc, argv, "fig01_stage_footprints");
    using namespace hp;

    const std::string workload = "tidb-tpcc";
    const AppProfile &profile = appProfile(workload);
    auto app = ProgramBuilder::cached(profile);
    RequestEngine engine(app, profile);

    constexpr std::uint64_t kInsts = 4'000'000;

    std::vector<Accumulator> stage_blocks(profile.numStages);
    int current_stage = -1;
    std::unordered_set<Addr> footprint;

    auto close_stage = [&]() {
        if (current_stage >= 0 && !footprint.empty()) {
            stage_blocks[current_stage].sample(
                double(footprint.size()));
        }
        footprint.clear();
    };

    DynInst inst;
    for (std::uint64_t i = 0; i < kInsts && engine.next(inst); ++i) {
        if (inst.marker == StreamMarker::StageBegin) {
            close_stage();
            current_stage = inst.markerArg;
        } else if (inst.marker == StreamMarker::RequestBegin) {
            close_stage();
            current_stage = -1;
        }
        if (current_stage >= 0)
            footprint.insert(blockAlign(inst.pc));
    }
    close_stage();

    // TiDB statement stages (the 7-stage pipeline of the tidb profile).
    const char *names[] = {"Read", "Dispatch", "Compile", "Optimize",
                           "Exec", "Commit", "Finish"};

    AsciiTable table(
        "Figure 1: TiDB/TPC-C per-stage instruction footprints");
    table.setHeader({"stage", "avg footprint", "occurrences"});
    double min_kb = 1e18, max_kb = 0.0;
    for (unsigned s = 0; s < profile.numStages; ++s) {
        double kb = stage_blocks[s].mean() * kBlockBytes / 1024.0;
        min_kb = std::min(min_kb, kb);
        max_kb = std::max(max_kb, kb);
        table.addRow({names[s], fmtDouble(kb, 1) + "KB",
                      std::to_string(stage_blocks[s].count())});
    }
    std::fputs(table.render().c_str(), stdout);

    hpbench::paperFooter(
        "Fig1", "stage footprints range from 40KB to 280KB",
        "stage footprints range from " + fmtDouble(min_kb, 0) +
            "KB to " + fmtDouble(max_kb, 0) + "KB");
    return 0;
}
