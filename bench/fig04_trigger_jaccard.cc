/**
 * @file
 * Figure 4 — average similarity (Jaccard index) between the footprints
 * following adjacent occurrences of the same trigger, as the footprint
 * size grows from 16 to 512 cache blocks. The paper shows all
 * fine-grained trigger definitions dropping below 0.5 by 64 blocks,
 * while Bundles stay above 0.8 (Table 4) — the motivation for
 * coarse-grained prefetching.
 */

#include <cstdio>

#include "bench_util.hh"
#include "sim/footprint_probe.hh"
#include "workload/request_engine.hh"

int
main(int argc, char **argv)
{
    hpbench::JsonReportScope report(argc, argv, "fig04_trigger_jaccard");
    using namespace hp;

    constexpr std::uint64_t kInsts = 2'000'000;

    const TriggerKind kinds[] = {TriggerKind::Signature,
                                 TriggerKind::BlockAddress,
                                 TriggerKind::Bundle};
    const char *names[] = {"signature (EFetch-like)",
                           "block/region (MANA/EIP-like)",
                           "Bundle (this work)"};

    // Per trigger kind, per footprint size: mean over workloads.
    std::vector<std::vector<double>> sums(
        3, std::vector<double>(kFootprintSizes.size(), 0.0));
    std::vector<std::vector<unsigned>> counts(
        3, std::vector<unsigned>(kFootprintSizes.size(), 0));

    for (const std::string &workload : allWorkloads()) {
        const AppProfile &profile = appProfile(workload);
        auto app = ProgramBuilder::cached(profile);
        RequestEngine engine(app, profile);

        FootprintProbe probes[3] = {
            FootprintProbe(kinds[0]), FootprintProbe(kinds[1]),
            FootprintProbe(kinds[2], /*sample_period=*/1)};

        DynInst inst;
        for (std::uint64_t i = 0; i < kInsts && engine.next(inst);
             ++i) {
            for (auto &probe : probes)
                probe.onCommit(inst);
        }

        for (auto &probe : probes)
            probe.finalize();

        for (unsigned k = 0; k < 3; ++k) {
            for (std::size_t s = 0; s < kFootprintSizes.size(); ++s) {
                double j = probes[k].meanJaccard(s);
                if (j > 0.0) {
                    sums[k][s] += j;
                    ++counts[k][s];
                }
            }
        }
    }

    AsciiTable table(
        "Figure 4: footprint similarity after the same trigger");
    std::vector<std::string> header = {"trigger"};
    for (unsigned size : kFootprintSizes)
        header.push_back(std::to_string(size) + " blk");
    table.setHeader(header);

    for (unsigned k = 0; k < 3; ++k) {
        std::vector<std::string> row = {names[k]};
        for (std::size_t s = 0; s < kFootprintSizes.size(); ++s) {
            double v = counts[k][s]
                ? sums[k][s] / counts[k][s] : 0.0;
            row.push_back(fmtDouble(v, 2));
        }
        table.addRow(row);
    }
    std::fputs(table.render().c_str(), stdout);

    hpbench::paperFooter(
        "Fig4",
        "fine-grained triggers fall below 0.5 Jaccard by 64 blocks; "
        "EFetch-style signatures are the most contextual of the three",
        "see table: similarity vs footprint size per trigger kind");
    return 0;
}
