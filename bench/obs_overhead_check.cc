/**
 * @file
 * CI check for the observability layer's two core guarantees:
 *
 *  1. Zero interference. Running the identical config with tracing,
 *     time-series sampling, and miss attribution all enabled must
 *     leave every architectural counter — cycles, instructions, and
 *     the whole stats registry outside `missAttribution.*` — exactly
 *     equal to the obs-off run. Observability observes; it never
 *     steers.
 *
 *  2. The attribution partition. With attribution on, the
 *     `missAttribution.*` cause classes must sum to exactly
 *     `l1i.demand_misses` (and `wrong_path` stays structurally zero);
 *     with it off the classes must all read zero while the registry
 *     paths still exist.
 *
 * It also smoke-checks the writers: the Perfetto JSON must be
 * structurally valid (balanced, with the expected metadata and span
 * records) and the time-series CSV must carry the documented header
 * and well-formed rows for every run.
 *
 * Simulators are constructed directly (not through the executor) so
 * the obs-on runs cannot be served from the run-memo cache.
 */

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_util.hh"
#include "obs/miss_attribution.hh"
#include "sim/simulator.hh"

namespace
{

using namespace hp;

bool g_ok = true;

void
check(bool cond, const std::string &what)
{
    if (!cond) {
        std::fprintf(stderr, "FAIL: %s\n", what.c_str());
        g_ok = false;
    }
}

std::string
readFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    std::ostringstream out;
    out << in.rdbuf();
    return out.str();
}

SimConfig
quickConfig(PrefetcherKind kind)
{
    SimConfig config;
    config.workload = "caddy";
    config.warmupInsts = 150'000;
    config.measureInsts = 300'000;
    config.prefetcher = kind;
    return config;
}

std::vector<SimMetrics>
runDirect(const std::vector<SimConfig> &grid)
{
    std::vector<SimMetrics> out;
    for (const SimConfig &config : grid) {
        Simulator sim(config);
        out.push_back(sim.run());
    }
    return out;
}

bool
isAttributionPath(const std::string &path)
{
    return path.rfind("missAttribution.", 0) == 0;
}

/** Balanced {}/[] outside of strings — cheap structural JSON check. */
bool
jsonBalanced(const std::string &text)
{
    long depth = 0;
    bool in_string = false;
    bool escaped = false;
    for (char c : text) {
        if (in_string) {
            if (escaped)
                escaped = false;
            else if (c == '\\')
                escaped = true;
            else if (c == '"')
                in_string = false;
            continue;
        }
        if (c == '"')
            in_string = true;
        else if (c == '{' || c == '[')
            ++depth;
        else if (c == '}' || c == ']') {
            if (--depth < 0)
                return false;
        }
    }
    return depth == 0 && !in_string;
}

std::size_t
countOccurrences(const std::string &text, const std::string &needle)
{
    std::size_t n = 0;
    for (std::size_t pos = text.find(needle);
         pos != std::string::npos; pos = text.find(needle, pos + 1))
        ++n;
    return n;
}

} // namespace

int
main()
{
    // A clean slate regardless of inherited HP_TRACE_JSON etc.: this
    // test owns the process-global config.
    obs::ObsConfig &ocfg = obs::config();
    ocfg = obs::ObsConfig{};
    obs::Collector::clear();

    const std::vector<SimConfig> grid = {
        quickConfig(PrefetcherKind::None),
        quickConfig(PrefetcherKind::Hierarchical),
    };

    // ---- Pass 1: everything off (the default). ----
    const std::vector<SimMetrics> off = runDirect(grid);

    for (const SimMetrics &m : off) {
        std::uint64_t attr_sum = 0;
        for (unsigned c = 0; c < kNumMissCauses; ++c) {
            const std::string path =
                std::string("missAttribution.") +
                missCauseName(static_cast<MissCause>(c));
            check(m.stats.has(path), "registry path missing: " + path);
            if (m.stats.has(path))
                attr_sum += m.stats.value(path);
        }
        check(attr_sum == 0,
              "attribution counted misses while disabled");
    }

    // ---- Pass 2: trace + time-series + attribution all on. ----
    const std::string trace_path = "obs_overhead_check.trace.json";
    const std::string ts_path = "obs_overhead_check.timeseries.csv";
    ocfg.tracePath = trace_path;
    ocfg.timeseriesPath = ts_path;
    ocfg.intervalInsts = 50'000;
    ocfg.traceCapacity = 1 << 16; // Bound the JSON; exercises dropping.
    const std::vector<SimMetrics> on = runDirect(grid);

    for (std::size_t i = 0; i < grid.size(); ++i) {
        const std::string who = grid[i].workload + "/" +
                                prefetcherName(grid[i].prefetcher);
        check(off[i].cycles == on[i].cycles,
              who + ": cycles drifted with obs on");
        check(off[i].instructions == on[i].instructions,
              who + ": instructions drifted with obs on");

        // Every architectural counter must match; only the
        // missAttribution subtree is allowed to change.
        check(off[i].stats.size() == on[i].stats.size(),
              who + ": registry shape drifted with obs on");
        for (const StatsSnapshot::Entry &e : off[i].stats.entries()) {
            if (isAttributionPath(e.first))
                continue;
            check(on[i].stats.has(e.first) &&
                      on[i].stats.value(e.first) == e.second,
                  who + ": stat drifted with obs on: " + e.first);
        }

        // The partition invariant: cause classes sum to exactly the
        // L1-I demand misses of the measurement phase.
        std::uint64_t attr_sum = 0;
        for (unsigned c = 0; c < kNumMissCauses; ++c) {
            attr_sum += on[i].stats.value(
                std::string("missAttribution.") +
                missCauseName(static_cast<MissCause>(c)));
        }
        const std::uint64_t misses =
            on[i].stats.value("l1i.demand_misses");
        check(attr_sum == misses,
              who + ": attribution sum " + std::to_string(attr_sum) +
                  " != l1i demand misses " + std::to_string(misses));
        check(on[i].stats.value("missAttribution.wrong_path") == 0,
              who + ": wrong_path must be structurally zero");
        check(misses > 0, who + ": expected a nonzero miss count");
    }

    // ---- Writers. ----
    obs::Collector::writeOutputs();

    const std::string trace = readFile(trace_path);
    check(!trace.empty(), "trace JSON missing or empty");
    check(jsonBalanced(trace), "trace JSON is structurally unbalanced");
    check(trace.find("\"traceEvents\"") != std::string::npos,
          "trace JSON lacks traceEvents");
    check(trace.find("\"process_name\"") != std::string::npos,
          "trace JSON lacks process_name metadata");
    check(trace.find("\"thread_name\"") != std::string::npos,
          "trace JSON lacks thread_name metadata");
    check(countOccurrences(trace, "\"ph\":\"X\"") > 0,
          "trace JSON has no span events");
    check(countOccurrences(trace, "\"ph\":\"i\"") > 0,
          "trace JSON has no instant events");

    const std::string csv = readFile(ts_path);
    std::istringstream lines(csv);
    std::string line;
    check(bool(std::getline(lines, line)), "time-series CSV is empty");
    check(line == "run,label,interval_insts,phase,insts,cycles,"
                  "d_insts,d_cycles,d_l1i_accesses,d_l1i_misses,"
                  "d_dram_bytes,d_metadata_bytes,ipc,l1i_mpki",
          "time-series CSV header drifted: " + line);
    std::size_t data_rows = 0;
    bool saw_measure = false, saw_warmup = false;
    while (std::getline(lines, line)) {
        if (line.empty())
            continue;
        ++data_rows;
        check(countOccurrences(line, ",") == 13,
              "malformed time-series row: " + line);
        if (line.find(",measure,") != std::string::npos)
            saw_measure = true;
        if (line.find(",warmup,") != std::string::npos)
            saw_warmup = true;
    }
    // 450k insts at 50k per sample: >= 9 rows per run, two runs.
    check(data_rows >= 2 * 9, "too few time-series rows");
    check(saw_warmup && saw_measure,
          "time-series must cover both warmup and measurement");
    check(csv.find("caddy/") != std::string::npos,
          "time-series rows lack run labels");

    std::fprintf(stderr, "obs_overhead_check: %s\n",
                 g_ok ? "OK" : "FAILED");
    return g_ok ? 0 : 1;
}
