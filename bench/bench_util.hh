/**
 * @file
 * Shared helpers for the table/figure benchmark harnesses: the standard
 * prefetcher lineup, geometric/arithmetic means, and the paper-vs-
 * measured footer each bench prints.
 */

#ifndef HP_BENCH_BENCH_UTIL_HH
#define HP_BENCH_BENCH_UTIL_HH

#include <cstdio>
#include <string>
#include <vector>

#include "sim/executor.hh"
#include "sim/runner.hh"
#include "stats/table.hh"
#include "workload/app_profile.hh"

namespace hpbench
{

/**
 * Runs every config's (run, FDIP-baseline) pair: the whole grid is
 * submitted to the global executor up front (HP_JOBS workers, default
 * hardware_concurrency) and collected in input order, so the output
 * is bit-identical to a serial sweep.
 */
inline std::vector<hp::RunPair>
runPairs(const std::vector<hp::SimConfig> &configs)
{
    return hp::Executor::global().runPairs(configs);
}

/** Same submission discipline for plain (unpaired) runs. */
inline std::vector<hp::SimMetrics>
runAll(const std::vector<hp::SimConfig> &configs)
{
    return hp::Executor::global().runAll(configs);
}

/** The four prefetchers every comparison figure sweeps. */
inline const std::vector<hp::PrefetcherKind> &
comparedPrefetchers()
{
    static const std::vector<hp::PrefetcherKind> kinds = {
        hp::PrefetcherKind::EFetch,
        hp::PrefetcherKind::Mana,
        hp::PrefetcherKind::Eip,
        hp::PrefetcherKind::Hierarchical,
    };
    return kinds;
}

/** Arithmetic mean of a vector (0 for empty). */
inline double
mean(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    double sum = 0.0;
    for (double v : values)
        sum += v;
    return sum / double(values.size());
}

/**
 * Prints the standard footer: what the paper reports for this
 * experiment and a reminder that shapes, not absolute numbers, are the
 * reproduction target (the substrate is a from-scratch simulator).
 */
inline void
paperFooter(const std::string &exp, const std::string &paper_result,
            const std::string &measured_result)
{
    std::printf("\n[%s] paper:    %s\n", exp.c_str(),
                paper_result.c_str());
    std::printf("[%s] measured: %s\n", exp.c_str(),
                measured_result.c_str());
    std::printf("(shape, not absolute numbers, is the reproduction "
                "target; see EXPERIMENTS.md)\n");
}

} // namespace hpbench

#endif // HP_BENCH_BENCH_UTIL_HH
