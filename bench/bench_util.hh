/**
 * @file
 * Shared helpers for the table/figure benchmark harnesses: the standard
 * prefetcher lineup, geometric/arithmetic means, the paper-vs-measured
 * footer each bench prints, and the opt-in JSON run-report scope
 * (`--json[=path]` flag or HP_STATS_JSON=path) that writes a
 * machine-readable stats document next to the unchanged text output.
 */

#ifndef HP_BENCH_BENCH_UTIL_HH
#define HP_BENCH_BENCH_UTIL_HH

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "obs/obs.hh"
#include "sim/executor.hh"
#include "sim/run_report.hh"
#include "sim/runner.hh"
#include "stats/table.hh"
#include "workload/app_profile.hh"

namespace hpbench
{

/**
 * Runs every config's (run, FDIP-baseline) pair: the whole grid is
 * submitted to the global executor up front (HP_JOBS workers, default
 * hardware_concurrency) and collected in input order, so the output
 * is bit-identical to a serial sweep.
 */
inline std::vector<hp::RunPair>
runPairs(const std::vector<hp::SimConfig> &configs)
{
    return hp::Executor::global().runPairs(configs);
}

/** Same submission discipline for plain (unpaired) runs. */
inline std::vector<hp::SimMetrics>
runAll(const std::vector<hp::SimConfig> &configs)
{
    return hp::Executor::global().runAll(configs);
}

/** The four prefetchers every comparison figure sweeps. */
inline const std::vector<hp::PrefetcherKind> &
comparedPrefetchers()
{
    static const std::vector<hp::PrefetcherKind> kinds = {
        hp::PrefetcherKind::EFetch,
        hp::PrefetcherKind::Mana,
        hp::PrefetcherKind::Eip,
        hp::PrefetcherKind::Hierarchical,
    };
    return kinds;
}

/** Arithmetic mean of a vector (0 for empty). */
inline double
mean(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    double sum = 0.0;
    for (double v : values)
        sum += v;
    return sum / double(values.size());
}

/**
 * Geometric mean of a vector (0 for empty). The right average for
 * ratios such as speedups; pass the ratio itself (1.0 = no change),
 * not the percent delta. Non-positive entries are a caller bug and
 * yield 0, never NaN.
 */
inline double
geomean(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    double log_sum = 0.0;
    for (double v : values) {
        if (v <= 0.0)
            return 0.0;
        log_sum += std::log(v);
    }
    return std::exp(log_sum / double(values.size()));
}

/**
 * Opt-in machine-readable outputs. Construct at the top of a bench's
 * main(), before any simulation runs:
 *
 *  - `--json[=path]` (or HP_STATS_JSON=path): record every run and
 *    write the hp-stats-report-v1 JSON document at scope exit
 *    (default path "<bench>.stats.json");
 *  - `--trace-json[=path]` (or HP_TRACE_JSON=path): capture trace
 *    events from every run and write one Perfetto/Chrome-loadable
 *    trace at scope exit (default "<bench>.trace.json");
 *  - `--timeseries[=path]` (or HP_TIMESERIES=path): sample registry
 *    deltas every HP_TS_INTERVAL instructions per run and write the
 *    combined CSV at scope exit (default "<bench>.timeseries.csv").
 *
 * The bench's stdout text output is never touched, and with none of
 * these given the simulations are bit-identical to a build without
 * observability (the obs_overhead_check ctest pins this down).
 */
class JsonReportScope
{
  public:
    JsonReportScope(int argc, char **argv, const std::string &bench)
    {
        hp::obs::ObsConfig &ocfg = hp::obs::config();
        for (int i = 1; i < argc; ++i) {
            if (std::strcmp(argv[i], "--json") == 0)
                path_ = bench + ".stats.json";
            else if (std::strncmp(argv[i], "--json=", 7) == 0)
                path_ = argv[i] + 7;
            else if (std::strcmp(argv[i], "--trace-json") == 0)
                ocfg.tracePath = bench + ".trace.json";
            else if (std::strncmp(argv[i], "--trace-json=", 13) == 0)
                ocfg.tracePath = argv[i] + 13;
            else if (std::strcmp(argv[i], "--timeseries") == 0)
                ocfg.timeseriesPath = bench + ".timeseries.csv";
            else if (std::strncmp(argv[i], "--timeseries=", 13) == 0)
                ocfg.timeseriesPath = argv[i] + 13;
        }
        if (path_.empty()) {
            if (const char *env = std::getenv("HP_STATS_JSON"))
                path_ = env;
        }
        if (!path_.empty())
            hp::RunReportLog::enable();
        obsEnabled_ = ocfg.traceEnabled() || ocfg.timeseriesEnabled();
    }

    ~JsonReportScope() { write(); }

    bool enabled() const { return !path_.empty(); }
    const std::string &path() const { return path_; }

    /** Writes the outputs now (idempotent; also runs at destruction). */
    void
    write()
    {
        writeObs();
        if (path_.empty() || written_)
            return;
        written_ = true;
        std::string doc = hp::RunReportLog::documentJson();
        std::FILE *f = std::fopen(path_.c_str(), "w");
        if (!f) {
            std::fprintf(stderr, "cannot write stats report to %s\n",
                         path_.c_str());
            return;
        }
        std::fwrite(doc.data(), 1, doc.size(), f);
        std::fclose(f);
        std::fprintf(stderr, "stats report: %s (%zu runs)\n",
                     path_.c_str(), hp::RunReportLog::size());
    }

  private:
    void
    writeObs()
    {
        if (!obsEnabled_ || obsWritten_)
            return;
        obsWritten_ = true;
        hp::obs::Collector::writeOutputs();
        const hp::obs::ObsConfig &ocfg = hp::obs::config();
        if (ocfg.traceEnabled()) {
            std::fprintf(stderr, "trace: %s (%zu runs)\n",
                         ocfg.tracePath.c_str(),
                         hp::obs::Collector::runCount());
        }
        if (ocfg.timeseriesEnabled()) {
            std::fprintf(stderr, "timeseries: %s (%zu runs)\n",
                         ocfg.timeseriesPath.c_str(),
                         hp::obs::Collector::runCount());
        }
    }

    std::string path_;
    bool written_ = false;
    bool obsEnabled_ = false;
    bool obsWritten_ = false;
};

/**
 * Prints the standard footer: what the paper reports for this
 * experiment and a reminder that shapes, not absolute numbers, are the
 * reproduction target (the substrate is a from-scratch simulator).
 */
inline void
paperFooter(const std::string &exp, const std::string &paper_result,
            const std::string &measured_result)
{
    std::printf("\n[%s] paper:    %s\n", exp.c_str(),
                paper_result.c_str());
    std::printf("[%s] measured: %s\n", exp.c_str(),
                measured_result.c_str());
    std::printf("(shape, not absolute numbers, is the reproduction "
                "target; see EXPERIMENTS.md)\n");
}

} // namespace hpbench

#endif // HP_BENCH_BENCH_UTIL_HH
