/**
 * @file
 * Table 4 — Bundle statistics per binary: static Bundle count, total
 * functions, percentage, and the dynamic per-Bundle averages
 * (footprint, execution cycles, Jaccard index between consecutive
 * executions). Paper: 2.3-6.1% of functions are Bundles (avg 3.7%),
 * footprints 15-68 KB, execution 18K-95K cycles, Jaccard 0.80-0.97
 * (avg 0.88). Function counts here are ~10x scaled down (see
 * EXPERIMENTS.md).
 */

#include <cstdio>

#include "bench_util.hh"
#include "workload/program_builder.hh"

int
main(int argc, char **argv)
{
    hpbench::JsonReportScope report(argc, argv, "table4_bundle_stats");
    using namespace hp;

    AsciiTable table("Table 4: Bundle statistics per binary");
    table.setHeader({"binary", "static bundles", "functions",
                     "bundle %", "avg footprint", "avg exec cycles",
                     "avg Jaccard"});

    std::vector<SimConfig> grid;
    for (const std::string &binary : allBinaries()) {
        grid.push_back(defaultConfig(workloadForBinary(binary),
                                     PrefetcherKind::Hierarchical));
    }
    std::vector<SimMetrics> runs = hpbench::runAll(grid);

    std::vector<double> pct, fp, cyc, jac;
    std::size_t next = 0;
    for (const std::string &binary : allBinaries()) {
        const std::string &workload = workloadForBinary(binary);
        const AppProfile &profile = appProfile(workload);
        auto app = ProgramBuilder::cached(profile);

        const SimMetrics &m = runs[next++];

        double fraction = app->image.analysis.entryFraction;
        double footprint_kb =
            m.hier.bundleFootprintBlocks.mean() * kBlockBytes / 1024.0;
        pct.push_back(fraction);
        fp.push_back(footprint_kb);
        cyc.push_back(m.hier.bundleExecCycles.mean());
        jac.push_back(m.hier.bundleJaccard.mean());

        table.addRow({binary,
                      std::to_string(app->image.analysis.entries.size()),
                      std::to_string(app->program.numFunctions()),
                      fmtPercent(fraction),
                      fmtDouble(footprint_kb, 1) + "KB",
                      fmtDouble(m.hier.bundleExecCycles.mean(), 0),
                      fmtDouble(m.hier.bundleJaccard.mean(), 3)});
    }
    table.addRow({"MEAN", "", "", fmtPercent(hpbench::mean(pct)),
                  fmtDouble(hpbench::mean(fp), 1) + "KB",
                  fmtDouble(hpbench::mean(cyc), 0),
                  fmtDouble(hpbench::mean(jac), 3)});
    std::fputs(table.render().c_str(), stdout);

    hpbench::paperFooter(
        "Table4",
        "bundles are 2.3-6.1% of functions (avg 3.7%); footprints "
        "15-68KB; exec 18K-95K cycles; Jaccard 0.80-0.97 (avg 0.88)",
        "see table (function counts scaled ~10x down vs the paper's "
        "binaries)");
    return 0;
}
