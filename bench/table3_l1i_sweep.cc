/**
 * @file
 * Table 3 — prefetcher accuracy, coverage and speedup under varying
 * L1-I capacities (32..256 KB). Paper: EIP accuracy improves with
 * bigger caches (30->42%) as pollution is absorbed; HP improves
 * moderately (53->57%); IPC gains shrink with size but HP stays ahead
 * (+5.1% at 256 KB).
 */

#include <cstdio>

#include "bench_util.hh"

int
main(int argc, char **argv)
{
    hpbench::JsonReportScope report(argc, argv, "table3_l1i_sweep");
    using namespace hp;

    AsciiTable table(
        "Table 3: accuracy / coverage / speedup vs L1-I size");
    table.setHeader({"prefetcher", "L1-I", "accuracy", "coverage",
                     "speedup"});

    const std::vector<unsigned> sizes_kb = {32, 64, 128, 256};
    std::vector<SimConfig> grid;
    for (PrefetcherKind kind : hpbench::comparedPrefetchers()) {
        for (unsigned kb : sizes_kb) {
            for (const std::string &workload : allWorkloads()) {
                SimConfig config = defaultConfig(workload, kind);
                config.mem.l1iBytes = std::uint64_t(kb) * 1024;
                grid.push_back(std::move(config));
            }
        }
    }
    std::vector<RunPair> pairs = hpbench::runPairs(grid);

    std::size_t next = 0;
    for (PrefetcherKind kind : hpbench::comparedPrefetchers()) {
        for (unsigned kb : sizes_kb) {
            std::vector<double> acc, cov, speedup;
            for (std::size_t w = 0; w < allWorkloads().size(); ++w) {
                const RunPair &pair = pairs[next++];
                acc.push_back(pair.paired.accuracy);
                cov.push_back(pair.paired.coverageL1);
                speedup.push_back(pair.paired.speedup);
            }
            table.addRow({prefetcherName(kind),
                          std::to_string(kb) + "KB",
                          fmtPercent(hpbench::mean(acc)),
                          fmtPercent(hpbench::mean(cov)),
                          fmtPercent(hpbench::mean(speedup))});
        }
    }
    std::fputs(table.render().c_str(), stdout);

    hpbench::paperFooter(
        "Table3",
        "EIP accuracy 30->42% as L1-I grows 32->256KB; HP 53->57%; "
        "IPC gains shrink with cache size but HP keeps +5.1% at 256KB",
        "see table: accuracy should rise with L1-I size for the "
        "pollution-bound prefetchers; gains shrink with size; HP "
        "stays ahead at every size");
    return 0;
}
