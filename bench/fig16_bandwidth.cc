/**
 * @file
 * Figure 16 — memory bandwidth overhead of Hierarchical Prefetching,
 * normalized to the FDIP baseline (all DRAM traffic: demand and
 * prefetch instruction fills, metadata reads/writes, and the data
 * side). Paper: +4% average, +10% worst case; of the overhead, ~40%
 * is overpredicted prefetches and ~60% metadata traffic.
 */

#include <cstdio>

#include "bench_util.hh"

int
main(int argc, char **argv)
{
    hpbench::JsonReportScope report(argc, argv, "fig16_bandwidth");
    using namespace hp;

    AsciiTable table("Figure 16: memory bandwidth vs FDIP baseline");
    table.setHeader({"workload", "total", "overpredict share",
                     "metadata share"});

    std::vector<RunPair> pairs = Executor::global().runGrid(
        allWorkloads(), {PrefetcherKind::Hierarchical});

    std::vector<double> ratios, over_share, meta_share;
    std::size_t next = 0;
    for (const std::string &workload : allWorkloads()) {
        const RunPair &pair = pairs[next++];

        double ratio = pair.paired.bandwidthRatio;
        ratios.push_back(ratio);

        // Overhead decomposition: extra prefetch-fill traffic vs
        // metadata traffic.
        double extra = double(pair.run.totalDramBytes()) -
                       double(pair.base.totalDramBytes());
        double meta = double(pair.run.mem.dramMetadataReadBytes +
                             pair.run.mem.dramMetadataWriteBytes);
        double prefetch_extra = double(pair.run.mem.dramExtBytes);
        double denom = meta + prefetch_extra;
        double os = denom > 0 ? prefetch_extra / denom : 0.0;
        double ms = denom > 0 ? meta / denom : 0.0;
        (void)extra;
        over_share.push_back(os);
        meta_share.push_back(ms);

        table.addRow({workload, fmtPercent(ratio - 1.0) + " extra",
                      fmtPercent(os), fmtPercent(ms)});
    }
    table.addRow({"MEAN",
                  fmtPercent(hpbench::mean(ratios) - 1.0) + " extra",
                  fmtPercent(hpbench::mean(over_share)),
                  fmtPercent(hpbench::mean(meta_share))});
    std::fputs(table.render().c_str(), stdout);

    hpbench::paperFooter(
        "Fig16",
        "bandwidth overhead +4% avg / +10% worst; 40% from "
        "overpredicted prefetches, 60% from metadata",
        "MEAN row above");
    return 0;
}
