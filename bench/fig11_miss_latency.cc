/**
 * @file
 * Figure 11 — total demand miss latency for instructions, by the level
 * that served the miss, normalized to the FDIP baseline. Paper:
 * Hierarchical reduces total instruction miss latency by 38.7% (31.1%
 * of L1-level latency and 52.2% of L2-level latency); the best prior
 * technique (EIP) manages 19.7%.
 */

#include <cstdio>

#include "bench_util.hh"

int
main(int argc, char **argv)
{
    hpbench::JsonReportScope report(argc, argv, "fig11_miss_latency");
    using namespace hp;

    AsciiTable table(
        "Figure 11: instruction miss latency relative to FDIP");
    table.setHeader({"prefetcher", "total", "served-by-L2",
                     "served-beyond-L2"});

    std::vector<SimConfig> grid;
    for (PrefetcherKind kind : hpbench::comparedPrefetchers())
        for (const std::string &workload : allWorkloads())
            grid.push_back(defaultConfig(workload, kind));
    std::vector<RunPair> pairs = hpbench::runPairs(grid);

    std::size_t next = 0;
    for (PrefetcherKind kind : hpbench::comparedPrefetchers()) {
        std::vector<double> total, l1part, l2part;
        for (std::size_t w = 0; w < allWorkloads().size(); ++w) {
            const RunPair &pair = pairs[next++];

            auto l1_lat = [](const SimMetrics &m) {
                // Latency of misses served by the L2 (plus merge wait,
                // which is dominated by short waits).
                return double(m.mem.missCyclesL2 + m.mem.missCyclesMshr);
            };
            auto l2_lat = [](const SimMetrics &m) {
                return double(m.mem.missCyclesLlc + m.mem.missCyclesMem);
            };
            double base_total = double(pair.base.mem.totalMissCycles());
            if (base_total <= 0)
                continue;
            total.push_back(
                double(pair.run.mem.totalMissCycles()) / base_total);
            if (l1_lat(pair.base) > 0)
                l1part.push_back(l1_lat(pair.run) / l1_lat(pair.base));
            if (l2_lat(pair.base) > 0)
                l2part.push_back(l2_lat(pair.run) / l2_lat(pair.base));
        }
        table.addRow({prefetcherName(kind),
                      fmtPercent(hpbench::mean(total)),
                      fmtPercent(hpbench::mean(l1part)),
                      fmtPercent(hpbench::mean(l2part))});
    }
    std::fputs(table.render().c_str(), stdout);

    hpbench::paperFooter(
        "Fig11",
        "Hierarchical cuts total instruction miss latency by 38.7% "
        "(L1-level -31.1%, L2-level -52.2%); best prior (EIP) -19.7%",
        "rows above are remaining latency vs FDIP (lower is better); "
        "Hierarchical lowest, with the biggest cut beyond the L2");
    return 0;
}
