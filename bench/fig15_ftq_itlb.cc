/**
 * @file
 * Figure 15 — (a) FDIP IPC as a function of FTQ size (paper: best at
 * 24 entries, larger slightly worse) and (b) IPC of the baseline and
 * Hierarchical as a function of I-TLB entries (paper: HP delivers >6%
 * at every I-TLB size).
 */

#include <cstdio>

#include "bench_util.hh"

int
main()
{
    using namespace hp;

    // (a) FTQ sweep, FDIP baseline, normalized to the 24-entry config.
    AsciiTable table_a("Figure 15a: FDIP IPC vs FTQ size");
    table_a.setHeader({"FTQ entries", "relative IPC"});
    std::vector<unsigned> ftq_sizes = {8, 16, 24, 32, 48, 64};
    std::vector<double> ipcs;
    for (unsigned ftq : ftq_sizes) {
        std::vector<double> per_app;
        for (const std::string &workload : allWorkloads()) {
            SimConfig config = defaultConfig(workload);
            config.ftqEntries = ftq;
            per_app.push_back(ExperimentRunner::run(config).ipc());
        }
        ipcs.push_back(hpbench::mean(per_app));
    }
    double ref = ipcs[2]; // 24 entries
    for (std::size_t i = 0; i < ftq_sizes.size(); ++i) {
        table_a.addRow({std::to_string(ftq_sizes[i]),
                        fmtDouble(ipcs[i] / ref, 4)});
    }
    std::fputs(table_a.render().c_str(), stdout);
    std::printf("\n");

    // (b) I-TLB sweep: baseline vs Hierarchical.
    AsciiTable table_b("Figure 15b: IPC vs I-TLB entries");
    table_b.setHeader({"I-TLB entries", "FDIP IPC", "HP IPC",
                       "HP gain"});
    for (unsigned entries : {32u, 64u, 128u, 256u}) {
        std::vector<double> base_ipc, hp_gain, hp_ipc;
        for (const std::string &workload : allWorkloads()) {
            SimConfig config =
                defaultConfig(workload, PrefetcherKind::Hierarchical);
            config.mem.itlbEntries = entries;
            RunPair pair = ExperimentRunner::runPair(config);
            base_ipc.push_back(pair.base.ipc());
            hp_ipc.push_back(pair.run.ipc());
            hp_gain.push_back(pair.paired.speedup);
        }
        table_b.addRow({std::to_string(entries),
                        fmtDouble(hpbench::mean(base_ipc), 3),
                        fmtDouble(hpbench::mean(hp_ipc), 3),
                        fmtPercent(hpbench::mean(hp_gain))});
    }
    std::fputs(table_b.render().c_str(), stdout);

    hpbench::paperFooter(
        "Fig15",
        "FDIP is best at a 24-entry FTQ (deeper slightly worse); HP "
        "keeps >6% gains across all I-TLB sizes",
        "see tables above");
    return 0;
}
