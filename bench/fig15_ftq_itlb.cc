/**
 * @file
 * Figure 15 — (a) FDIP IPC as a function of FTQ size (paper: best at
 * 24 entries, larger slightly worse) and (b) IPC of the baseline and
 * Hierarchical as a function of I-TLB entries (paper: HP delivers >6%
 * at every I-TLB size).
 */

#include <cstdio>

#include "bench_util.hh"

int
main(int argc, char **argv)
{
    hpbench::JsonReportScope report(argc, argv, "fig15_ftq_itlb");
    using namespace hp;

    // Submit both sweeps' grids up front so part (b) overlaps (a).
    std::vector<unsigned> ftq_sizes = {8, 16, 24, 32, 48, 64};
    std::vector<SimConfig> ftq_grid;
    for (unsigned ftq : ftq_sizes) {
        for (const std::string &workload : allWorkloads()) {
            SimConfig config = defaultConfig(workload);
            config.ftqEntries = ftq;
            ftq_grid.push_back(std::move(config));
        }
    }
    const std::vector<unsigned> itlb_sizes = {32, 64, 128, 256};
    std::vector<SimConfig> itlb_grid;
    for (unsigned entries : itlb_sizes) {
        for (const std::string &workload : allWorkloads()) {
            SimConfig config =
                defaultConfig(workload, PrefetcherKind::Hierarchical);
            config.mem.itlbEntries = entries;
            itlb_grid.push_back(std::move(config));
        }
    }
    for (const SimConfig &config : itlb_grid)
        Executor::global().submitPair(config);
    std::vector<SimMetrics> ftq_runs = hpbench::runAll(ftq_grid);

    // (a) FTQ sweep, FDIP baseline, normalized to the 24-entry config.
    AsciiTable table_a("Figure 15a: FDIP IPC vs FTQ size");
    table_a.setHeader({"FTQ entries", "relative IPC"});
    std::vector<double> ipcs;
    std::size_t ftq_next = 0;
    for (std::size_t f = 0; f < ftq_sizes.size(); ++f) {
        std::vector<double> per_app;
        for (std::size_t w = 0; w < allWorkloads().size(); ++w)
            per_app.push_back(ftq_runs[ftq_next++].ipc());
        ipcs.push_back(hpbench::mean(per_app));
    }
    double ref = ipcs[2]; // 24 entries
    for (std::size_t i = 0; i < ftq_sizes.size(); ++i) {
        table_a.addRow({std::to_string(ftq_sizes[i]),
                        fmtDouble(ipcs[i] / ref, 4)});
    }
    std::fputs(table_a.render().c_str(), stdout);
    std::printf("\n");

    // (b) I-TLB sweep: baseline vs Hierarchical.
    std::vector<RunPair> itlb_pairs = hpbench::runPairs(itlb_grid);
    AsciiTable table_b("Figure 15b: IPC vs I-TLB entries");
    table_b.setHeader({"I-TLB entries", "FDIP IPC", "HP IPC",
                       "HP gain"});
    std::size_t itlb_next = 0;
    for (unsigned entries : itlb_sizes) {
        std::vector<double> base_ipc, hp_gain, hp_ipc;
        for (std::size_t w = 0; w < allWorkloads().size(); ++w) {
            const RunPair &pair = itlb_pairs[itlb_next++];
            base_ipc.push_back(pair.base.ipc());
            hp_ipc.push_back(pair.run.ipc());
            hp_gain.push_back(pair.paired.speedup);
        }
        table_b.addRow({std::to_string(entries),
                        fmtDouble(hpbench::mean(base_ipc), 3),
                        fmtDouble(hpbench::mean(hp_ipc), 3),
                        fmtPercent(hpbench::mean(hp_gain))});
    }
    std::fputs(table_b.render().c_str(), stdout);

    hpbench::paperFooter(
        "Fig15",
        "FDIP is best at a 24-entry FTQ (deeper slightly worse); HP "
        "keeps >6% gains across all I-TLB sizes",
        "see tables above");
    return 0;
}
