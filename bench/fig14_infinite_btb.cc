/**
 * @file
 * Figure 14 — speedups when FDIP is given an infinite BTB. Paper: the
 * fine-grained prefetchers nearly vanish (EFetch +0.3%, MANA +0.1%,
 * EIP +0.9%) because an unconstrained FDIP captures the same
 * short-range misses, while Hierarchical still gains +4.2% from
 * long-range misses.
 */

#include <cstdio>

#include "bench_util.hh"

int
main(int argc, char **argv)
{
    hpbench::JsonReportScope report(argc, argv, "fig14_infinite_btb");
    using namespace hp;

    AsciiTable table("Figure 14: speedup over FDIP with infinite BTB");
    table.setHeader(
        {"workload", "EFetch", "MANA", "EIP", "Hierarchical"});

    std::vector<SimConfig> grid;
    for (const std::string &workload : allWorkloads()) {
        for (PrefetcherKind kind : hpbench::comparedPrefetchers()) {
            SimConfig config = defaultConfig(workload, kind);
            config.btbEntries = 0; // infinite
            grid.push_back(std::move(config));
        }
    }
    std::vector<RunPair> pairs = hpbench::runPairs(grid);

    std::vector<std::vector<double>> cols(4);
    std::size_t next = 0;
    for (const std::string &workload : allWorkloads()) {
        std::vector<std::string> row = {workload};
        for (unsigned c = 0; c < 4; ++c) {
            const RunPair &pair = pairs[next++];
            cols[c].push_back(pair.paired.speedup);
            row.push_back(fmtPercent(pair.paired.speedup));
        }
        table.addRow(row);
    }
    table.addRow({"MEAN", fmtPercent(hpbench::mean(cols[0])),
                  fmtPercent(hpbench::mean(cols[1])),
                  fmtPercent(hpbench::mean(cols[2])),
                  fmtPercent(hpbench::mean(cols[3]))});
    std::fputs(table.render().c_str(), stdout);

    hpbench::paperFooter(
        "Fig14",
        "with infinite BTB: EFetch +0.3%, MANA +0.1%, EIP +0.9%, "
        "Hierarchical +4.2%",
        "MEAN row above — fine-grained gains should collapse; "
        "Hierarchical should retain most of its benefit");
    return 0;
}
