/**
 * @file
 * Table 2 — average prefetch distance (cache blocks), accuracy, and
 * L1-I/L2 coverage for the four prefetchers. Paper values:
 *
 *   metric          EFetch  MANA  EIP  Hierarchical
 *   distance          3.4    4.3  6.1      90
 *   accuracy (L1-I)   58%    55%  30%      53%
 *   coverage (L1-I)   10%    14%  48%      37%
 *   coverage (L2)      8%    12%  23%      54%
 */

#include <cstdio>

#include "bench_util.hh"

int
main(int argc, char **argv)
{
    hpbench::JsonReportScope report(argc, argv, "table2_distance_accuracy");
    using namespace hp;

    std::vector<SimConfig> grid;
    for (PrefetcherKind kind : hpbench::comparedPrefetchers())
        for (const std::string &workload : allWorkloads())
            grid.push_back(defaultConfig(workload, kind));
    std::vector<RunPair> pairs = hpbench::runPairs(grid);

    std::vector<std::string> names;
    std::vector<double> dist, acc, cov1, cov2;
    std::size_t next = 0;
    for (PrefetcherKind kind : hpbench::comparedPrefetchers()) {
        std::vector<double> d, a, c1, c2;
        for (std::size_t w = 0; w < allWorkloads().size(); ++w) {
            const RunPair &pair = pairs[next++];
            d.push_back(pair.paired.avgDistance);
            a.push_back(pair.paired.accuracy);
            c1.push_back(pair.paired.coverageL1);
            c2.push_back(pair.paired.coverageL2);
        }
        names.push_back(prefetcherName(kind));
        dist.push_back(hpbench::mean(d));
        acc.push_back(hpbench::mean(a));
        cov1.push_back(hpbench::mean(c1));
        cov2.push_back(hpbench::mean(c2));
    }

    AsciiTable table(
        "Table 2: average distance, accuracy and coverage");
    table.setHeader(
        {"metric", names[0], names[1], names[2], names[3]});
    auto row = [&table](const std::string &metric,
                        const std::vector<double> &vals, bool pct) {
        std::vector<std::string> cells = {metric};
        for (double v : vals)
            cells.push_back(pct ? fmtPercent(v) : fmtDouble(v, 1));
        table.addRow(cells);
    };
    row("Distance (blocks)", dist, false);
    row("Accuracy (L1-I)", acc, true);
    row("Coverage (L1-I)", cov1, true);
    row("Coverage (L2)", cov2, true);
    std::fputs(table.render().c_str(), stdout);

    hpbench::paperFooter(
        "Table2",
        "distance 3.4/4.3/6.1/90; accuracy 58/55/30/53%; covL1 "
        "10/14/48/37%; covL2 8/12/23/54%",
        "see table: Hierarchical operates at an order-of-magnitude "
        "larger distance with competitive accuracy and the best L2 "
        "coverage");
    return 0;
}
