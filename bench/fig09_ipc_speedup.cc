/**
 * @file
 * Figure 9 — IPC speedup over the FDIP baseline, per workload, for
 * EFetch, MANA, EIP and Hierarchical Prefetching; plus the Section 7.1
 * Perfect-L1-I study (paper: perfect = +16.8% avg, HP captures 40% of
 * it on average, 77% best case).
 */

#include <cstdio>

#include "bench_util.hh"

int
main(int argc, char **argv)
{
    hpbench::JsonReportScope report(argc, argv, "fig09_ipc_speedup");
    using namespace hp;

    AsciiTable table("Figure 9: IPC speedup over FDIP");
    table.setHeader({"workload", "EFetch", "MANA", "EIP",
                     "Hierarchical", "PerfectL1I", "HP/Perfect"});

    std::vector<double> efetch, mana, eip, hier, perfect, share;

    // Submit the whole grid up front; workers drain it in parallel.
    std::vector<SimConfig> grid;
    for (const std::string &workload : allWorkloads()) {
        for (PrefetcherKind kind : hpbench::comparedPrefetchers())
            grid.push_back(defaultConfig(workload, kind));
        grid.push_back(
            defaultConfig(workload, PrefetcherKind::PerfectL1I));
    }
    std::vector<RunPair> pairs = hpbench::runPairs(grid);

    std::size_t next = 0;
    for (const std::string &workload : allWorkloads()) {
        std::vector<double> row;
        for (PrefetcherKind kind : hpbench::comparedPrefetchers()) {
            (void)kind;
            row.push_back(pairs[next++].paired.speedup);
        }
        double perf = pairs[next++].paired.speedup;

        efetch.push_back(row[0]);
        mana.push_back(row[1]);
        eip.push_back(row[2]);
        hier.push_back(row[3]);
        perfect.push_back(perf);
        double hp_share = perf > 0.0 ? row[3] / perf : 0.0;
        share.push_back(hp_share);

        table.addRow({workload, fmtPercent(row[0]), fmtPercent(row[1]),
                      fmtPercent(row[2]), fmtPercent(row[3]),
                      fmtPercent(perf), fmtPercent(hp_share)});
    }

    table.addRow({"MEAN", fmtPercent(hpbench::mean(efetch)),
                  fmtPercent(hpbench::mean(mana)),
                  fmtPercent(hpbench::mean(eip)),
                  fmtPercent(hpbench::mean(hier)),
                  fmtPercent(hpbench::mean(perfect)),
                  fmtPercent(hpbench::mean(share))});
    std::fputs(table.render().c_str(), stdout);

    hpbench::paperFooter(
        "Fig9",
        "EFetch +1.4%, MANA +1.6%, EIP +4.0%, Hierarchical +6.6% "
        "(avg); Perfect L1-I +16.8%, HP = 40% of perfect",
        "EFetch " + fmtPercent(hpbench::mean(efetch)) + ", MANA " +
            fmtPercent(hpbench::mean(mana)) + ", EIP " +
            fmtPercent(hpbench::mean(eip)) + ", Hierarchical " +
            fmtPercent(hpbench::mean(hier)) + "; Perfect " +
            fmtPercent(hpbench::mean(perfect)) + ", HP share " +
            fmtPercent(hpbench::mean(share)));
    return 0;
}
