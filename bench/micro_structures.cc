/**
 * @file
 * google-benchmark microbenchmarks of the Hierarchical Prefetcher's
 * hardware structures and the link-time analysis: per-operation cost
 * of the Compression Buffer, Metadata Address Table, Metadata Buffer
 * allocator, the conditional predictor, the L1-I model, and the full
 * Bundle identification pass.
 */

#include <benchmark/benchmark.h>

#include "binary/call_graph.hh"
#include "cache/cache.hh"
#include "core/bundle_analysis.hh"
#include "core/compression_buffer.hh"
#include "core/metadata_buffer.hh"
#include "core/metadata_table.hh"
#include "frontend/cond_predictor.hh"
#include "util/rng.hh"
#include "workload/program_builder.hh"
#include "workload/request_engine.hh"

namespace
{

void
BM_CompressionBufferTouch(benchmark::State &state)
{
    hp::CompressionBuffer buffer(16);
    hp::Rng rng(42);
    std::uint64_t block = 0;
    for (auto _ : state) {
        // Mostly sequential with occasional jumps, like retired code.
        block += rng.nextBool(0.9) ? hp::kBlockBytes
                                   : rng.nextUint(1 << 20);
        benchmark::DoNotOptimize(buffer.touch(hp::blockAlign(block)));
    }
}
BENCHMARK(BM_CompressionBufferTouch);

void
BM_MetadataTableLookup(benchmark::State &state)
{
    hp::MetadataAddressTable table(512, 8, 11);
    hp::Rng rng(7);
    for (unsigned i = 0; i < 512; ++i)
        table.insert(static_cast<hp::BundleId>(rng.next() & 0xffffff),
                     i);
    hp::Rng lookup_rng(7);
    for (auto _ : state) {
        benchmark::DoNotOptimize(table.lookup(
            static_cast<hp::BundleId>(lookup_rng.next() & 0xffffff)));
    }
}
BENCHMARK(BM_MetadataTableLookup);

void
BM_MetadataBufferAllocate(benchmark::State &state)
{
    hp::MetadataBuffer buffer(512 * 1024);
    std::uint32_t owner = 0;
    for (auto _ : state) {
        ++owner;
        benchmark::DoNotOptimize(
            buffer.allocate(owner & 0xffffff, (owner & 7) == 0));
    }
}
BENCHMARK(BM_MetadataBufferAllocate);

void
BM_CondPredictor(benchmark::State &state)
{
    hp::CondPredictor pred;
    hp::Rng rng(3);
    for (auto _ : state) {
        hp::Addr pc = (rng.next() & 0xffff) * 4;
        bool taken = rng.nextBool(0.7);
        benchmark::DoNotOptimize(pred.predict(pc));
        pred.update(pc, taken);
    }
}
BENCHMARK(BM_CondPredictor);

void
BM_L1IAccess(benchmark::State &state)
{
    hp::SetAssocCache l1i("L1I", 32 * 1024, 8);
    hp::Rng rng(11);
    for (auto _ : state) {
        hp::Addr block = hp::blockAlign(rng.nextUint(1 << 22));
        if (!l1i.access(block))
            l1i.insert(block, hp::Origin::Demand);
    }
}
BENCHMARK(BM_L1IAccess);

void
BM_BundleAnalysis(benchmark::State &state)
{
    const hp::AppProfile &profile = hp::appProfile("caddy");
    auto app = hp::ProgramBuilder::cached(profile);
    for (auto _ : state) {
        hp::CallGraph graph(app->program);
        auto analysis = hp::findBundleEntries(graph);
        benchmark::DoNotOptimize(analysis.entries.size());
    }
}
BENCHMARK(BM_BundleAnalysis)->Unit(benchmark::kMillisecond);

void
BM_RequestEngine(benchmark::State &state)
{
    const hp::AppProfile &profile = hp::appProfile("caddy");
    auto app = hp::ProgramBuilder::cached(profile);
    hp::RequestEngine engine(app, profile);
    hp::DynInst inst;
    for (auto _ : state) {
        engine.next(inst);
        benchmark::DoNotOptimize(inst.pc);
    }
}
BENCHMARK(BM_RequestEngine);

} // namespace
