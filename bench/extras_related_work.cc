/**
 * @file
 * Related-work extension: RDIP (MICRO'13), the caller-callee
 * prefetcher the paper discusses in Section 2.3 but does not evaluate,
 * compared against its successor EFetch and against Hierarchical
 * Prefetching — storage budget included, since RDIP's 60 KB/core
 * metadata appetite is the paper's main criticism of it.
 */

#include <cstdio>

#include "bench_util.hh"

int
main(int argc, char **argv)
{
    hpbench::JsonReportScope report(argc, argv, "extras_related_work");
    using namespace hp;

    AsciiTable table(
        "Related work: RDIP vs EFetch vs Hierarchical");
    table.setHeader({"prefetcher", "speedup", "accuracy", "covL1",
                     "late", "storage"});

    const std::vector<PrefetcherKind> kinds = {
        PrefetcherKind::Rdip, PrefetcherKind::EFetch,
        PrefetcherKind::Hierarchical};
    std::vector<SimConfig> grid;
    for (PrefetcherKind kind : kinds)
        for (const std::string &workload : allWorkloads())
            grid.push_back(defaultConfig(workload, kind));
    std::vector<RunPair> pairs = hpbench::runPairs(grid);

    std::size_t next = 0;
    for (PrefetcherKind kind : kinds) {
        std::vector<double> speedup, acc, cov, late;
        for (std::size_t w = 0; w < allWorkloads().size(); ++w) {
            const RunPair &pair = pairs[next++];
            speedup.push_back(pair.paired.speedup);
            acc.push_back(pair.paired.accuracy);
            cov.push_back(pair.paired.coverageL1);
            late.push_back(pair.paired.lateFraction);
        }
        NullMetadataMemory memory;
        SimConfig probe_cfg = defaultConfig("tidb-tpcc", kind);
        auto pf = makePrefetcher(probe_cfg, memory);
        double storage_kb =
            pf ? double(pf->storageBits()) / 8.0 / 1024.0 : 0.0;

        table.addRow({prefetcherName(kind),
                      fmtPercent(hpbench::mean(speedup)),
                      fmtPercent(hpbench::mean(acc)),
                      fmtPercent(hpbench::mean(cov)),
                      fmtPercent(hpbench::mean(late)),
                      fmtDouble(storage_kb, 1) + "KB"});
    }
    std::fputs(table.render().c_str(), stdout);

    hpbench::paperFooter(
        "Extras",
        "(extension) RDIP offers PIF-class performance at 60KB/core; "
        "EFetch surpasses it with less storage (Section 2.3)",
        "rows above: Hierarchical should dominate both at a fraction "
        "of the storage");
    return 0;
}
