/**
 * @file
 * Simulator throughput microbenchmark: single-thread simulated MIPS
 * and wall-clock scaling of a fig09-style grid at 1, 2 and N worker
 * threads. Emits one JSON line so the perf trajectory can be tracked
 * across PRs and CI runs.
 *
 * `--quick` shrinks the grid and instruction counts for CI; the
 * default exercises the full fig09 workload x prefetcher grid.
 */

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.hh"

namespace
{

using namespace hp;

double
secondsSince(std::chrono::steady_clock::time_point start)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - start)
        .count();
}

} // namespace

int
main(int argc, char **argv)
{
    hpbench::JsonReportScope report(argc, argv,
                                    "micro_sim_throughput");
    bool quick = false;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--quick") == 0)
            quick = true;
    }

    const std::uint64_t warmup = quick ? 100'000 : 1'500'000;
    const std::uint64_t measure = quick ? 300'000 : 3'000'000;

    std::vector<std::string> workloads;
    std::vector<PrefetcherKind> kinds;
    if (quick) {
        workloads = {"caddy", "gin"};
        kinds = {PrefetcherKind::EFetch, PrefetcherKind::Hierarchical};
    } else {
        workloads = allWorkloads();
        kinds = hpbench::comparedPrefetchers();
        kinds.push_back(PrefetcherKind::PerfectL1I);
    }

    // ---- Single-thread MIPS: one uncached simulation, timed. ----
    SimConfig mips_cfg = defaultConfig(workloads.front());
    mips_cfg.warmupInsts = warmup;
    mips_cfg.measureInsts = measure;
    auto start = std::chrono::steady_clock::now();
    Simulator sim(mips_cfg);
    SimMetrics m = sim.run();
    double mips_secs = secondsSince(start);
    double mips = double(warmup + measure) / 1e6 / mips_secs;
    (void)m;

    // ---- Grid scaling: same grid at 1, 2 and N threads. ----
    std::vector<unsigned> rounds = {1};
    unsigned hw = Executor::defaultThreads();
    if (hw >= 2 || !quick)
        rounds.push_back(2);
    if (hw > 2)
        rounds.push_back(hw);

    std::vector<double> walls;
    unsigned round_tag = 0;
    for (unsigned threads : rounds) {
        // Perturb the instruction budget per round so the experiment
        // cache cannot serve this round from the previous one: every
        // round simulates its full grid.
        ++round_tag;
        std::vector<SimConfig> grid;
        for (const std::string &workload : workloads) {
            for (PrefetcherKind kind : kinds) {
                SimConfig config = defaultConfig(workload, kind);
                config.warmupInsts = warmup;
                config.measureInsts = measure + round_tag;
                grid.push_back(std::move(config));
            }
        }

        Executor executor(threads);
        start = std::chrono::steady_clock::now();
        std::vector<RunPair> pairs = executor.runPairs(grid);
        walls.push_back(secondsSince(start));
        (void)pairs;
    }

    std::printf("{\"bench\":\"micro_sim_throughput\","
                "\"quick\":%s,"
                "\"grid_points\":%zu,"
                "\"insts_per_sim\":%llu,"
                "\"single_thread_mips\":%.2f",
                quick ? "true" : "false",
                workloads.size() * kinds.size(),
                static_cast<unsigned long long>(warmup + measure),
                mips);
    for (std::size_t i = 0; i < rounds.size(); ++i) {
        std::printf(",\"wall_s_at_%u_threads\":%.2f", rounds[i],
                    walls[i]);
        if (i > 0 && walls[i] > 0.0) {
            std::printf(",\"speedup_at_%u_threads\":%.2f", rounds[i],
                        walls[0] / walls[i]);
        }
    }
    std::printf("}\n");
    return 0;
}
