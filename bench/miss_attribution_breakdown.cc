/**
 * @file
 * Miss-attribution breakdown — where the remaining L1-I demand misses
 * of the measurement phase come from, per workload, with the
 * Hierarchical prefetcher active (pass --prefetcher=efetch|mana|eip|
 * hierarchical|fdip to inspect another one). The cause classes are the
 * observability layer's partition of `l1i.demand_misses` (see
 * DESIGN.md Section 9): a strong prefetcher should leave mostly
 * never_prefetched cold misses and a small late/evicted tail, while a
 * weaker one shifts weight into prefetch_late and prefetched_evicted.
 */

#include <cstdio>
#include <cstring>

#include "bench_util.hh"
#include "obs/miss_attribution.hh"
#include "util/logging.hh"

namespace
{

using namespace hp;

std::string
fmtShare(std::uint64_t part, std::uint64_t total)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.1f%%",
                  total ? 100.0 * double(part) / double(total) : 0.0);
    return buf;
}

} // namespace

int
main(int argc, char **argv)
{
    hpbench::JsonReportScope report(argc, argv,
                                    "miss_attribution_breakdown");
    using namespace hp;

    PrefetcherKind kind = PrefetcherKind::Hierarchical;
    for (int i = 1; i < argc; ++i) {
        if (std::strncmp(argv[i], "--prefetcher=", 13) != 0)
            continue;
        const char *name = argv[i] + 13;
        if (std::strcmp(name, "fdip") == 0)
            kind = PrefetcherKind::None;
        else if (std::strcmp(name, "efetch") == 0)
            kind = PrefetcherKind::EFetch;
        else if (std::strcmp(name, "mana") == 0)
            kind = PrefetcherKind::Mana;
        else if (std::strcmp(name, "eip") == 0)
            kind = PrefetcherKind::Eip;
        else if (std::strcmp(name, "hierarchical") == 0)
            kind = PrefetcherKind::Hierarchical;
        else
            fatal(std::string("unknown --prefetcher value: ") + name);
    }

    // The whole point of this bench is the attribution subtree, so
    // turn the tracker on before any simulation is constructed.
    obs::config().attribution = true;

    AsciiTable table(std::string("L1-I miss attribution (") +
                     prefetcherName(kind) + ")");
    table.setHeader({"workload", "misses", "never_pf", "late",
                     "pf_evicted", "dem_evicted", "contention"});

    std::vector<SimConfig> grid;
    for (const std::string &workload : allWorkloads()) {
        SimConfig config;
        config.workload = workload;
        config.prefetcher = kind;
        grid.push_back(config);
    }
    std::vector<SimMetrics> runs = hpbench::runAll(grid);

    std::vector<double> late_shares;
    for (std::size_t i = 0; i < runs.size(); ++i) {
        const StatsSnapshot &stats = runs[i].stats;
        std::uint64_t causes[kNumMissCauses];
        std::uint64_t total = 0;
        for (unsigned c = 0; c < kNumMissCauses; ++c) {
            causes[c] = stats.value(
                std::string("missAttribution.") +
                missCauseName(static_cast<MissCause>(c)));
            total += causes[c];
        }
        fatalIf(total != stats.value("l1i.demand_misses"),
                grid[i].workload +
                    ": attribution does not partition the misses");

        auto share = [&](MissCause cause) {
            return fmtShare(causes[unsigned(cause)], total);
        };
        table.addRow({grid[i].workload, std::to_string(total),
                      share(MissCause::NeverPrefetched),
                      share(MissCause::PrefetchLate),
                      share(MissCause::PrefetchedEvicted),
                      share(MissCause::DemandEvicted),
                      share(MissCause::ResourceContention)});
        if (total)
            late_shares.push_back(
                double(causes[unsigned(MissCause::PrefetchLate)]) /
                double(total));
    }
    std::fputs(table.render().c_str(), stdout);
    std::printf("\nmean late share: %.1f%%\n",
                100.0 * hpbench::mean(late_shares));

    hpbench::paperFooter(
        "MissAttr",
        "no direct figure; complements Fig10 (late prefetches) and "
        "Fig11 (miss latency) with a full causal breakdown",
        "the cause columns of each row sum to 100% of that row's "
        "misses (enforced above)");
    return 0;
}
