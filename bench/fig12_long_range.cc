/**
 * @file
 * Figure 12 — elimination of L2 misses caused by the top 10% of
 * instruction accesses by reuse distance ("long-range misses").
 * Paper: Hierarchical eliminates 53% on average (peak 72%), vs
 * EIP 21%, MANA 11%, EFetch 7%.
 */

#include <cstdio>

#include "bench_util.hh"

int
main(int argc, char **argv)
{
    hpbench::JsonReportScope report(argc, argv, "fig12_long_range");
    using namespace hp;

    AsciiTable table(
        "Figure 12: long-range L2 misses eliminated over FDIP");
    table.setHeader(
        {"workload", "EFetch", "MANA", "EIP", "Hierarchical"});

    std::vector<SimConfig> grid;
    for (const std::string &workload : allWorkloads()) {
        for (PrefetcherKind kind : hpbench::comparedPrefetchers()) {
            SimConfig config = defaultConfig(workload, kind);
            config.trackReuse = true;
            grid.push_back(std::move(config));
        }
    }
    std::vector<RunPair> pairs = hpbench::runPairs(grid);

    std::vector<std::vector<double>> cols(4);
    std::size_t next = 0;
    for (const std::string &workload : allWorkloads()) {
        std::vector<std::string> row = {workload};
        for (unsigned c = 0; c < 4; ++c) {
            const RunPair &pair = pairs[next++];
            cols[c].push_back(pair.paired.longRangeEliminated);
            row.push_back(fmtPercent(pair.paired.longRangeEliminated));
        }
        table.addRow(row);
    }
    table.addRow({"MEAN", fmtPercent(hpbench::mean(cols[0])),
                  fmtPercent(hpbench::mean(cols[1])),
                  fmtPercent(hpbench::mean(cols[2])),
                  fmtPercent(hpbench::mean(cols[3]))});
    std::fputs(table.render().c_str(), stdout);

    hpbench::paperFooter(
        "Fig12",
        "long-range L2 miss elimination: EFetch 7%, MANA 11%, "
        "EIP 21%, Hierarchical 53% (peak 72%)",
        "MEAN row above — Hierarchical should dominate by a wide "
        "margin");
    return 0;
}
