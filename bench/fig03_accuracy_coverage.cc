/**
 * @file
 * Figure 3 — overall accuracy and coverage of the three fine-grained
 * prefetchers as a function of their average prefetch distance (paper:
 * accuracy 30-58%, inversely correlated with distance; coverage grows
 * with distance; MANA < 20% miss elimination over FDIP).
 */

#include <cstdio>

#include "bench_util.hh"

int
main(int argc, char **argv)
{
    hpbench::JsonReportScope report(argc, argv, "fig03_accuracy_coverage");
    using namespace hp;

    AsciiTable table(
        "Figure 3: accuracy & coverage vs average prefetch distance");
    table.setHeader({"prefetcher", "avg distance", "accuracy",
                     "coverage(L1)"});

    const std::vector<PrefetcherKind> kinds = {
        PrefetcherKind::EFetch, PrefetcherKind::Mana,
        PrefetcherKind::Eip, PrefetcherKind::Hierarchical};

    // Kind-major grid, submitted up front.
    std::vector<SimConfig> grid;
    for (PrefetcherKind kind : kinds)
        for (const std::string &workload : allWorkloads())
            grid.push_back(defaultConfig(workload, kind));
    std::vector<RunPair> pairs = hpbench::runPairs(grid);

    std::size_t next = 0;
    for (PrefetcherKind kind : kinds) {
        std::vector<double> acc, cov, dist;
        for (std::size_t w = 0; w < allWorkloads().size(); ++w) {
            const RunPair &pair = pairs[next++];
            acc.push_back(pair.paired.accuracy);
            cov.push_back(pair.paired.coverageL1);
            dist.push_back(pair.paired.avgDistance);
        }
        table.addRow({prefetcherName(kind),
                      fmtDouble(hpbench::mean(dist), 1),
                      fmtPercent(hpbench::mean(acc)),
                      fmtPercent(hpbench::mean(cov))});
    }
    std::fputs(table.render().c_str(), stdout);

    hpbench::paperFooter(
        "Fig3",
        "accuracy inversely correlates with distance (EFetch highest "
        "accuracy/lowest distance); coverage grows with distance; "
        "best fine-grained coverage (MANA) < 20%",
        "see table: ordering of accuracy vs distance and coverage vs "
        "distance above");
    return 0;
}
