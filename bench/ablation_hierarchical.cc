/**
 * @file
 * Ablation study of the Hierarchical Prefetcher's design choices
 * (beyond the paper's own sensitivity figures):
 *
 *  - supersede-vs-accumulate records (the paper argues replaying only
 *    the most recent execution keeps accuracy high, Section 5.3.4);
 *  - replay pacing (segment gating + sub-segment streaming) vs a
 *    burst replay of everything at Bundle start;
 *  - per-replay block dedup;
 *  - the immediate-segments count at Bundle start.
 *
 * Each row reports the mean speedup, accuracy and L1-I coverage over
 * all 11 workloads.
 */

#include <cstdio>
#include <functional>

#include "bench_util.hh"

namespace
{

using namespace hp;

struct Variant
{
    const char *name;
    std::function<void(HierarchicalConfig &)> tweak;
};

} // namespace

int
main(int argc, char **argv)
{
    hpbench::JsonReportScope report(argc, argv, "ablation_hierarchical");
    const Variant variants[] = {
        {"default (paper design)", [](HierarchicalConfig &) {}},
        {"no supersede (accumulate records)",
         [](HierarchicalConfig &c) { c.supersedeRecords = false; }},
        {"no sub-segment pacing (burst segments)",
         [](HierarchicalConfig &c) { c.subSegmentPacing = false; }},
        {"no replay dedup",
         [](HierarchicalConfig &c) { c.replayDedup = false; }},
        {"1 immediate segment",
         [](HierarchicalConfig &c) { c.aheadSegments = 1; }},
        {"4 immediate segments",
         [](HierarchicalConfig &c) { c.aheadSegments = 4; }},
        {"no pacing at all (replay everything at start)",
         [](HierarchicalConfig &c) {
             c.subSegmentPacing = false;
             c.aheadSegments = 64;
         }},
    };

    AsciiTable table("Hierarchical Prefetching ablations");
    table.setHeader(
        {"variant", "speedup", "accuracy", "covL1", "covL2"});

    std::vector<SimConfig> grid;
    for (const Variant &variant : variants) {
        for (const std::string &workload : allWorkloads()) {
            SimConfig config =
                defaultConfig(workload, PrefetcherKind::Hierarchical);
            variant.tweak(config.hier);
            grid.push_back(std::move(config));
        }
    }
    std::vector<RunPair> pairs = hpbench::runPairs(grid);

    std::size_t next = 0;
    for (const Variant &variant : variants) {
        std::vector<double> speedup, acc, cov1, cov2;
        for (std::size_t w = 0; w < allWorkloads().size(); ++w) {
            const RunPair &pair = pairs[next++];
            speedup.push_back(pair.paired.speedup);
            acc.push_back(pair.paired.accuracy);
            cov1.push_back(pair.paired.coverageL1);
            cov2.push_back(pair.paired.coverageL2);
        }
        table.addRow({variant.name,
                      fmtPercent(hpbench::mean(speedup)),
                      fmtPercent(hpbench::mean(acc)),
                      fmtPercent(hpbench::mean(cov1)),
                      fmtPercent(hpbench::mean(cov2))});
    }
    std::fputs(table.render().c_str(), stdout);

    hpbench::paperFooter(
        "Ablation",
        "(extension beyond the paper) supersede and paced replay are "
        "load-bearing: Section 5.3.4 argues superseding keeps records "
        "representative, Section 5.3.5 that pacing keeps prefetches "
        "within L1-I capacity",
        "rows above: the default should lead; accumulate and unpaced "
        "variants should lose accuracy and/or speedup");
    return 0;
}
