/**
 * @file
 * Figure 10 — percentage of prefetches arriving late (demand hits an
 * in-flight prefetch in the MSHRs). Paper: EFetch 29%, MANA 13%,
 * EIP 7%, Hierarchical 3% on average.
 */

#include <cstdio>

#include "bench_util.hh"

int
main(int argc, char **argv)
{
    hpbench::JsonReportScope report(argc, argv, "fig10_late_prefetches");
    using namespace hp;

    AsciiTable table("Figure 10: late prefetches (hit in MSHR)");
    table.setHeader(
        {"workload", "EFetch", "MANA", "EIP", "Hierarchical"});

    std::vector<RunPair> pairs = Executor::global().runGrid(
        allWorkloads(), hpbench::comparedPrefetchers());

    std::vector<std::vector<double>> cols(4);
    std::size_t next = 0;
    for (const std::string &workload : allWorkloads()) {
        std::vector<std::string> row = {workload};
        for (unsigned c = 0; c < 4; ++c) {
            const RunPair &pair = pairs[next++];
            cols[c].push_back(pair.paired.lateFraction);
            row.push_back(fmtPercent(pair.paired.lateFraction));
        }
        table.addRow(row);
    }
    table.addRow({"MEAN", fmtPercent(hpbench::mean(cols[0])),
                  fmtPercent(hpbench::mean(cols[1])),
                  fmtPercent(hpbench::mean(cols[2])),
                  fmtPercent(hpbench::mean(cols[3]))});
    std::fputs(table.render().c_str(), stdout);

    hpbench::paperFooter(
        "Fig10",
        "late prefetches: EFetch 29%, MANA 13%, EIP 7%, "
        "Hierarchical 3%",
        "MEAN row above — Hierarchical should be the lowest, EFetch "
        "the highest");
    return 0;
}
