/**
 * @file
 * CI check for the warmup checkpoint subsystem: runs a grid whose
 * points share warmup classes twice — cold (plain Simulator, no
 * caches) and through the ExperimentRunner's checkpointed path — and
 * requires bit-identical results: cycles, instructions, and every
 * counter of the StatsSnapshot. The text summary is diffed against a
 * checked-in golden (same discipline as stats_report_check), so the
 * checkpoint machinery can never silently change simulation results.
 */

#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_util.hh"
#include "sim/checkpoint.hh"
#include "sim/simulator.hh"

namespace
{

using namespace hp;

std::string
readFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    std::ostringstream out;
    out << in.rdbuf();
    return out.str();
}

double
secondsSince(std::chrono::steady_clock::time_point start)
{
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start)
        .count();
}

} // namespace

int
main(int argc, char **argv)
{
    hpbench::JsonReportScope report(argc, argv, "checkpoint_equivalence");
    std::string golden_path;
    for (int i = 1; i < argc; ++i) {
        if (std::strncmp(argv[i], "--golden=", 9) == 0)
            golden_path = argv[i] + 9;
    }

    // Grid with deliberate warmup sharing: per prefetcher kind, three
    // measurement lengths fork from one warmed state.
    std::vector<SimConfig> grid;
    for (PrefetcherKind kind :
         {PrefetcherKind::None, PrefetcherKind::Eip,
          PrefetcherKind::Hierarchical}) {
        for (std::uint64_t measure : {200'000, 300'000, 400'000}) {
            SimConfig config;
            config.workload = "caddy";
            config.warmupInsts = 150'000;
            config.measureInsts = measure;
            config.prefetcher = kind;
            if (kind == PrefetcherKind::Hierarchical)
                config.hier.trackBundleStats = true;
            grid.push_back(config);
        }
    }

    // Cold reference: plain single-use Simulators, no caching layer of
    // any kind in the path.
    const auto cold_start = std::chrono::steady_clock::now();
    std::vector<SimMetrics> cold;
    cold.reserve(grid.size());
    for (const SimConfig &config : grid)
        cold.push_back(Simulator(config).run());
    const double cold_seconds = secondsSince(cold_start);

    // Checkpointed path: the runner dedups warmups per class.
    const auto warm_start = std::chrono::steady_clock::now();
    std::vector<SimMetrics> warm = hpbench::runAll(grid);
    const double warm_seconds = secondsSince(warm_start);

    bool ok = true;
    std::ostringstream text;
    text << "checkpoint_equivalence "
            "(caddy, 150k warmup, 3 kinds x 3 measure lengths)\n";
    text << "prefetcher measure cycles instructions l1i_misses match\n";
    for (std::size_t i = 0; i < grid.size(); ++i) {
        const bool match = cold[i].cycles == warm[i].cycles &&
                           cold[i].instructions == warm[i].instructions &&
                           cold[i].stats.entries() ==
                               warm[i].stats.entries();
        if (!match) {
            ok = false;
            std::fprintf(stderr, "MISMATCH at grid point %zu\n", i);
            if (cold[i].stats.size() == warm[i].stats.size()) {
                for (std::size_t e = 0; e < cold[i].stats.size(); ++e) {
                    const auto &c = cold[i].stats.entries()[e];
                    const auto &w = warm[i].stats.entries()[e];
                    if (c != w)
                        std::fprintf(stderr,
                                     "  %s: cold %llu warm %llu\n",
                                     c.first.c_str(),
                                     (unsigned long long)c.second,
                                     (unsigned long long)w.second);
                }
            }
        }
        text << prefetcherName(grid[i].prefetcher) << " "
             << grid[i].measureInsts << " " << cold[i].cycles << " "
             << cold[i].instructions << " "
             << cold[i].mem.demandL1Misses << " "
             << (match ? "yes" : "NO") << "\n";
    }
    std::fputs(text.str().c_str(), stdout);

    if (!golden_path.empty()) {
        const std::string golden = readFile(golden_path);
        if (golden.empty()) {
            std::fprintf(stderr, "cannot read golden file %s\n",
                         golden_path.c_str());
            ok = false;
        } else if (golden != text.str()) {
            std::fprintf(stderr,
                         "summary drifted from golden %s\n"
                         "---- golden ----\n%s"
                         "---- measured ----\n%s",
                         golden_path.c_str(), golden.c_str(),
                         text.str().c_str());
            ok = false;
        }
    }

    std::fprintf(stderr,
                 "grid points: %zu, warmup classes: %zu, "
                 "cold %.2fs vs checkpointed %.2fs\n",
                 grid.size(), CheckpointStore::global().size(),
                 cold_seconds, warm_seconds);

    if (report.enabled())
        report.write();

    std::fprintf(stderr, "checkpoint_equivalence: %s\n",
                 ok ? "OK" : "FAILED");
    return ok ? 0 : 1;
}
