/**
 * @file
 * Figure 17 — Hierarchical Prefetching directed at the L2 instead of
 * the L1-I. Paper: prefetching into the L2 captures most of the L1
 * benefit (+5.8% average, +10% max) while avoiding L1-I thrashing.
 */

#include <cstdio>

#include "bench_util.hh"

int
main(int argc, char **argv)
{
    hpbench::JsonReportScope report(argc, argv, "fig17_l2_prefetch");
    using namespace hp;

    AsciiTable table("Figure 17: Hierarchical prefetching into the L2");
    table.setHeader({"workload", "HP->L1I", "HP->L2"});

    std::vector<SimConfig> grid;
    for (const std::string &workload : allWorkloads()) {
        SimConfig l1cfg =
            defaultConfig(workload, PrefetcherKind::Hierarchical);
        SimConfig l2cfg = l1cfg;
        l2cfg.extPrefetchToL2 = true;
        grid.push_back(std::move(l1cfg));
        grid.push_back(std::move(l2cfg));
    }
    std::vector<RunPair> pairs = hpbench::runPairs(grid);

    std::vector<double> to_l1, to_l2;
    std::size_t next = 0;
    for (const std::string &workload : allWorkloads()) {
        const RunPair &l1pair = pairs[next++];
        const RunPair &l2pair = pairs[next++];

        to_l1.push_back(l1pair.paired.speedup);
        to_l2.push_back(l2pair.paired.speedup);
        table.addRow({workload, fmtPercent(l1pair.paired.speedup),
                      fmtPercent(l2pair.paired.speedup)});
    }
    table.addRow({"MEAN", fmtPercent(hpbench::mean(to_l1)),
                  fmtPercent(hpbench::mean(to_l2))});
    std::fputs(table.render().c_str(), stdout);

    hpbench::paperFooter(
        "Fig17",
        "prefetching into L2 keeps most of the benefit: +5.8% avg "
        "(vs +6.6% into L1-I), up to +10%",
        "MEAN row above — L2-directed gains should be slightly below "
        "the L1-directed ones");
    return 0;
}
