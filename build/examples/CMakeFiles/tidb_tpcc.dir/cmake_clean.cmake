file(REMOVE_RECURSE
  "CMakeFiles/tidb_tpcc.dir/tidb_tpcc.cpp.o"
  "CMakeFiles/tidb_tpcc.dir/tidb_tpcc.cpp.o.d"
  "tidb_tpcc"
  "tidb_tpcc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tidb_tpcc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
