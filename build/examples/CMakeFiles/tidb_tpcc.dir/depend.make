# Empty dependencies file for tidb_tpcc.
# This may be replaced when dependencies are built.
