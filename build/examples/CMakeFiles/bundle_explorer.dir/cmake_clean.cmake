file(REMOVE_RECURSE
  "CMakeFiles/bundle_explorer.dir/bundle_explorer.cpp.o"
  "CMakeFiles/bundle_explorer.dir/bundle_explorer.cpp.o.d"
  "bundle_explorer"
  "bundle_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bundle_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
