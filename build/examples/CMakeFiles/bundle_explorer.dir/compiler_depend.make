# Empty compiler generated dependencies file for bundle_explorer.
# This may be replaced when dependencies are built.
