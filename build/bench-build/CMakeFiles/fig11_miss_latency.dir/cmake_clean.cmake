file(REMOVE_RECURSE
  "../bench/fig11_miss_latency"
  "../bench/fig11_miss_latency.pdb"
  "CMakeFiles/fig11_miss_latency.dir/fig11_miss_latency.cc.o"
  "CMakeFiles/fig11_miss_latency.dir/fig11_miss_latency.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_miss_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
