file(REMOVE_RECURSE
  "../bench/table3_l1i_sweep"
  "../bench/table3_l1i_sweep.pdb"
  "CMakeFiles/table3_l1i_sweep.dir/table3_l1i_sweep.cc.o"
  "CMakeFiles/table3_l1i_sweep.dir/table3_l1i_sweep.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_l1i_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
