# Empty compiler generated dependencies file for table3_l1i_sweep.
# This may be replaced when dependencies are built.
