# Empty compiler generated dependencies file for fig09_ipc_speedup.
# This may be replaced when dependencies are built.
