file(REMOVE_RECURSE
  "../bench/fig09_ipc_speedup"
  "../bench/fig09_ipc_speedup.pdb"
  "CMakeFiles/fig09_ipc_speedup.dir/fig09_ipc_speedup.cc.o"
  "CMakeFiles/fig09_ipc_speedup.dir/fig09_ipc_speedup.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_ipc_speedup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
