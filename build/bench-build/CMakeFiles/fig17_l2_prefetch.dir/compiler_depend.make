# Empty compiler generated dependencies file for fig17_l2_prefetch.
# This may be replaced when dependencies are built.
