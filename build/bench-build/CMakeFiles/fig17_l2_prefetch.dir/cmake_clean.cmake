file(REMOVE_RECURSE
  "../bench/fig17_l2_prefetch"
  "../bench/fig17_l2_prefetch.pdb"
  "CMakeFiles/fig17_l2_prefetch.dir/fig17_l2_prefetch.cc.o"
  "CMakeFiles/fig17_l2_prefetch.dir/fig17_l2_prefetch.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig17_l2_prefetch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
