# Empty compiler generated dependencies file for fig12_long_range.
# This may be replaced when dependencies are built.
