file(REMOVE_RECURSE
  "../bench/fig12_long_range"
  "../bench/fig12_long_range.pdb"
  "CMakeFiles/fig12_long_range.dir/fig12_long_range.cc.o"
  "CMakeFiles/fig12_long_range.dir/fig12_long_range.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_long_range.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
