# Empty dependencies file for fig14_infinite_btb.
# This may be replaced when dependencies are built.
