file(REMOVE_RECURSE
  "../bench/fig14_infinite_btb"
  "../bench/fig14_infinite_btb.pdb"
  "CMakeFiles/fig14_infinite_btb.dir/fig14_infinite_btb.cc.o"
  "CMakeFiles/fig14_infinite_btb.dir/fig14_infinite_btb.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_infinite_btb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
