# Empty dependencies file for table4_bundle_stats.
# This may be replaced when dependencies are built.
