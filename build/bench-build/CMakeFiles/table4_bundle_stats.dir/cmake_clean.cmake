file(REMOVE_RECURSE
  "../bench/table4_bundle_stats"
  "../bench/table4_bundle_stats.pdb"
  "CMakeFiles/table4_bundle_stats.dir/table4_bundle_stats.cc.o"
  "CMakeFiles/table4_bundle_stats.dir/table4_bundle_stats.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_bundle_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
