# Empty dependencies file for fig04_trigger_jaccard.
# This may be replaced when dependencies are built.
