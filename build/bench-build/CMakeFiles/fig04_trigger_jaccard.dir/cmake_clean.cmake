file(REMOVE_RECURSE
  "../bench/fig04_trigger_jaccard"
  "../bench/fig04_trigger_jaccard.pdb"
  "CMakeFiles/fig04_trigger_jaccard.dir/fig04_trigger_jaccard.cc.o"
  "CMakeFiles/fig04_trigger_jaccard.dir/fig04_trigger_jaccard.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig04_trigger_jaccard.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
