# Empty compiler generated dependencies file for fig03_accuracy_coverage.
# This may be replaced when dependencies are built.
