# Empty dependencies file for fig15_ftq_itlb.
# This may be replaced when dependencies are built.
