file(REMOVE_RECURSE
  "../bench/fig15_ftq_itlb"
  "../bench/fig15_ftq_itlb.pdb"
  "CMakeFiles/fig15_ftq_itlb.dir/fig15_ftq_itlb.cc.o"
  "CMakeFiles/fig15_ftq_itlb.dir/fig15_ftq_itlb.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15_ftq_itlb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
