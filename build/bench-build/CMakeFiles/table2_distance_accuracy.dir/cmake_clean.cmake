file(REMOVE_RECURSE
  "../bench/table2_distance_accuracy"
  "../bench/table2_distance_accuracy.pdb"
  "CMakeFiles/table2_distance_accuracy.dir/table2_distance_accuracy.cc.o"
  "CMakeFiles/table2_distance_accuracy.dir/table2_distance_accuracy.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_distance_accuracy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
