# Empty compiler generated dependencies file for table2_distance_accuracy.
# This may be replaced when dependencies are built.
