file(REMOVE_RECURSE
  "../bench/fig13_metadata_sensitivity"
  "../bench/fig13_metadata_sensitivity.pdb"
  "CMakeFiles/fig13_metadata_sensitivity.dir/fig13_metadata_sensitivity.cc.o"
  "CMakeFiles/fig13_metadata_sensitivity.dir/fig13_metadata_sensitivity.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_metadata_sensitivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
