file(REMOVE_RECURSE
  "../bench/fig02_lookahead_sweep"
  "../bench/fig02_lookahead_sweep.pdb"
  "CMakeFiles/fig02_lookahead_sweep.dir/fig02_lookahead_sweep.cc.o"
  "CMakeFiles/fig02_lookahead_sweep.dir/fig02_lookahead_sweep.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig02_lookahead_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
