# Empty compiler generated dependencies file for fig02_lookahead_sweep.
# This may be replaced when dependencies are built.
