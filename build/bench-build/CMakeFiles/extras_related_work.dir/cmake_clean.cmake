file(REMOVE_RECURSE
  "../bench/extras_related_work"
  "../bench/extras_related_work.pdb"
  "CMakeFiles/extras_related_work.dir/extras_related_work.cc.o"
  "CMakeFiles/extras_related_work.dir/extras_related_work.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extras_related_work.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
