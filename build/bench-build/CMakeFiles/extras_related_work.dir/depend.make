# Empty dependencies file for extras_related_work.
# This may be replaced when dependencies are built.
