file(REMOVE_RECURSE
  "../bench/ablation_hierarchical"
  "../bench/ablation_hierarchical.pdb"
  "CMakeFiles/ablation_hierarchical.dir/ablation_hierarchical.cc.o"
  "CMakeFiles/ablation_hierarchical.dir/ablation_hierarchical.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_hierarchical.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
