# Empty compiler generated dependencies file for fig01_stage_footprints.
# This may be replaced when dependencies are built.
