file(REMOVE_RECURSE
  "../bench/fig01_stage_footprints"
  "../bench/fig01_stage_footprints.pdb"
  "CMakeFiles/fig01_stage_footprints.dir/fig01_stage_footprints.cc.o"
  "CMakeFiles/fig01_stage_footprints.dir/fig01_stage_footprints.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig01_stage_footprints.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
