file(REMOVE_RECURSE
  "../bench/fig16_bandwidth"
  "../bench/fig16_bandwidth.pdb"
  "CMakeFiles/fig16_bandwidth.dir/fig16_bandwidth.cc.o"
  "CMakeFiles/fig16_bandwidth.dir/fig16_bandwidth.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig16_bandwidth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
