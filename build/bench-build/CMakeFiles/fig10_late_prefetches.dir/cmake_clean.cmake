file(REMOVE_RECURSE
  "../bench/fig10_late_prefetches"
  "../bench/fig10_late_prefetches.pdb"
  "CMakeFiles/fig10_late_prefetches.dir/fig10_late_prefetches.cc.o"
  "CMakeFiles/fig10_late_prefetches.dir/fig10_late_prefetches.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_late_prefetches.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
