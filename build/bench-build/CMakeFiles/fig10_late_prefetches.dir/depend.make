# Empty dependencies file for fig10_late_prefetches.
# This may be replaced when dependencies are built.
