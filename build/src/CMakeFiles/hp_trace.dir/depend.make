# Empty dependencies file for hp_trace.
# This may be replaced when dependencies are built.
