file(REMOVE_RECURSE
  "CMakeFiles/hp_trace.dir/trace/trace.cc.o"
  "CMakeFiles/hp_trace.dir/trace/trace.cc.o.d"
  "libhp_trace.a"
  "libhp_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hp_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
