file(REMOVE_RECURSE
  "libhp_trace.a"
)
