file(REMOVE_RECURSE
  "libhp_cache.a"
)
