file(REMOVE_RECURSE
  "CMakeFiles/hp_cache.dir/cache/cache.cc.o"
  "CMakeFiles/hp_cache.dir/cache/cache.cc.o.d"
  "CMakeFiles/hp_cache.dir/cache/hierarchy.cc.o"
  "CMakeFiles/hp_cache.dir/cache/hierarchy.cc.o.d"
  "CMakeFiles/hp_cache.dir/cache/reuse_distance.cc.o"
  "CMakeFiles/hp_cache.dir/cache/reuse_distance.cc.o.d"
  "CMakeFiles/hp_cache.dir/cache/tlb.cc.o"
  "CMakeFiles/hp_cache.dir/cache/tlb.cc.o.d"
  "libhp_cache.a"
  "libhp_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hp_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
