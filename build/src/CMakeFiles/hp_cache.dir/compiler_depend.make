# Empty compiler generated dependencies file for hp_cache.
# This may be replaced when dependencies are built.
