file(REMOVE_RECURSE
  "CMakeFiles/hp_binary.dir/binary/call_graph.cc.o"
  "CMakeFiles/hp_binary.dir/binary/call_graph.cc.o.d"
  "CMakeFiles/hp_binary.dir/binary/program.cc.o"
  "CMakeFiles/hp_binary.dir/binary/program.cc.o.d"
  "libhp_binary.a"
  "libhp_binary.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hp_binary.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
