# Empty compiler generated dependencies file for hp_binary.
# This may be replaced when dependencies are built.
