file(REMOVE_RECURSE
  "libhp_binary.a"
)
