file(REMOVE_RECURSE
  "CMakeFiles/hp_sim.dir/sim/footprint_probe.cc.o"
  "CMakeFiles/hp_sim.dir/sim/footprint_probe.cc.o.d"
  "CMakeFiles/hp_sim.dir/sim/metrics.cc.o"
  "CMakeFiles/hp_sim.dir/sim/metrics.cc.o.d"
  "CMakeFiles/hp_sim.dir/sim/runner.cc.o"
  "CMakeFiles/hp_sim.dir/sim/runner.cc.o.d"
  "CMakeFiles/hp_sim.dir/sim/simulator.cc.o"
  "CMakeFiles/hp_sim.dir/sim/simulator.cc.o.d"
  "libhp_sim.a"
  "libhp_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hp_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
