
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/prefetch/efetch.cc" "src/CMakeFiles/hp_prefetch.dir/prefetch/efetch.cc.o" "gcc" "src/CMakeFiles/hp_prefetch.dir/prefetch/efetch.cc.o.d"
  "/root/repo/src/prefetch/eip.cc" "src/CMakeFiles/hp_prefetch.dir/prefetch/eip.cc.o" "gcc" "src/CMakeFiles/hp_prefetch.dir/prefetch/eip.cc.o.d"
  "/root/repo/src/prefetch/mana.cc" "src/CMakeFiles/hp_prefetch.dir/prefetch/mana.cc.o" "gcc" "src/CMakeFiles/hp_prefetch.dir/prefetch/mana.cc.o.d"
  "/root/repo/src/prefetch/rdip.cc" "src/CMakeFiles/hp_prefetch.dir/prefetch/rdip.cc.o" "gcc" "src/CMakeFiles/hp_prefetch.dir/prefetch/rdip.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/hp_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hp_frontend.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hp_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hp_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
