file(REMOVE_RECURSE
  "libhp_prefetch.a"
)
