# Empty dependencies file for hp_prefetch.
# This may be replaced when dependencies are built.
