file(REMOVE_RECURSE
  "CMakeFiles/hp_prefetch.dir/prefetch/efetch.cc.o"
  "CMakeFiles/hp_prefetch.dir/prefetch/efetch.cc.o.d"
  "CMakeFiles/hp_prefetch.dir/prefetch/eip.cc.o"
  "CMakeFiles/hp_prefetch.dir/prefetch/eip.cc.o.d"
  "CMakeFiles/hp_prefetch.dir/prefetch/mana.cc.o"
  "CMakeFiles/hp_prefetch.dir/prefetch/mana.cc.o.d"
  "CMakeFiles/hp_prefetch.dir/prefetch/rdip.cc.o"
  "CMakeFiles/hp_prefetch.dir/prefetch/rdip.cc.o.d"
  "libhp_prefetch.a"
  "libhp_prefetch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hp_prefetch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
