file(REMOVE_RECURSE
  "CMakeFiles/hp_core.dir/core/bundle_analysis.cc.o"
  "CMakeFiles/hp_core.dir/core/bundle_analysis.cc.o.d"
  "CMakeFiles/hp_core.dir/core/compression_buffer.cc.o"
  "CMakeFiles/hp_core.dir/core/compression_buffer.cc.o.d"
  "CMakeFiles/hp_core.dir/core/hierarchical_prefetcher.cc.o"
  "CMakeFiles/hp_core.dir/core/hierarchical_prefetcher.cc.o.d"
  "CMakeFiles/hp_core.dir/core/loader.cc.o"
  "CMakeFiles/hp_core.dir/core/loader.cc.o.d"
  "CMakeFiles/hp_core.dir/core/metadata_buffer.cc.o"
  "CMakeFiles/hp_core.dir/core/metadata_buffer.cc.o.d"
  "CMakeFiles/hp_core.dir/core/metadata_table.cc.o"
  "CMakeFiles/hp_core.dir/core/metadata_table.cc.o.d"
  "libhp_core.a"
  "libhp_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hp_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
