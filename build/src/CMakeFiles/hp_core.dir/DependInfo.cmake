
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/bundle_analysis.cc" "src/CMakeFiles/hp_core.dir/core/bundle_analysis.cc.o" "gcc" "src/CMakeFiles/hp_core.dir/core/bundle_analysis.cc.o.d"
  "/root/repo/src/core/compression_buffer.cc" "src/CMakeFiles/hp_core.dir/core/compression_buffer.cc.o" "gcc" "src/CMakeFiles/hp_core.dir/core/compression_buffer.cc.o.d"
  "/root/repo/src/core/hierarchical_prefetcher.cc" "src/CMakeFiles/hp_core.dir/core/hierarchical_prefetcher.cc.o" "gcc" "src/CMakeFiles/hp_core.dir/core/hierarchical_prefetcher.cc.o.d"
  "/root/repo/src/core/loader.cc" "src/CMakeFiles/hp_core.dir/core/loader.cc.o" "gcc" "src/CMakeFiles/hp_core.dir/core/loader.cc.o.d"
  "/root/repo/src/core/metadata_buffer.cc" "src/CMakeFiles/hp_core.dir/core/metadata_buffer.cc.o" "gcc" "src/CMakeFiles/hp_core.dir/core/metadata_buffer.cc.o.d"
  "/root/repo/src/core/metadata_table.cc" "src/CMakeFiles/hp_core.dir/core/metadata_table.cc.o" "gcc" "src/CMakeFiles/hp_core.dir/core/metadata_table.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/hp_binary.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hp_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hp_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
