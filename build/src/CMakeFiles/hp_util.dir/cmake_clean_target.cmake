file(REMOVE_RECURSE
  "libhp_util.a"
)
