file(REMOVE_RECURSE
  "CMakeFiles/hp_util.dir/util/logging.cc.o"
  "CMakeFiles/hp_util.dir/util/logging.cc.o.d"
  "CMakeFiles/hp_util.dir/util/rng.cc.o"
  "CMakeFiles/hp_util.dir/util/rng.cc.o.d"
  "libhp_util.a"
  "libhp_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hp_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
