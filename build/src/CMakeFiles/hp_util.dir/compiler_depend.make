# Empty compiler generated dependencies file for hp_util.
# This may be replaced when dependencies are built.
