# Empty dependencies file for hp_frontend.
# This may be replaced when dependencies are built.
