file(REMOVE_RECURSE
  "libhp_frontend.a"
)
