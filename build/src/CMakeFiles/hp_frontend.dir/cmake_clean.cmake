file(REMOVE_RECURSE
  "CMakeFiles/hp_frontend.dir/frontend/btb.cc.o"
  "CMakeFiles/hp_frontend.dir/frontend/btb.cc.o.d"
  "CMakeFiles/hp_frontend.dir/frontend/cond_predictor.cc.o"
  "CMakeFiles/hp_frontend.dir/frontend/cond_predictor.cc.o.d"
  "CMakeFiles/hp_frontend.dir/frontend/indirect_predictor.cc.o"
  "CMakeFiles/hp_frontend.dir/frontend/indirect_predictor.cc.o.d"
  "CMakeFiles/hp_frontend.dir/frontend/ras.cc.o"
  "CMakeFiles/hp_frontend.dir/frontend/ras.cc.o.d"
  "libhp_frontend.a"
  "libhp_frontend.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hp_frontend.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
