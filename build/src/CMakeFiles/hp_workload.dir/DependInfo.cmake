
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/app_profile.cc" "src/CMakeFiles/hp_workload.dir/workload/app_profile.cc.o" "gcc" "src/CMakeFiles/hp_workload.dir/workload/app_profile.cc.o.d"
  "/root/repo/src/workload/program_builder.cc" "src/CMakeFiles/hp_workload.dir/workload/program_builder.cc.o" "gcc" "src/CMakeFiles/hp_workload.dir/workload/program_builder.cc.o.d"
  "/root/repo/src/workload/request_engine.cc" "src/CMakeFiles/hp_workload.dir/workload/request_engine.cc.o" "gcc" "src/CMakeFiles/hp_workload.dir/workload/request_engine.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/hp_binary.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hp_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hp_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hp_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
