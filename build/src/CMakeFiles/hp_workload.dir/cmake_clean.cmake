file(REMOVE_RECURSE
  "CMakeFiles/hp_workload.dir/workload/app_profile.cc.o"
  "CMakeFiles/hp_workload.dir/workload/app_profile.cc.o.d"
  "CMakeFiles/hp_workload.dir/workload/program_builder.cc.o"
  "CMakeFiles/hp_workload.dir/workload/program_builder.cc.o.d"
  "CMakeFiles/hp_workload.dir/workload/request_engine.cc.o"
  "CMakeFiles/hp_workload.dir/workload/request_engine.cc.o.d"
  "libhp_workload.a"
  "libhp_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hp_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
