file(REMOVE_RECURSE
  "CMakeFiles/core_test.dir/core/bundle_analysis_test.cc.o"
  "CMakeFiles/core_test.dir/core/bundle_analysis_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/bundle_param_test.cc.o"
  "CMakeFiles/core_test.dir/core/bundle_param_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/compression_buffer_test.cc.o"
  "CMakeFiles/core_test.dir/core/compression_buffer_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/hierarchical_prefetcher_test.cc.o"
  "CMakeFiles/core_test.dir/core/hierarchical_prefetcher_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/loader_test.cc.o"
  "CMakeFiles/core_test.dir/core/loader_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/metadata_buffer_test.cc.o"
  "CMakeFiles/core_test.dir/core/metadata_buffer_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/metadata_table_test.cc.o"
  "CMakeFiles/core_test.dir/core/metadata_table_test.cc.o.d"
  "core_test"
  "core_test.pdb"
  "core_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
