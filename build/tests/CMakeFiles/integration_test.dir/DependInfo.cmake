
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/integration/end_to_end_test.cc" "tests/CMakeFiles/integration_test.dir/integration/end_to_end_test.cc.o" "gcc" "tests/CMakeFiles/integration_test.dir/integration/end_to_end_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/hp_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hp_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hp_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hp_prefetch.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hp_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hp_frontend.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hp_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hp_binary.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hp_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hp_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
