file(REMOVE_RECURSE
  "CMakeFiles/binary_test.dir/binary/call_graph_test.cc.o"
  "CMakeFiles/binary_test.dir/binary/call_graph_test.cc.o.d"
  "CMakeFiles/binary_test.dir/binary/program_test.cc.o"
  "CMakeFiles/binary_test.dir/binary/program_test.cc.o.d"
  "binary_test"
  "binary_test.pdb"
  "binary_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/binary_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
