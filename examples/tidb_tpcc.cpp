/**
 * @file
 * The paper's motivating scenario (Sections 1 and 3): TiDB processing
 * TPC-C statements. Walks through the full story on one workload:
 *
 *  1. the staged life cycle of a statement and each stage's
 *     instruction working set (Figure 1);
 *  2. why that defeats fine-grained prefetchers (long reuse distances
 *     between recurrences of a functionality);
 *  3. what Hierarchical Prefetching does about it — Bundle formation
 *     at link time, then record-and-replay at run time — and what it
 *     buys end to end.
 */

#include <cstdio>
#include <unordered_set>

#include "sim/runner.hh"
#include "stats/table.hh"
#include "workload/request_engine.hh"

namespace
{

using namespace hp;

/** Stage working sets plus the interval between type recurrences. */
void
characterize(const AppProfile &profile,
             std::shared_ptr<const BuiltApp> app)
{
    RequestEngine engine(app, profile);
    constexpr std::uint64_t kInsts = 3'000'000;

    std::vector<Accumulator> stage_blocks(profile.numStages);
    std::vector<std::uint64_t> last_seen(profile.requestTypes, 0);
    Accumulator recurrence_gap;

    std::unordered_set<Addr> footprint;
    int stage = -1;
    std::uint64_t seq = 0;

    DynInst inst;
    for (std::uint64_t i = 0; i < kInsts && engine.next(inst);
         ++i, ++seq) {
        if (inst.marker == StreamMarker::StageBegin ||
            inst.marker == StreamMarker::RequestBegin) {
            if (stage >= 0 && !footprint.empty())
                stage_blocks[stage].sample(double(footprint.size()));
            footprint.clear();
            stage = inst.marker == StreamMarker::StageBegin
                ? inst.markerArg : -1;
        }
        if (inst.marker == StreamMarker::RequestBegin) {
            unsigned type = engine.currentType();
            if (last_seen[type] != 0)
                recurrence_gap.sample(double(seq - last_seen[type]));
            last_seen[type] = seq;
        }
        if (stage >= 0)
            footprint.insert(blockAlign(inst.pc));
    }

    const char *names[] = {"Read", "Dispatch", "Compile", "Optimize",
                           "Exec", "Commit", "Finish"};
    std::printf("statement life cycle (cf. Figure 1):\n");
    for (unsigned s = 0; s < profile.numStages; ++s) {
        std::printf("  %-9s %8s working set  (%llu executions)\n",
                    names[s],
                    fmtBytes(stage_blocks[s].mean() * kBlockBytes)
                        .c_str(),
                    (unsigned long long)stage_blocks[s].count());
    }
    std::printf(
        "\nsame statement type recurs every %.2fM instructions on\n"
        "average - far beyond what any I-cache retains, and beyond\n"
        "the lookahead of fine-grained record-and-replay prefetchers.\n",
        recurrence_gap.mean() / 1e6);
}

} // namespace

int
main()
{
    const AppProfile &profile = appProfile("tidb-tpcc");
    auto app = ProgramBuilder::cached(profile);

    std::printf("== TiDB under TPC-C ==\n\n");
    characterize(profile, app);

    // Link-time Bundle formation.
    std::printf("\nlink-time analysis: %zu of %zu functions (%s) are "
                "Bundle entry points\n",
                app->image.analysis.entries.size(),
                app->program.numFunctions(),
                fmtPercent(app->image.analysis.entryFraction).c_str());

    // End-to-end comparison.
    std::printf("\nsimulating FDIP baseline, EIP and Hierarchical "
                "Prefetching...\n\n");
    RunPair hier = ExperimentRunner::runPair(
        defaultConfig("tidb-tpcc", PrefetcherKind::Hierarchical));
    RunPair eip = ExperimentRunner::runPair(
        defaultConfig("tidb-tpcc", PrefetcherKind::Eip));

    AsciiTable table;
    table.setHeader({"", "EIP (40KB)", "Hierarchical (1.94KB)"});
    table.addRow({"IPC speedup", fmtPercent(eip.paired.speedup),
                  fmtPercent(hier.paired.speedup)});
    table.addRow({"L2 coverage", fmtPercent(eip.paired.coverageL2),
                  fmtPercent(hier.paired.coverageL2)});
    table.addRow({"prefetch distance",
                  fmtDouble(eip.paired.avgDistance, 0) + " blocks",
                  fmtDouble(hier.paired.avgDistance, 0) + " blocks"});
    table.addRow({"late prefetches",
                  fmtPercent(eip.paired.lateFraction),
                  fmtPercent(hier.paired.lateFraction)});
    std::fputs(table.render().c_str(), stdout);

    std::printf("\nBundles executed: %llu avg footprint %s, avg %0.f "
                "cycles, footprint similarity %.2f\n",
                (unsigned long long)hier.run.hier.bundlesStarted,
                fmtBytes(hier.run.hier.bundleFootprintBlocks.mean() *
                         kBlockBytes).c_str(),
                hier.run.hier.bundleExecCycles.mean(),
                hier.run.hier.bundleJaccard.mean());
    return 0;
}
