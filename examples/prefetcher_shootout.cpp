/**
 * @file
 * Prefetcher shootout: runs every prefetcher (and the perfect-L1-I
 * upper bound) on one workload and prints a detailed comparison —
 * IPC, speedup over FDIP, accuracy/coverage, late prefetches, prefetch
 * distance, on-chip storage, and the front-end stall breakdown.
 *
 * Usage: prefetcher_shootout [workload]   (default: tidb-tpcc)
 */

#include <cstdio>
#include <string>

#include "sim/runner.hh"
#include "stats/table.hh"

int
main(int argc, char **argv)
{
    std::string workload = argc > 1 ? argv[1] : "tidb-tpcc";

    const hp::PrefetcherKind kinds[] = {
        hp::PrefetcherKind::None,        hp::PrefetcherKind::EFetch,
        hp::PrefetcherKind::Mana,        hp::PrefetcherKind::Eip,
        hp::PrefetcherKind::Hierarchical,
        hp::PrefetcherKind::PerfectL1I,
    };

    hp::AsciiTable table("Prefetcher shootout: " + workload);
    table.setHeader({"prefetcher", "IPC", "speedup", "acc", "covL1",
                     "covL2", "late", "dist", "storage", "L1Imiss/ki",
                     "L2miss/ki", "fe-stall", "be-stall"});

    for (hp::PrefetcherKind kind : kinds) {
        hp::SimConfig config = hp::defaultConfig(workload, kind);
        hp::RunPair pair = hp::ExperimentRunner::runPair(config);
        const hp::SimMetrics &m = pair.run;

        hp::NullMetadataMemory null_mem;
        auto pf = hp::makePrefetcher(config, null_mem);
        double storage_kb =
            pf ? double(pf->storageBits()) / 8.0 / 1024.0 : 0.0;

        double ki = double(m.instructions) / 1000.0;
        table.addRow({
            hp::prefetcherName(kind),
            hp::fmtDouble(m.ipc(), 3),
            hp::fmtPercent(pair.paired.speedup),
            hp::fmtPercent(pair.paired.accuracy),
            hp::fmtPercent(pair.paired.coverageL1),
            hp::fmtPercent(pair.paired.coverageL2),
            hp::fmtPercent(pair.paired.lateFraction),
            hp::fmtDouble(pair.paired.avgDistance, 1),
            hp::fmtDouble(storage_kb, 1) + "KB",
            hp::fmtDouble(double(m.mem.demandL1Misses) / ki, 2),
            hp::fmtDouble(double(m.mem.demandL2Misses) / ki, 2),
            hp::fmtDouble(double(m.fetchStallCycles) / m.cycles, 2),
            hp::fmtDouble(double(m.backendStallCycles) / m.cycles, 2),
        });
    }
    std::fputs(table.render().c_str(), stdout);

    // Front-end detail of the baseline.
    hp::SimConfig base = hp::defaultConfig(workload);
    const hp::SimMetrics &b = hp::ExperimentRunner::run(base);
    double ki = double(b.instructions) / 1000.0;
    std::printf(
        "\nbaseline detail: %.2f cond-MPKI, %.2f indirect-MPKI, "
        "%.2f RAS-MPKI, %.2f BTB-miss/ki, %.2f iTLB-miss/ki\n",
        double(b.condMispredicts) / ki,
        double(b.indirectMispredicts) / ki,
        double(b.rasMispredicts) / ki, double(b.btbMissBlocks) / ki,
        double(b.itlbMisses) / ki);
    std::printf("requests: %llu (avg %.0f insts)\n",
                (unsigned long long)b.engine.requests,
                b.engine.requests
                    ? double(b.engine.instructions) / b.engine.requests
                    : 0.0);
    std::printf("miss cycles: L2 %llu, LLC %llu, mem %llu, mshr %llu\n",
                (unsigned long long)b.mem.missCyclesL2,
                (unsigned long long)b.mem.missCyclesLlc,
                (unsigned long long)b.mem.missCyclesMem,
                (unsigned long long)b.mem.missCyclesMshr);
    return 0;
}
