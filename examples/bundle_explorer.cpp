/**
 * @file
 * Bundle explorer: runs the link-time analysis on a workload's binary
 * and prints the static picture — reachable-size distribution, Bundle
 * entry points by module class, and the largest Bundles. A diagnostic
 * companion to the quickstart example.
 *
 * Usage: bundle_explorer [workload]   (default: tidb-tpcc)
 */

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "binary/call_graph.hh"
#include "stats/table.hh"
#include "workload/program_builder.hh"

namespace
{

const char *
moduleClass(const hp::Program &program, hp::FuncId f)
{
    const std::string &name = program.func(f).name;
    if (name.rfind("lib", 0) == 0)
        return "cold-library";
    if (name.rfind("util_", 0) == 0)
        return "shared-runtime";
    if (name.rfind("irq", 0) == 0)
        return "kernel";
    if (name.find("_dispatch") != std::string::npos)
        return "stage-dispatcher";
    if (name.find("_root") != std::string::npos ||
        name.find("_r") != std::string::npos)
        return "hot-routine";
    return "driver";
}

} // namespace

int
main(int argc, char **argv)
{
    std::string workload = argc > 1 ? argv[1] : "tidb-tpcc";
    const hp::AppProfile &profile = hp::appProfile(workload);
    auto app = hp::ProgramBuilder::cached(profile);
    const hp::BundleAnalysis &analysis = app->image.analysis;

    std::printf("== %s: static Bundle analysis ==\n",
                profile.binary.c_str());
    std::printf("functions %zu, code %s, entries %zu (%s)\n\n",
                app->program.numFunctions(),
                hp::fmtBytes(double(app->program.totalCodeBytes()))
                    .c_str(),
                analysis.entries.size(),
                hp::fmtPercent(analysis.entryFraction).c_str());

    // Reachable-size distribution.
    std::vector<std::uint64_t> sizes = analysis.reachableSizes;
    std::sort(sizes.begin(), sizes.end());
    auto pct = [&sizes](double q) {
        return double(sizes[std::size_t(q * (sizes.size() - 1))]);
    };
    std::printf("reachable size: p50 %s  p90 %s  p99 %s  max %s\n",
                hp::fmtBytes(pct(0.50)).c_str(),
                hp::fmtBytes(pct(0.90)).c_str(),
                hp::fmtBytes(pct(0.99)).c_str(),
                hp::fmtBytes(pct(1.0)).c_str());
    std::size_t over = 0;
    for (std::uint64_t s : sizes)
        over += s >= hp::kDefaultBundleThreshold;
    std::printf("functions >= 200KB reachable: %zu (%s)\n\n", over,
                hp::fmtPercent(double(over) / sizes.size()).c_str());

    // Entries by module class.
    hp::AsciiTable table("Bundle entries by code class");
    table.setHeader({"class", "entries"});
    std::vector<std::pair<std::string, unsigned>> classes;
    for (hp::FuncId f : analysis.entries) {
        std::string cls = moduleClass(app->program, f);
        auto it = std::find_if(classes.begin(), classes.end(),
                               [&cls](const auto &p) {
                                   return p.first == cls;
                               });
        if (it == classes.end())
            classes.emplace_back(cls, 1);
        else
            ++it->second;
    }
    for (const auto &[cls, count] : classes)
        table.addRow({cls, std::to_string(count)});
    std::fputs(table.render().c_str(), stdout);

    // Largest Bundles.
    std::vector<hp::FuncId> entries = analysis.entries;
    std::sort(entries.begin(), entries.end(),
              [&analysis](hp::FuncId a, hp::FuncId b) {
                  return analysis.reachableSizes[a] >
                         analysis.reachableSizes[b];
              });
    std::printf("\nlargest Bundle entry points:\n");
    for (std::size_t i = 0; i < std::min<std::size_t>(8, entries.size());
         ++i) {
        hp::FuncId f = entries[i];
        std::printf("  %-28s %s\n",
                    app->program.func(f).name.c_str(),
                    hp::fmtBytes(
                        double(analysis.reachableSizes[f])).c_str());
    }
    return 0;
}
