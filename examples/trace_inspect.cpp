/**
 * @file
 * Trace tooling example: capture a workload's instruction stream to a
 * binary trace file, read it back, and print summary statistics —
 * demonstrating the trace interchange path (capture once, replay
 * anywhere) that the TraceReader/TraceWriter pair provides.
 *
 * Usage: trace_inspect [workload] [insts] [path]
 */

#include <cstdio>
#include <cstdlib>
#include <string>
#include <unordered_set>

#include "stats/table.hh"
#include "trace/trace.hh"
#include "workload/request_engine.hh"

int
main(int argc, char **argv)
{
    using namespace hp;

    std::string workload = argc > 1 ? argv[1] : "caddy";
    std::uint64_t insts =
        argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 500'000;
    std::string path =
        argc > 3 ? argv[3] : "/tmp/hp_" + workload + ".hpt";

    const AppProfile &profile = appProfile(workload);
    auto app = ProgramBuilder::cached(profile);

    // Capture.
    {
        RequestEngine engine(app, profile);
        TraceWriter writer(path);
        DynInst inst;
        for (std::uint64_t i = 0; i < insts && engine.next(inst); ++i)
            writer.write(inst);
        writer.close();
        std::printf("captured %llu instructions of %s to %s\n",
                    (unsigned long long)writer.written(),
                    workload.c_str(), path.c_str());
    }

    // Replay + inspect.
    TraceReader reader(path);
    std::uint64_t calls = 0, returns = 0, branches = 0, taken = 0;
    std::uint64_t tagged = 0, requests = 0;
    std::unordered_set<Addr> blocks, pages;
    DynInst inst;
    while (reader.next(inst)) {
        blocks.insert(blockAlign(inst.pc));
        pages.insert(pageAlign(inst.pc));
        switch (inst.kind) {
          case InstKind::Call:
          case InstKind::IndirectCall:
            ++calls;
            break;
          case InstKind::Return:
            ++returns;
            break;
          case InstKind::CondBranch:
            ++branches;
            taken += inst.taken;
            break;
          default:
            break;
        }
        tagged += inst.tagged;
        requests += inst.marker == StreamMarker::RequestBegin;
    }

    double n = double(reader.consumed());
    AsciiTable table("trace summary: " + path);
    table.setHeader({"metric", "value"});
    table.addRow({"instructions", std::to_string(reader.consumed())});
    table.addRow({"requests", std::to_string(requests)});
    table.addRow({"calls / kilo-inst",
                  fmtDouble(calls / n * 1000.0, 1)});
    table.addRow({"returns / kilo-inst",
                  fmtDouble(returns / n * 1000.0, 1)});
    table.addRow({"cond branches / kilo-inst",
                  fmtDouble(branches / n * 1000.0, 1)});
    table.addRow({"taken rate",
                  fmtPercent(branches ? double(taken) / branches : 0)});
    table.addRow({"tagged (Bundle) insts", std::to_string(tagged)});
    table.addRow({"code footprint",
                  fmtBytes(double(blocks.size()) * kBlockBytes)});
    table.addRow({"code pages", std::to_string(pages.size())});
    std::fputs(table.render().c_str(), stdout);
    return 0;
}
