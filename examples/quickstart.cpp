/**
 * @file
 * Quickstart: build a synthetic server application, run the paper's
 * link-time Bundle analysis on it, then simulate the FDIP baseline and
 * the Hierarchical Prefetcher and compare.
 *
 * Usage: quickstart [workload]   (default: tidb-tpcc)
 */

#include <cstdio>
#include <string>

#include "sim/runner.hh"
#include "stats/table.hh"
#include "workload/program_builder.hh"

int
main(int argc, char **argv)
{
    std::string workload = argc > 1 ? argv[1] : "tidb-tpcc";

    // 1. Build (and link + tag) the application image.
    const hp::AppProfile &profile = hp::appProfile(workload);
    auto app = hp::ProgramBuilder::cached(profile);

    std::printf("== %s (binary: %s) ==\n", profile.name.c_str(),
                profile.binary.c_str());
    std::printf("functions:        %zu\n", app->program.numFunctions());
    std::printf("code size:        %s\n",
                hp::fmtBytes(double(app->program.totalCodeBytes()))
                    .c_str());
    std::printf("bundle entries:   %zu (%s of functions)\n",
                app->image.analysis.entries.size(),
                hp::fmtPercent(app->image.analysis.entryFraction)
                    .c_str());
    std::printf("tagged call/rets: %zu\n\n", app->image.tags.size());

    // 2. Simulate: FDIP baseline vs Hierarchical Prefetching.
    hp::SimConfig config =
        hp::defaultConfig(workload, hp::PrefetcherKind::Hierarchical);
    hp::RunPair pair = hp::ExperimentRunner::runPair(config);

    hp::NullMetadataMemory null_memory;
    hp::HierarchicalPrefetcher probe(config.hier, null_memory);

    std::printf("FDIP baseline IPC:  %.3f\n", pair.base.ipc());
    std::printf("Hierarchical IPC:   %.3f  (%+.1f%%)\n", pair.run.ipc(),
                pair.paired.speedup * 100.0);
    std::printf("L1-I coverage:      %s\n",
                hp::fmtPercent(pair.paired.coverageL1).c_str());
    std::printf("accuracy:           %s\n",
                hp::fmtPercent(pair.paired.accuracy).c_str());
    std::printf("late prefetches:    %s\n",
                hp::fmtPercent(pair.paired.lateFraction).c_str());
    std::printf("prefetch distance:  %.0f blocks\n",
                pair.paired.avgDistance);
    std::printf("on-chip storage:    %.2f KB\n",
                double(probe.storageBits()) / 8.0 / 1024.0);
    std::printf("\nbundles started:    %llu (MAT hit rate %s)\n",
                (unsigned long long)pair.run.hier.bundlesStarted,
                hp::fmtPercent(
                    pair.run.hier.bundlesStarted
                        ? double(pair.run.hier.matHits) /
                              double(pair.run.hier.bundlesStarted)
                        : 0.0)
                    .c_str());
    std::printf("bundle exec insts:  %.0f avg\n",
                pair.run.hier.bundleExecInsts.mean());
    std::printf("bundle exec cycles: %.0f avg\n",
                pair.run.hier.bundleExecCycles.mean());
    std::printf("bundle footprint:   %s avg\n",
                hp::fmtBytes(pair.run.hier.bundleFootprintBlocks.mean() *
                             hp::kBlockBytes)
                    .c_str());
    std::printf("bundle Jaccard:     %.3f avg\n",
                pair.run.hier.bundleJaccard.mean());

    const hp::PrefetchStats &ext = pair.run.mem.ext;
    std::printf("\next prefetch: issued %llu, redundant %llu, dropped "
                "%llu,\n  inserted %llu, usefulL1 %llu, usefulL2 %llu, "
                "late %llu, uselessEvicted %llu\n",
                (unsigned long long)ext.issued,
                (unsigned long long)ext.redundant,
                (unsigned long long)ext.dropped,
                (unsigned long long)ext.inserted,
                (unsigned long long)ext.usefulL1,
                (unsigned long long)ext.usefulL2,
                (unsigned long long)ext.lateMerges,
                (unsigned long long)ext.uselessEvicted);
    std::printf("replay: started %llu, pushes %llu, regions %llu, "
                "segs alloc %llu, truncated %llu\n",
                (unsigned long long)pair.run.hier.replaysStarted,
                (unsigned long long)pair.run.hier.replayPrefetches,
                (unsigned long long)pair.run.hier.regionsRecorded,
                (unsigned long long)pair.run.hier.segmentsAllocated,
                (unsigned long long)pair.run.hier.recordsTruncated);
    return 0;
}
