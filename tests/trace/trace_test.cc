#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "trace/trace.hh"
#include "workload/request_engine.hh"

namespace hp
{
namespace
{

std::string
tempPath(const std::string &name)
{
    return std::string(::testing::TempDir()) + "/" + name;
}

DynInst
sample(unsigned i)
{
    DynInst inst;
    inst.pc = 0x400000 + i * 4;
    inst.target = (i % 3 == 0) ? 0x500000 + i : 0;
    inst.func = i * 7;
    inst.kind = static_cast<InstKind>(i % 7);
    inst.taken = (i % 2) != 0;
    inst.tagged = (i % 5) == 0;
    inst.marker = static_cast<StreamMarker>(i % 3);
    inst.markerArg = static_cast<std::uint16_t>(i % 11);
    return inst;
}

TEST(TraceTest, RoundTripPreservesEveryField)
{
    std::string path = tempPath("roundtrip.hpt");
    constexpr unsigned kCount = 1000;
    {
        TraceWriter writer(path);
        for (unsigned i = 0; i < kCount; ++i)
            writer.write(sample(i));
        writer.close();
        EXPECT_EQ(writer.written(), kCount);
    }

    TraceReader reader(path);
    EXPECT_EQ(reader.total(), kCount);
    DynInst inst;
    for (unsigned i = 0; i < kCount; ++i) {
        ASSERT_TRUE(reader.next(inst));
        DynInst expect = sample(i);
        EXPECT_EQ(inst.pc, expect.pc);
        EXPECT_EQ(inst.target, expect.target);
        EXPECT_EQ(inst.func, expect.func);
        EXPECT_EQ(static_cast<int>(inst.kind),
                  static_cast<int>(expect.kind));
        EXPECT_EQ(inst.taken, expect.taken);
        EXPECT_EQ(inst.tagged, expect.tagged);
        EXPECT_EQ(static_cast<int>(inst.marker),
                  static_cast<int>(expect.marker));
        EXPECT_EQ(inst.markerArg, expect.markerArg);
    }
    EXPECT_FALSE(reader.next(inst));
    std::remove(path.c_str());
}

TEST(TraceTest, EmptyTrace)
{
    std::string path = tempPath("empty.hpt");
    {
        TraceWriter writer(path);
        writer.close();
    }
    TraceReader reader(path);
    EXPECT_EQ(reader.total(), 0u);
    DynInst inst;
    EXPECT_FALSE(reader.next(inst));
    std::remove(path.c_str());
}

TEST(TraceTest, DestructorFinalizesHeader)
{
    std::string path = tempPath("dtor.hpt");
    {
        TraceWriter writer(path);
        writer.write(sample(0));
        // No explicit close: the destructor must finalize the count.
    }
    TraceReader reader(path);
    EXPECT_EQ(reader.total(), 1u);
    std::remove(path.c_str());
}

TEST(TraceDeathTest, RejectsGarbageFile)
{
    std::string path = tempPath("garbage.hpt");
    std::FILE *f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    const char junk[] = "this is not a trace file at all......";
    std::fwrite(junk, 1, sizeof(junk), f);
    std::fclose(f);
    EXPECT_DEATH({ TraceReader reader(path); }, "not a trace file");
    std::remove(path.c_str());
}

TEST(TraceTest, EngineStreamRoundTrip)
{
    // Capture a real engine stream and replay it: both streams must be
    // instruction-identical (traces are the interchange format).
    const AppProfile &profile = appProfile("caddy");
    auto app = ProgramBuilder::cached(profile);

    std::string path = tempPath("engine.hpt");
    constexpr unsigned kCount = 20000;
    {
        RequestEngine engine(app, profile);
        TraceWriter writer(path);
        DynInst inst;
        for (unsigned i = 0; i < kCount; ++i) {
            ASSERT_TRUE(engine.next(inst));
            writer.write(inst);
        }
    }

    RequestEngine engine(app, profile);
    TraceReader reader(path);
    DynInst live, replayed;
    for (unsigned i = 0; i < kCount; ++i) {
        ASSERT_TRUE(engine.next(live));
        ASSERT_TRUE(reader.next(replayed));
        ASSERT_EQ(live.pc, replayed.pc);
        ASSERT_EQ(live.target, replayed.target);
        ASSERT_EQ(live.tagged, replayed.tagged);
    }
    std::remove(path.c_str());
}

} // namespace
} // namespace hp
