#include <gtest/gtest.h>

#include <set>

#include "util/hash.hh"
#include "util/types.hh"

namespace hp
{
namespace
{

TEST(HashTest, Mix64IsDeterministic)
{
    EXPECT_EQ(mix64(42), mix64(42));
    EXPECT_NE(mix64(42), mix64(43));
}

TEST(HashTest, Mix64SpreadsSequentialInputs)
{
    // Sequential addresses must not collide in the low bits (table
    // indexing depends on it).
    std::set<std::uint64_t> low_bits;
    for (std::uint64_t i = 0; i < 512; ++i)
        low_bits.insert(mix64(i * 4) & 0x3ff);
    EXPECT_GT(low_bits.size(), 300u);
}

TEST(HashTest, HashCombineOrderMatters)
{
    std::uint64_t ab = hashCombine(hashCombine(0, 1), 2);
    std::uint64_t ba = hashCombine(hashCombine(0, 2), 1);
    EXPECT_NE(ab, ba);
}

TEST(HashTest, FoldToRespectsWidth)
{
    for (unsigned bits : {1u, 8u, 24u, 63u}) {
        for (std::uint64_t v :
             {0ull, 1ull, 0xdeadbeefull, ~0ull}) {
            EXPECT_LT(foldTo(v, bits), 1ull << bits);
        }
    }
}

TEST(HashTest, FoldToPreservesEntropyAt24Bits)
{
    // Bundle IDs are 24-bit folds of mixed addresses; a thousand
    // distinct addresses must map to mostly distinct IDs.
    std::set<std::uint64_t> ids;
    for (std::uint64_t pc = 0x400000; pc < 0x400000 + 1000 * 4; pc += 4)
        ids.insert(foldTo(mix64(pc), 24));
    EXPECT_GT(ids.size(), 990u);
}

TEST(TypesTest, BlockMath)
{
    EXPECT_EQ(blockAlign(0x1000), 0x1000u);
    EXPECT_EQ(blockAlign(0x103f), 0x1000u);
    EXPECT_EQ(blockAlign(0x1040), 0x1040u);
    EXPECT_EQ(blockNumber(0x1040), 0x41u);
    EXPECT_EQ(pageAlign(0x1fff), 0x1000u);
    EXPECT_EQ(roundUp(15, 16), 16u);
    EXPECT_EQ(roundUp(16, 16), 16u);
    EXPECT_EQ(roundUp(17, 16), 32u);
}

} // namespace
} // namespace hp
