/**
 * @file
 * Unit tests for the canonical state-serialization layer: scalar
 * encodings, container adapters, the sorted canonical form of
 * unordered containers, and loader failure behavior on truncation.
 */

#include <gtest/gtest.h>

#include <deque>
#include <list>
#include <map>
#include <unordered_map>
#include <unordered_set>

#include "util/serialize.hh"

namespace hp
{
namespace
{

template <typename T>
std::vector<std::uint8_t>
writeOne(const T &v)
{
    StateWriter writer;
    io(writer, const_cast<T &>(v));
    return writer.take();
}

template <typename T>
T
readOne(const std::vector<std::uint8_t> &bytes)
{
    T v{};
    StateLoader loader(bytes.data(), bytes.size());
    io(loader, v);
    EXPECT_FALSE(loader.failed());
    EXPECT_EQ(loader.remaining(), 0u);
    return v;
}

template <typename T>
void
expectRoundTrip(const T &v)
{
    EXPECT_EQ(readOne<T>(writeOne(v)), v);
}

TEST(SerializeTest, ScalarEncodingsAreFixedWidthLittleEndian)
{
    EXPECT_EQ(writeOne(std::uint64_t(0x0102030405060708ULL)),
              (std::vector<std::uint8_t>{8, 7, 6, 5, 4, 3, 2, 1}));
    EXPECT_EQ(writeOne(std::uint32_t(0xaabbccdd)),
              (std::vector<std::uint8_t>{0xdd, 0xcc, 0xbb, 0xaa}));
    EXPECT_EQ(writeOne(true), std::vector<std::uint8_t>{1});
    EXPECT_EQ(writeOne(false), std::vector<std::uint8_t>{0});
    EXPECT_EQ(writeOne(std::uint8_t(0x7f)), std::vector<std::uint8_t>{0x7f});
}

TEST(SerializeTest, ScalarsRoundTrip)
{
    expectRoundTrip(std::uint64_t(~0ULL));
    expectRoundTrip(std::int64_t(-1234567890123));
    expectRoundTrip(std::uint16_t(0xbeef));
    expectRoundTrip(-0.0);
    expectRoundTrip(3.141592653589793);
    enum class Color : std::uint8_t { Red, Green, Blue };
    expectRoundTrip(Color::Blue);
}

TEST(SerializeTest, ContainersRoundTrip)
{
    expectRoundTrip(std::string("hello\0world", 11));
    expectRoundTrip(std::vector<std::uint64_t>{1, 2, 3});
    expectRoundTrip(std::vector<std::uint64_t>{});
    expectRoundTrip(std::deque<std::uint32_t>{9, 8, 7});
    expectRoundTrip(std::list<std::uint64_t>{5, 6});
    expectRoundTrip(std::array<std::uint16_t, 3>{{1, 2, 3}});
    expectRoundTrip(std::pair<std::uint32_t, bool>{7, true});
    expectRoundTrip(
        std::unordered_map<std::uint64_t, std::uint32_t>{{3, 30}, {1, 10}});
    expectRoundTrip(std::unordered_set<std::uint64_t>{5, 2, 9});
}

TEST(SerializeTest, UnorderedContainersEncodeCanonically)
{
    // Same logical contents inserted in different orders must produce
    // identical bytes — the blob is key-sorted, not iteration-ordered.
    std::unordered_map<std::uint64_t, std::uint32_t> a, b;
    for (std::uint64_t k = 0; k < 50; ++k)
        a[k] = std::uint32_t(k * 3);
    for (std::uint64_t k = 50; k-- > 0;)
        b[k] = std::uint32_t(k * 3);
    EXPECT_EQ(writeOne(a), writeOne(b));
}

TEST(SerializeTest, MultimapPreservesEqualKeyOrder)
{
    // completions_ in the hierarchy pops equal-cycle entries in
    // insertion order; the codec must not reshuffle them.
    std::multimap<std::uint64_t, std::uint32_t> m;
    m.emplace_hint(m.end(), 5, 1);
    m.emplace_hint(m.end(), 5, 2);
    m.emplace_hint(m.end(), 5, 3);
    m.emplace_hint(m.end(), 9, 4);
    auto back = readOne<std::multimap<std::uint64_t, std::uint32_t>>(
        writeOne(m));
    std::vector<std::uint32_t> order;
    for (const auto &[k, v] : back)
        order.push_back(v);
    EXPECT_EQ(order, (std::vector<std::uint32_t>{1, 2, 3, 4}));
}

TEST(SerializeTest, LoaderFailsCleanlyOnTruncation)
{
    const std::vector<std::uint8_t> bytes =
        writeOne(std::vector<std::uint64_t>{1, 2, 3});
    for (std::size_t n = 0; n < bytes.size(); ++n) {
        StateLoader loader(bytes.data(), n);
        std::vector<std::uint64_t> v;
        io(loader, v);
        EXPECT_TRUE(loader.failed()) << "prefix " << n;
    }
}

struct Inner
{
    std::uint32_t x = 0;
    bool flag = false;
    template <class Ar>
    void
    serializeState(Ar &ar)
    {
        ar.value(x);
        ar.value(flag);
    }
};

TEST(SerializeTest, NestedStateObjectsCompose)
{
    std::vector<Inner> v{{1, true}, {2, false}};
    StateWriter writer;
    io(writer, v);
    const std::vector<std::uint8_t> bytes = writer.take();
    std::vector<Inner> back;
    StateLoader loader(bytes.data(), bytes.size());
    io(loader, back);
    ASSERT_FALSE(loader.failed());
    ASSERT_EQ(back.size(), 2u);
    EXPECT_EQ(back[0].x, 1u);
    EXPECT_TRUE(back[0].flag);
    EXPECT_EQ(back[1].x, 2u);
    EXPECT_FALSE(back[1].flag);
}

} // namespace
} // namespace hp
