#include <gtest/gtest.h>

#include <string>

#include "util/ring_buffer.hh"

namespace hp
{
namespace
{

TEST(RingBufferTest, StartsEmpty)
{
    RingBuffer<int> ring;
    EXPECT_TRUE(ring.empty());
    EXPECT_EQ(ring.size(), 0u);
}

TEST(RingBufferTest, FifoOrder)
{
    RingBuffer<int> ring(4);
    for (int i = 0; i < 3; ++i)
        ring.push_back(i);
    EXPECT_EQ(ring.size(), 3u);
    EXPECT_EQ(ring.front(), 0);
    EXPECT_EQ(ring.back(), 2);
    ring.pop_front();
    EXPECT_EQ(ring.front(), 1);
    EXPECT_EQ(ring[1], 2);
}

TEST(RingBufferTest, WrapsAroundCapacity)
{
    RingBuffer<int> ring(4);
    for (int i = 0; i < 4; ++i)
        ring.push_back(i);
    // Pop two, push two: the new elements wrap physically but the
    // logical order stays FIFO.
    ring.pop_front();
    ring.pop_front();
    ring.push_back(4);
    ring.push_back(5);
    EXPECT_EQ(ring.size(), 4u);
    for (int i = 0; i < 4; ++i)
        EXPECT_EQ(ring[i], i + 2);
}

TEST(RingBufferTest, GrowsPreservingOrder)
{
    RingBuffer<int> ring(2);
    // Misalign head first so growth has to unwrap.
    ring.push_back(-1);
    ring.pop_front();
    for (int i = 0; i < 100; ++i)
        ring.push_back(i);
    EXPECT_EQ(ring.size(), 100u);
    EXPECT_GE(ring.capacity(), 100u);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(ring[i], i);
}

TEST(RingBufferTest, ClearResets)
{
    RingBuffer<std::string> ring(4);
    ring.push_back("a");
    ring.push_back("b");
    ring.clear();
    EXPECT_TRUE(ring.empty());
    ring.push_back("c");
    EXPECT_EQ(ring.front(), "c");
    EXPECT_EQ(ring.back(), "c");
}

TEST(RingBufferTest, PopReleasesElementState)
{
    RingBuffer<std::string> ring(2);
    ring.push_back("payload");
    ring.pop_front();
    ring.push_back("x");
    // The slot the popped element occupied was reset to a default
    // value, not left holding the old payload.
    EXPECT_EQ(ring.front(), "x");
    EXPECT_EQ(ring.size(), 1u);
}

TEST(RingBufferTest, RoundTripManyOperations)
{
    RingBuffer<int> ring(4);
    int pushed = 0, popped = 0;
    for (int round = 0; round < 1000; ++round) {
        ring.push_back(pushed++);
        if (round % 3 != 0) {
            EXPECT_EQ(ring.front(), popped);
            ring.pop_front();
            ++popped;
        }
    }
    EXPECT_EQ(ring.size(), std::size_t(pushed - popped));
    for (int i = 0; popped + i < pushed; ++i)
        EXPECT_EQ(ring[i], popped + i);
}

} // namespace
} // namespace hp
