/**
 * @file
 * Property-based test: RingBuffer must behave exactly like std::deque
 * under long random op sequences (push_back / pop_front / clear /
 * indexing / front / back), across growth and wrap-around, for several
 * fixed seeds. Also checks that serializing a ring and restoring it
 * into a differently-shaped one reproduces the logical contents.
 */

#include <gtest/gtest.h>

#include <deque>

#include "util/ring_buffer.hh"
#include "util/rng.hh"
#include "util/serialize.hh"

namespace hp
{
namespace
{

void
expectMatchesReference(const RingBuffer<std::uint64_t> &ring,
                       const std::deque<std::uint64_t> &ref)
{
    ASSERT_EQ(ring.size(), ref.size());
    ASSERT_EQ(ring.empty(), ref.empty());
    if (ref.empty())
        return;
    EXPECT_EQ(ring.front(), ref.front());
    EXPECT_EQ(ring.back(), ref.back());
    for (std::size_t i = 0; i < ref.size(); ++i)
        ASSERT_EQ(ring[i], ref[i]) << "index " << i;
}

class RingBufferPropertyTest : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(RingBufferPropertyTest, MatchesDequeUnderRandomOps)
{
    Rng rng(GetParam());
    // A tiny initial capacity forces many grow() calls mid-sequence.
    RingBuffer<std::uint64_t> ring(2);
    std::deque<std::uint64_t> ref;

    for (int op = 0; op < 20'000; ++op) {
        const std::uint64_t roll = rng.nextUint(100);
        if (roll < 55) {
            const std::uint64_t v = rng.next();
            ring.push_back(v);
            ref.push_back(v);
        } else if (roll < 95) {
            if (!ref.empty()) {
                EXPECT_EQ(ring.front(), ref.front());
                ring.pop_front();
                ref.pop_front();
            }
        } else {
            ring.clear();
            ref.clear();
        }
        // Cheap invariants every step; full sweep periodically.
        ASSERT_EQ(ring.size(), ref.size());
        if (op % 500 == 0)
            expectMatchesReference(ring, ref);
    }
    expectMatchesReference(ring, ref);
}

TEST_P(RingBufferPropertyTest, SerializeRestoresLogicalContents)
{
    Rng rng(GetParam() ^ 0xabcdef);
    RingBuffer<std::uint64_t> ring(4);
    std::deque<std::uint64_t> ref;
    // Random churn so head_ sits at an arbitrary wrap position.
    for (int op = 0; op < 1'000; ++op) {
        if (rng.nextUint(3) != 0 || ref.empty()) {
            const std::uint64_t v = rng.next();
            ring.push_back(v);
            ref.push_back(v);
        } else {
            ring.pop_front();
            ref.pop_front();
        }
    }

    StateWriter writer;
    io(writer, ring);
    const std::vector<std::uint8_t> bytes = writer.take();

    // Restore into a ring with different capacity and stale contents:
    // only the logical contents may survive.
    RingBuffer<std::uint64_t> restored(64);
    for (int i = 0; i < 10; ++i)
        restored.push_back(std::uint64_t(i));
    StateLoader loader(bytes.data(), bytes.size());
    io(loader, restored);
    ASSERT_FALSE(loader.failed());
    EXPECT_EQ(loader.remaining(), 0u);
    expectMatchesReference(restored, ref);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RingBufferPropertyTest,
                         ::testing::Values(1u, 2u, 42u, 0xdeadbeefu));

} // namespace
} // namespace hp
