#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "util/rng.hh"

namespace hp
{
namespace
{

TEST(RngTest, DeterministicForSameSeed)
{
    Rng a(123), b(123);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(RngTest, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += (a.next() == b.next());
    EXPECT_LT(same, 3);
}

TEST(RngTest, NextUintRespectsBound)
{
    Rng rng(7);
    for (std::uint64_t bound : {1ull, 2ull, 3ull, 17ull, 1000000ull}) {
        for (int i = 0; i < 200; ++i)
            EXPECT_LT(rng.nextUint(bound), bound);
    }
}

TEST(RngTest, NextUintBoundOneAlwaysZero)
{
    Rng rng(9);
    for (int i = 0; i < 50; ++i)
        EXPECT_EQ(rng.nextUint(1), 0u);
}

TEST(RngTest, NextRangeInclusive)
{
    Rng rng(11);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 2000; ++i) {
        std::int64_t v = rng.nextRange(-3, 3);
        EXPECT_GE(v, -3);
        EXPECT_LE(v, 3);
        saw_lo |= (v == -3);
        saw_hi |= (v == 3);
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(RngTest, NextDoubleInUnitInterval)
{
    Rng rng(13);
    for (int i = 0; i < 1000; ++i) {
        double v = rng.nextDouble();
        EXPECT_GE(v, 0.0);
        EXPECT_LT(v, 1.0);
    }
}

TEST(RngTest, NextBoolExtremes)
{
    Rng rng(17);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(rng.nextBool(0.0));
        EXPECT_TRUE(rng.nextBool(1.0));
    }
}

TEST(RngTest, NextBoolApproximatesProbability)
{
    Rng rng(19);
    int heads = 0;
    constexpr int kTrials = 20000;
    for (int i = 0; i < kTrials; ++i)
        heads += rng.nextBool(0.3);
    double rate = double(heads) / kTrials;
    EXPECT_NEAR(rate, 0.3, 0.02);
}

TEST(RngTest, NextSkewedStaysInRangeAndSkewsLow)
{
    Rng rng(23);
    double sum = 0.0;
    constexpr int kTrials = 10000;
    for (int i = 0; i < kTrials; ++i) {
        std::uint64_t v = rng.nextSkewed(10, 100);
        EXPECT_GE(v, 10u);
        EXPECT_LE(v, 100u);
        sum += double(v);
    }
    // Mean must be clearly below the midpoint (55) for a skewed draw.
    EXPECT_LT(sum / kTrials, 45.0);
}

TEST(RngTest, NextSkewedDegenerateRange)
{
    Rng rng(29);
    EXPECT_EQ(rng.nextSkewed(5, 5), 5u);
}

TEST(RngTest, ForkIsIndependent)
{
    Rng a(31);
    Rng child = a.fork();
    // The child must not replay the parent's stream.
    Rng b(31);
    b.fork();
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += (child.next() == b.next());
    EXPECT_LT(same, 3);
}

TEST(ZipfSamplerTest, UniformWhenThetaZero)
{
    Rng rng(37);
    ZipfSampler sampler(4, 0.0);
    std::vector<int> counts(4, 0);
    constexpr int kTrials = 40000;
    for (int i = 0; i < kTrials; ++i)
        ++counts[sampler.sample(rng)];
    for (int c : counts)
        EXPECT_NEAR(double(c) / kTrials, 0.25, 0.02);
}

TEST(ZipfSamplerTest, SkewFavorsLowRanks)
{
    Rng rng(41);
    ZipfSampler sampler(10, 0.99);
    std::vector<int> counts(10, 0);
    for (int i = 0; i < 20000; ++i)
        ++counts[sampler.sample(rng)];
    EXPECT_GT(counts[0], counts[4]);
    EXPECT_GT(counts[0], counts[9] * 3);
}

TEST(ZipfSamplerTest, SampleAlwaysInRange)
{
    Rng rng(43);
    ZipfSampler sampler(7, 0.5);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(sampler.sample(rng), 7u);
}

} // namespace
} // namespace hp
