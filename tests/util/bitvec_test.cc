#include <gtest/gtest.h>

#include "util/bitvec.hh"

namespace hp
{
namespace
{

TEST(BitVecTest, StartsEmpty)
{
    BitVec v(100);
    EXPECT_EQ(v.size(), 100u);
    EXPECT_EQ(v.count(), 0u);
    for (std::size_t i = 0; i < 100; ++i)
        EXPECT_FALSE(v.test(i));
}

TEST(BitVecTest, SetAndTest)
{
    BitVec v(130);
    v.set(0);
    v.set(63);
    v.set(64);
    v.set(129);
    EXPECT_TRUE(v.test(0));
    EXPECT_TRUE(v.test(63));
    EXPECT_TRUE(v.test(64));
    EXPECT_TRUE(v.test(129));
    EXPECT_FALSE(v.test(1));
    EXPECT_FALSE(v.test(128));
    EXPECT_EQ(v.count(), 4u);
}

TEST(BitVecTest, Reset)
{
    BitVec v(64);
    v.set(10);
    EXPECT_TRUE(v.test(10));
    v.reset(10);
    EXPECT_FALSE(v.test(10));
    EXPECT_EQ(v.count(), 0u);
}

TEST(BitVecTest, OrWith)
{
    BitVec a(200), b(200);
    a.set(3);
    a.set(150);
    b.set(150);
    b.set(199);
    a.orWith(b);
    EXPECT_TRUE(a.test(3));
    EXPECT_TRUE(a.test(150));
    EXPECT_TRUE(a.test(199));
    EXPECT_EQ(a.count(), 3u);
}

TEST(BitVecTest, IntersectCount)
{
    BitVec a(128), b(128);
    for (std::size_t i = 0; i < 128; i += 2)
        a.set(i);
    for (std::size_t i = 0; i < 128; i += 3)
        b.set(i);
    // Multiples of 6 in [0, 128): 0, 6, ..., 126 -> 22 values.
    EXPECT_EQ(a.intersectCount(b), 22u);
}

TEST(BitVecTest, ClearResetsAll)
{
    BitVec v(77);
    for (std::size_t i = 0; i < 77; ++i)
        v.set(i);
    EXPECT_EQ(v.count(), 77u);
    v.clear();
    EXPECT_EQ(v.count(), 0u);
}

TEST(BitVecTest, EqualityComparesContents)
{
    BitVec a(64), b(64);
    EXPECT_EQ(a, b);
    a.set(5);
    EXPECT_NE(a, b);
    b.set(5);
    EXPECT_EQ(a, b);
}

} // namespace
} // namespace hp
