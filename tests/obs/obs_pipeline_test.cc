/**
 * @file
 * Pipeline tests for the observability layer: the EventSink ring, the
 * Perfetto exporter's track mapping and JSON, the interval sampler,
 * the time-series CSV writer, and — the central property — that the
 * missAttribution.* cause classes exactly partition l1i.demand_misses
 * across randomized simulator configurations, with a golden breakdown
 * pinned for one seeded workload.
 */

#include <cstdio>
#include <fstream>
#include <sstream>

#include <gtest/gtest.h>

#include "obs/event_sink.hh"
#include "obs/miss_attribution.hh"
#include "obs/obs.hh"
#include "obs/perfetto_export.hh"
#include "sim/simulator.hh"
#include "util/rng.hh"

namespace
{

using namespace hp;

// ---- EventSink ring ----

TEST(EventSink, DropsOldestWhenFull)
{
    EventSink sink(4);
    for (std::uint64_t i = 0; i < 6; ++i)
        sink.emit(EventKind::PrefetchIssued, Cycle(i), Addr(0x40 * i));
    EXPECT_EQ(sink.size(), 4u);
    EXPECT_EQ(sink.emitted(), 6u);
    EXPECT_EQ(sink.dropped(), 2u);

    std::vector<TraceEvent> events = sink.drain();
    ASSERT_EQ(events.size(), 4u);
    for (std::size_t i = 0; i < events.size(); ++i)
        EXPECT_EQ(events[i].cycle, Cycle(i + 2)); // Oldest two gone.
    EXPECT_EQ(sink.size(), 0u);
}

TEST(EventSink, SpanDuration)
{
    EventSink sink(8);
    sink.emitSpan(EventKind::FetchStall, 100, 130, 0x40);
    sink.emitSpan(EventKind::FetchStall, 130, 130); // Empty span.
    std::vector<TraceEvent> events = sink.drain();
    ASSERT_EQ(events.size(), 2u);
    EXPECT_EQ(events[0].dur, 30u);
    EXPECT_EQ(events[1].dur, 0u);
}

// ---- Perfetto export ----

TEST(PerfettoExport, EveryKindHasNameAndTrack)
{
    for (unsigned k = 0; k < kNumEventKinds; ++k) {
        EventKind kind = static_cast<EventKind>(k);
        EXPECT_STRNE(eventKindName(kind), "?");
        for (std::uint8_t origin : {0, 1, 2}) {
            unsigned track = obs::eventTrack(kind, origin);
            EXPECT_GE(track, 1u);
            EXPECT_LE(track, obs::numTracks());
            EXPECT_STRNE(obs::trackName(track), "?");
        }
    }
    // Origin steers the prefetch-lifecycle kinds between fdip and ext.
    EXPECT_STREQ(
        obs::trackName(obs::eventTrack(EventKind::PrefetchIssued, 1)),
        "fdip");
    EXPECT_STREQ(
        obs::trackName(obs::eventTrack(EventKind::PrefetchIssued, 2)),
        "ext");
}

TEST(PerfettoExport, JsonStructure)
{
    obs::RunCapture run;
    run.label = "caddy/Hierarchical";
    TraceEvent span;
    span.kind = EventKind::DemandMissMem;
    span.cycle = 1000;
    span.dur = 160;
    span.addr = 0x7f00;
    run.events.push_back(span);
    TraceEvent instant;
    instant.kind = EventKind::PrefetchIssued;
    instant.origin = 2;
    instant.cycle = 1200;
    run.events.push_back(instant);
    run.eventsDropped = 5;

    const std::string doc = obs::perfettoJson({run});
    EXPECT_NE(doc.find("\"displayTimeUnit\": \"ms\""),
              std::string::npos);
    EXPECT_NE(doc.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(doc.find("caddy/Hierarchical #0"), std::string::npos);
    EXPECT_NE(doc.find("dropped 5 oldest events"), std::string::npos);
    // Span event with its duration on the l1i track.
    EXPECT_NE(doc.find("\"name\":\"demand miss (mem)\",\"ph\":\"X\","
                       "\"ts\":1000,\"dur\":160"),
              std::string::npos);
    EXPECT_NE(doc.find("\"addr\":\"0x7f00\""), std::string::npos);
    // Instant event on the ext track.
    EXPECT_NE(doc.find("\"name\":\"prefetch issued\",\"ph\":\"i\""),
              std::string::npos);
    // Thread names only for used tracks: l1i and ext, not replay.
    EXPECT_NE(doc.find("{\"name\":\"l1i\"}"), std::string::npos);
    EXPECT_NE(doc.find("{\"name\":\"ext\"}"), std::string::npos);
    EXPECT_EQ(doc.find("{\"name\":\"replay\"}"), std::string::npos);
}

TEST(PerfettoExport, EscapesLabel)
{
    obs::RunCapture run;
    run.label = "we\"ird\\label";
    const std::string doc = obs::perfettoJson({run});
    EXPECT_NE(doc.find("we\\\"ird\\\\label"), std::string::npos);
    EXPECT_EQ(doc.find("we\"ird"), std::string::npos);
}

// ---- Interval sampler ----

class SamplerTest : public ::testing::Test
{
  protected:
    SamplerTest()
    {
        registry_.add("sim.cycles", [this] { return cycles_; });
        registry_.add("l1i.demand_accesses",
                      [this] { return accesses_; });
        registry_.add("l1i.demand_misses", [this] { return misses_; });
        registry_.add("dram.demand_bytes", [this] { return demand_; });
        registry_.add("dram.fdip_bytes", [this] { return fdip_; });
        registry_.add("dram.ext_bytes", [this] { return ext_; });
        registry_.add("dram.metadata_read_bytes",
                      [this] { return mdRead_; });
        registry_.add("dram.metadata_write_bytes",
                      [this] { return mdWrite_; });
    }

    StatsRegistry registry_;
    std::uint64_t cycles_ = 0, accesses_ = 0, misses_ = 0;
    std::uint64_t demand_ = 0, fdip_ = 0, ext_ = 0;
    std::uint64_t mdRead_ = 0, mdWrite_ = 0;
};

TEST_F(SamplerTest, SamplesAtIntervalBoundaries)
{
    IntervalSampler sampler(registry_, 100);

    cycles_ = 50;
    sampler.tick(99, false);
    EXPECT_TRUE(sampler.rows().empty());

    cycles_ = 200;
    accesses_ = 80;
    misses_ = 8;
    demand_ = 512;
    fdip_ = 128;
    mdRead_ = 64;
    sampler.tick(100, false);
    ASSERT_EQ(sampler.rows().size(), 1u);
    const SampleRow &row = sampler.rows()[0];
    EXPECT_FALSE(row.measuring);
    EXPECT_EQ(row.insts, 100u);
    EXPECT_EQ(row.cycles, 200u);
    EXPECT_EQ(row.dInsts, 100u);
    EXPECT_EQ(row.dCycles, 200u);
    EXPECT_EQ(row.dL1iAccesses, 80u);
    EXPECT_EQ(row.dL1iMisses, 8u);
    EXPECT_EQ(row.dDramBytes, 640u); // demand + fdip + ext
    EXPECT_EQ(row.dMetadataBytes, 64u);

    // Deltas are relative to the previous sample.
    cycles_ = 300;
    ext_ = 256;
    mdWrite_ = 32;
    sampler.tick(200, true);
    ASSERT_EQ(sampler.rows().size(), 2u);
    EXPECT_TRUE(sampler.rows()[1].measuring);
    EXPECT_EQ(sampler.rows()[1].dCycles, 100u);
    EXPECT_EQ(sampler.rows()[1].dDramBytes, 256u);
    EXPECT_EQ(sampler.rows()[1].dMetadataBytes, 32u);
}

TEST_F(SamplerTest, SkipsJumpedBoundariesAndFinalSample)
{
    IntervalSampler sampler(registry_, 100);
    cycles_ = 10;
    sampler.tick(350, false); // Jumped over 100, 200, 300: one sample.
    ASSERT_EQ(sampler.rows().size(), 1u);
    sampler.tick(399, false); // Next boundary is 400.
    EXPECT_EQ(sampler.rows().size(), 1u);

    cycles_ = 20;
    sampler.finalSample(420, true);
    ASSERT_EQ(sampler.rows().size(), 2u);
    EXPECT_EQ(sampler.rows()[1].dInsts, 70u);

    sampler.finalSample(420, true); // No progress: no duplicate row.
    EXPECT_EQ(sampler.rows().size(), 2u);
}

// ---- Time-series CSV writer ----

TEST(TimeseriesCsv, RowFormat)
{
    obs::RunCapture run;
    run.label = "caddy/FDIP";
    run.tsInterval = 100;
    SampleRow row;
    row.measuring = true;
    row.insts = 200;
    row.cycles = 500;
    row.dInsts = 100;
    row.dCycles = 250;
    row.dL1iAccesses = 40;
    row.dL1iMisses = 4;
    row.dDramBytes = 256;
    row.dMetadataBytes = 64;
    run.samples.push_back(row);

    const std::string path = "obs_pipeline_test.timeseries.csv";
    obs::writeTimeseriesCsv(path, {run});
    std::ifstream in(path);
    std::string header, line;
    ASSERT_TRUE(std::getline(in, header));
    EXPECT_EQ(header,
              "run,label,interval_insts,phase,insts,cycles,d_insts,"
              "d_cycles,d_l1i_accesses,d_l1i_misses,d_dram_bytes,"
              "d_metadata_bytes,ipc,l1i_mpki");
    ASSERT_TRUE(std::getline(in, line));
    // ipc = 100/250 = 0.4; mpki = 1000*4/100 = 40.
    EXPECT_EQ(line, "0,caddy/FDIP,100,measure,200,500,100,250,40,4,"
                    "256,64,0.4000,40.0000");
    std::remove(path.c_str());
}

// ---- The partition property, end to end ----

class ObsSimTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        saved_ = obs::config();
        obs::config() = obs::ObsConfig{};
        obs::config().attribution = true;
    }

    void TearDown() override { obs::config() = saved_; }

    obs::ObsConfig saved_;
};

std::uint64_t
attributionSum(const StatsSnapshot &stats)
{
    std::uint64_t sum = 0;
    for (unsigned c = 0; c < kNumMissCauses; ++c)
        sum += stats.value(std::string("missAttribution.") +
                           missCauseName(static_cast<MissCause>(c)));
    return sum;
}

TEST_F(ObsSimTest, CauseClassesPartitionMissesAcrossRandomConfigs)
{
    // Deterministically randomized configs: small/stressed caches and
    // MSHR files push misses into every cause class the model can
    // produce; the partition must hold for all of them.
    Rng rng(0xc0ffee);
    const std::vector<std::string> workloads = {"caddy", "gorm",
                                                "tidb-tpcc"};
    const std::vector<PrefetcherKind> kinds = {
        PrefetcherKind::None, PrefetcherKind::EFetch,
        PrefetcherKind::Mana, PrefetcherKind::Eip,
        PrefetcherKind::Hierarchical,
    };

    for (int i = 0; i < 8; ++i) {
        SimConfig config;
        config.workload = workloads[rng.next() % workloads.size()];
        config.prefetcher = kinds[rng.next() % kinds.size()];
        config.warmupInsts = 20'000 + 10'000 * (rng.next() % 3);
        config.measureInsts = 60'000 + 20'000 * (rng.next() % 3);
        config.mem.l1iBytes = 1024u << (rng.next() % 3); // 1-4 KiB
        config.mem.l1iWays = 2 + 2 * (rng.next() % 2);
        config.mem.l1iMshrs = 4 + 4 * (rng.next() % 3);
        config.mem.mshrsReservedForDemand = 1 + rng.next() % 3;

        Simulator sim(config);
        SimMetrics metrics = sim.run();

        const std::uint64_t misses =
            metrics.stats.value("l1i.demand_misses");
        EXPECT_EQ(attributionSum(metrics.stats), misses)
            << "config " << i << ": " << config.workload << "/"
            << prefetcherName(config.prefetcher);
        EXPECT_EQ(metrics.stats.value("missAttribution.wrong_path"),
                  0u);
        EXPECT_GT(misses, 0u) << "config " << i
                              << " produced no misses; test is vacuous";
    }
}

TEST_F(ObsSimTest, GoldenAttributionBreakdown)
{
    // One seeded workload's full cause breakdown, pinned: any change
    // to the attribution state machine or to what the simulator feeds
    // it must be a conscious golden update.
    SimConfig config;
    config.workload = "caddy";
    config.warmupInsts = 150'000;
    config.measureInsts = 300'000;
    config.prefetcher = PrefetcherKind::Hierarchical;

    Simulator sim(config);
    SimMetrics metrics = sim.run();

    std::ostringstream text;
    text << "caddy/Hierarchical 150k warmup + 300k measure\n";
    for (unsigned c = 0; c < kNumMissCauses; ++c) {
        const std::string name =
            missCauseName(static_cast<MissCause>(c));
        text << name << " "
             << metrics.stats.value("missAttribution." + name) << " "
             << metrics.stats.value("missAttribution." + name +
                                    "_latency_cycles")
             << "\n";
    }
    text << "total " << attributionSum(metrics.stats) << "\n";
    text << "l1i_demand_misses "
         << metrics.stats.value("l1i.demand_misses") << "\n";

    const std::string golden_path =
        std::string(HP_GOLDEN_DIR) + "/attribution_caddy.txt";
    std::ifstream in(golden_path);
    ASSERT_TRUE(in) << "missing golden file " << golden_path
                    << "; expected contents:\n"
                    << text.str();
    std::ostringstream golden;
    golden << in.rdbuf();
    EXPECT_EQ(golden.str(), text.str())
        << "attribution breakdown drifted from " << golden_path;
}

} // namespace
