/**
 * @file
 * Unit tests for the MissAttribution state machine: classification
 * priority, episode consumption, merge/retry semantics, counter
 * resets, and checkpoint serialization.
 */

#include <gtest/gtest.h>

#include "obs/miss_attribution.hh"
#include "util/serialize.hh"

namespace
{

using namespace hp;

std::uint64_t
count(const MissAttribution &attr, MissCause cause)
{
    return attr.counters().count[static_cast<unsigned>(cause)];
}

std::uint64_t
latency(const MissAttribution &attr, MissCause cause)
{
    return attr.counters().latencyCycles[static_cast<unsigned>(cause)];
}

TEST(MissAttribution, FreshMissIsNeverPrefetched)
{
    MissAttribution attr;
    attr.onMissFill(0x1000, 160);
    EXPECT_EQ(count(attr, MissCause::NeverPrefetched), 1u);
    EXPECT_EQ(latency(attr, MissCause::NeverPrefetched), 160u);
    EXPECT_EQ(attr.counters().total(), 1u);
}

TEST(MissAttribution, PrefetchedEvictedEpisode)
{
    MissAttribution attr;
    attr.onPrefetchAccepted(0x40);
    attr.onEvicted(0x40, /*prefetch_origin=*/true, /*used=*/false);
    attr.onMissFill(0x40, 50);
    EXPECT_EQ(count(attr, MissCause::PrefetchedEvicted), 1u);
    EXPECT_EQ(latency(attr, MissCause::PrefetchedEvicted), 50u);
}

TEST(MissAttribution, UsedOrDemandEvictionIsDemandEvicted)
{
    MissAttribution attr;
    // A used prefetch counts as demand residency once evicted.
    attr.onEvicted(0x40, /*prefetch_origin=*/true, /*used=*/true);
    attr.onMissFill(0x40, 14);
    EXPECT_EQ(count(attr, MissCause::DemandEvicted), 1u);

    attr.onEvicted(0x80, /*prefetch_origin=*/false, /*used=*/true);
    attr.onMissFill(0x80, 14);
    EXPECT_EQ(count(attr, MissCause::DemandEvicted), 2u);
}

TEST(MissAttribution, DroppedPrefetchIsResourceContention)
{
    MissAttribution attr;
    attr.onPrefetchDropped(0x40);
    attr.onMissFill(0x40, 160);
    EXPECT_EQ(count(attr, MissCause::ResourceContention), 1u);
}

TEST(MissAttribution, AcceptedPrefetchClearsStaleDrop)
{
    MissAttribution attr;
    attr.onPrefetchDropped(0x40);
    attr.onPrefetchAccepted(0x40); // A later prefetch made it in.
    attr.onMissFill(0x40, 160);
    EXPECT_EQ(count(attr, MissCause::ResourceContention), 0u);
    EXPECT_EQ(count(attr, MissCause::NeverPrefetched), 1u);
}

TEST(MissAttribution, ClassificationPriority)
{
    // prefetched_evicted beats resource_contention beats
    // demand_evicted.
    MissAttribution attr;
    attr.onEvicted(0x40, true, false); // prefetchEvicted
    attr.onPrefetchDropped(0x40);
    attr.onEvicted(0x40, false, true); // demandEvicted too
    attr.onMissFill(0x40, 1);
    EXPECT_EQ(count(attr, MissCause::PrefetchedEvicted), 1u);

    attr.onPrefetchDropped(0x80);
    attr.onEvicted(0x80, false, true);
    attr.onMissFill(0x80, 1);
    EXPECT_EQ(count(attr, MissCause::ResourceContention), 1u);
}

TEST(MissAttribution, EpisodeConsumedByFill)
{
    MissAttribution attr;
    attr.onEvicted(0x40, true, false);
    attr.onMissFill(0x40, 10);
    // The history described the first miss only; with no new events
    // the next miss of the block is a plain re-miss.
    attr.onMissFill(0x40, 10);
    EXPECT_EQ(count(attr, MissCause::PrefetchedEvicted), 1u);
    EXPECT_EQ(count(attr, MissCause::NeverPrefetched), 1u);
}

TEST(MissAttribution, MergeIntoPrefetchIsLate)
{
    MissAttribution attr;
    attr.onMissMerge(0x40, /*prefetch_origin=*/true, /*wait=*/7);
    EXPECT_EQ(count(attr, MissCause::PrefetchLate), 1u);
    EXPECT_EQ(latency(attr, MissCause::PrefetchLate), 7u);
}

TEST(MissAttribution, MergeIntoDemandRepeatsEpisodeCause)
{
    MissAttribution attr;
    attr.onEvicted(0x40, true, false);
    attr.onMissFill(0x40, 50); // prefetched_evicted episode
    attr.onMissMerge(0x40, /*prefetch_origin=*/false, /*wait=*/3);
    EXPECT_EQ(count(attr, MissCause::PrefetchedEvicted), 2u);
    EXPECT_EQ(latency(attr, MissCause::PrefetchedEvicted), 53u);

    // Unknown block: the allocation must have been never_prefetched.
    attr.onMissMerge(0x80, false, 2);
    EXPECT_EQ(count(attr, MissCause::NeverPrefetched), 1u);
}

TEST(MissAttribution, RetryIsResourceContention)
{
    MissAttribution attr;
    attr.onMissRetry(0x40);
    EXPECT_EQ(count(attr, MissCause::ResourceContention), 1u);
    EXPECT_EQ(latency(attr, MissCause::ResourceContention), 1u);
}

TEST(MissAttribution, ResetCountersKeepsLineHistory)
{
    MissAttribution attr;
    attr.onEvicted(0x40, true, false);
    attr.onMissFill(0x80, 1); // some pre-boundary count
    attr.resetCounters();
    EXPECT_EQ(attr.counters().total(), 0u);
    // The per-line history survives the warmup boundary, like cache
    // contents do.
    attr.onMissFill(0x40, 1);
    EXPECT_EQ(count(attr, MissCause::PrefetchedEvicted), 1u);
}

TEST(MissAttribution, WrongPathStructurallyZero)
{
    MissAttribution attr;
    attr.onPrefetchDropped(0x40);
    attr.onEvicted(0x40, true, false);
    attr.onMissFill(0x40, 1);
    attr.onMissMerge(0x40, true, 1);
    attr.onMissRetry(0x40);
    EXPECT_EQ(count(attr, MissCause::WrongPath), 0u);
}

TEST(MissAttribution, SerializeRoundTrip)
{
    MissAttribution attr;
    attr.onEvicted(0x40, true, false);
    attr.onMissFill(0x40, 50);
    attr.onPrefetchDropped(0x80);
    attr.onMissMerge(0xc0, true, 9);

    StateWriter writer;
    attr.serializeState(writer);
    std::vector<std::uint8_t> blob = writer.take();

    MissAttribution restored;
    StateLoader loader(blob.data(), blob.size());
    restored.serializeState(loader);
    ASSERT_FALSE(loader.failed());
    EXPECT_EQ(loader.remaining(), 0u);

    EXPECT_EQ(restored.counters().count, attr.counters().count);
    EXPECT_EQ(restored.counters().latencyCycles,
              attr.counters().latencyCycles);
    EXPECT_EQ(restored.trackedLines(), attr.trackedLines());

    // Behavioural equivalence: the restored line history classifies
    // the same way (0x80 still carries its drop record, and 0x40's
    // lastCause is repeated by a demand merge).
    restored.onMissFill(0x80, 1);
    EXPECT_EQ(count(restored, MissCause::ResourceContention), 1u);
    restored.onMissMerge(0x40, false, 1);
    EXPECT_EQ(count(restored, MissCause::PrefetchedEvicted), 2u);
}

TEST(MissAttribution, CauseNamesAreStableAndDistinct)
{
    for (unsigned i = 0; i < kNumMissCauses; ++i) {
        const char *name = missCauseName(static_cast<MissCause>(i));
        EXPECT_STRNE(name, "?");
        for (unsigned j = i + 1; j < kNumMissCauses; ++j)
            EXPECT_STRNE(name,
                         missCauseName(static_cast<MissCause>(j)));
    }
    EXPECT_STREQ(missCauseName(MissCause::NeverPrefetched),
                 "never_prefetched");
    EXPECT_STREQ(missCauseName(MissCause::WrongPath), "wrong_path");
}

} // namespace
