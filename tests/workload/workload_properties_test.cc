#include <gtest/gtest.h>

#include <unordered_set>

#include "workload/request_engine.hh"

namespace hp
{
namespace
{

/** Calls minus returns can differ by at most the live stack depth. */
constexpr std::uint64_t kMaxDepthSlack = 128;

/**
 * Property sweep over all 11 workloads: every application the paper
 * evaluates must produce a structurally valid program and a
 * well-formed, server-shaped instruction stream.
 */
class WorkloadProperties
    : public ::testing::TestWithParam<std::string>
{
  protected:
    void
    SetUp() override
    {
        profile = &appProfile(GetParam());
        app = ProgramBuilder::cached(*profile);
    }

    const AppProfile *profile = nullptr;
    std::shared_ptr<const BuiltApp> app;
};

TEST_P(WorkloadProperties, ProgramValidates)
{
    app->program.validate();
    EXPECT_GT(app->program.numFunctions(), 500u);
    // Server binaries: megabytes of text.
    EXPECT_GT(app->program.totalCodeBytes(), 2ull * 1024 * 1024);
}

TEST_P(WorkloadProperties, BundleEntriesExistAtServerScale)
{
    const auto &analysis = app->image.analysis;
    EXPECT_GT(analysis.entries.size(), 20u);
    // Table 4 class: a few percent of functions.
    EXPECT_GT(analysis.entryFraction, 0.005);
    EXPECT_LT(analysis.entryFraction, 0.10);
    // Tags exist for the entries.
    EXPECT_GT(app->image.tags.size(), analysis.entries.size() / 2);
}

TEST_P(WorkloadProperties, StreamIsSequentiallyConsistent)
{
    RequestEngine engine(app, *profile);
    DynInst prev, inst;
    ASSERT_TRUE(engine.next(prev));
    for (int i = 0; i < 150000; ++i) {
        ASSERT_TRUE(engine.next(inst));
        ASSERT_EQ(inst.pc, prev.nextFetchPc())
            << GetParam() << " discontinuity at " << i;
        prev = inst;
    }
}

TEST_P(WorkloadProperties, StreamHasServerCharacter)
{
    RequestEngine engine(app, *profile);
    DynInst inst;
    std::unordered_set<Addr> blocks;
    constexpr int kInsts = 400000;
    for (int i = 0; i < kInsts; ++i) {
        ASSERT_TRUE(engine.next(inst));
        blocks.insert(blockAlign(inst.pc));
    }
    const EngineStats &stats = engine.stats();
    // Calls and returns balance within stack-depth slack.
    EXPECT_NEAR(double(stats.calls), double(stats.returns),
                double(kMaxDepthSlack));
    // Branchy code: at least 1 conditional per 32 instructions.
    EXPECT_GT(stats.condBranches, std::uint64_t(kInsts) / 32);
    // Instruction working set far beyond a 32 KB L1-I.
    EXPECT_GT(blocks.size() * kBlockBytes, 64u * 1024);
    // Tagged Bundle boundaries occur at a plausible rate: more than
    // one per 200K instructions, fewer than one per 100.
    EXPECT_GT(stats.taggedInsts, std::uint64_t(kInsts) / 200000);
    EXPECT_LT(stats.taggedInsts, std::uint64_t(kInsts) / 100);
}

TEST_P(WorkloadProperties, TwoEnginesAgree)
{
    RequestEngine a(app, *profile), b(app, *profile);
    DynInst ia, ib;
    for (int i = 0; i < 20000; ++i) {
        ASSERT_TRUE(a.next(ia));
        ASSERT_TRUE(b.next(ib));
        ASSERT_EQ(ia.pc, ib.pc);
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllWorkloads, WorkloadProperties,
    ::testing::ValuesIn(allWorkloads()),
    [](const ::testing::TestParamInfo<std::string> &info) {
        std::string name = info.param;
        for (char &c : name) {
            if (c == '-')
                c = '_';
        }
        return name;
    });

} // namespace
} // namespace hp
