#include <gtest/gtest.h>

#include <set>
#include <unordered_map>

#include "workload/request_engine.hh"

namespace hp
{
namespace
{

struct EngineFixture : public ::testing::Test
{
    void
    SetUp() override
    {
        profile = &appProfile("caddy");
        app = ProgramBuilder::cached(*profile);
        engine = std::make_unique<RequestEngine>(app, *profile);
    }

    const AppProfile *profile = nullptr;
    std::shared_ptr<const BuiltApp> app;
    std::unique_ptr<RequestEngine> engine;
};

TEST_F(EngineFixture, StreamNeverEnds)
{
    DynInst inst;
    for (int i = 0; i < 100000; ++i)
        ASSERT_TRUE(engine->next(inst));
    EXPECT_EQ(engine->stats().instructions, 100000u);
}

TEST_F(EngineFixture, ControlFlowIsWellFormed)
{
    // Calls and returns must nest; the next pc after any instruction
    // must be either sequential or the instruction's target.
    DynInst inst, prev;
    ASSERT_TRUE(engine->next(prev));
    std::vector<Addr> shadow_stack;
    for (int i = 0; i < 200000; ++i) {
        ASSERT_TRUE(engine->next(inst));
        // Check continuity from prev.
        Addr expected = prev.nextFetchPc();
        // The final return of a request jumps to the next request's
        // driver entry; the engine patches its target, so continuity
        // still holds.
        ASSERT_EQ(inst.pc, expected)
            << "discontinuity at instruction " << i;
        if (isCall(prev.kind) && prev.taken)
            shadow_stack.push_back(prev.nextPc());
        if (prev.kind == InstKind::Return && !shadow_stack.empty()) {
            // Return target must match the shadow stack (except the
            // request-final return, which targets the driver).
            if (prev.target != app->program
                                   .func(app->requestDriver).addr) {
                EXPECT_EQ(prev.target, shadow_stack.back());
            }
            shadow_stack.pop_back();
        }
        prev = inst;
    }
}

TEST_F(EngineFixture, DeterministicStreams)
{
    RequestEngine a(app, *profile), b(app, *profile);
    DynInst ia, ib;
    for (int i = 0; i < 50000; ++i) {
        ASSERT_TRUE(a.next(ia));
        ASSERT_TRUE(b.next(ib));
        ASSERT_EQ(ia.pc, ib.pc);
        ASSERT_EQ(ia.taken, ib.taken);
        ASSERT_EQ(static_cast<int>(ia.kind), static_cast<int>(ib.kind));
    }
}

TEST_F(EngineFixture, MarkersDelimitRequestsAndStages)
{
    DynInst inst;
    unsigned requests = 0, stages = 0;
    for (int i = 0; i < 500000; ++i) {
        ASSERT_TRUE(engine->next(inst));
        if (inst.marker == StreamMarker::RequestBegin)
            ++requests;
        else if (inst.marker == StreamMarker::StageBegin) {
            ++stages;
            EXPECT_LT(inst.markerArg, profile->numStages);
        }
    }
    EXPECT_GT(requests, 1u);
    // Each request visits every stage dispatcher once.
    EXPECT_NEAR(double(stages) / requests, profile->numStages,
                double(profile->numStages));
}

TEST_F(EngineFixture, TaggedInstructionsAreCallsOrReturns)
{
    DynInst inst;
    unsigned tagged = 0;
    for (int i = 0; i < 500000; ++i) {
        ASSERT_TRUE(engine->next(inst));
        if (inst.tagged) {
            ++tagged;
            EXPECT_TRUE(isCall(inst.kind) ||
                        inst.kind == InstKind::Return);
            EXPECT_TRUE(app->image.tags.isTagged(inst.pc));
        }
    }
    EXPECT_GT(tagged, 10u);
}

TEST_F(EngineFixture, PcsStayInsideTheirFunctions)
{
    DynInst inst;
    for (int i = 0; i < 100000; ++i) {
        ASSERT_TRUE(engine->next(inst));
        const Function &fn = app->program.func(inst.func);
        ASSERT_GE(inst.pc, fn.addr);
        ASSERT_LT(inst.pc, fn.addr + fn.sizeBytes());
    }
}

TEST_F(EngineFixture, DifferentSeedsProduceDifferentTypeMixes)
{
    AppProfile other = *profile;
    other.requestSeed = profile->requestSeed + 999;
    RequestEngine a(app, *profile), b(app, other);
    DynInst inst;
    std::vector<unsigned> types_a, types_b;
    while (types_a.size() < 10) {
        a.next(inst);
        if (inst.marker == StreamMarker::RequestBegin)
            types_a.push_back(a.currentType());
    }
    while (types_b.size() < 10) {
        b.next(inst);
        if (inst.marker == StreamMarker::RequestBegin)
            types_b.push_back(b.currentType());
    }
    EXPECT_NE(types_a, types_b);
}

TEST_F(EngineFixture, StableFootprintPerRoutine)
{
    // The same (stage, routine) under the same request type must touch
    // nearly the same blocks across executions — the property Bundles
    // exploit. Collect footprints of stage-1 executions by type.
    DynInst inst;
    // Footprints keyed by (stage, request type).
    std::unordered_map<unsigned, std::vector<std::set<Addr>>> by_type;
    std::set<Addr> current;
    int current_stage = -1;
    unsigned current_type = 0;
    auto close = [&]() {
        if (current_stage >= 0 && current.size() > 4) {
            by_type[unsigned(current_stage) * 1000 + current_type]
                .push_back(current);
        }
        current.clear();
    };
    for (int i = 0; i < 5000000; ++i) {
        ASSERT_TRUE(engine->next(inst));
        if (inst.marker == StreamMarker::RequestBegin ||
            inst.marker == StreamMarker::StageBegin) {
            close();
            current_stage =
                inst.marker == StreamMarker::StageBegin
                    ? inst.markerArg : -1;
            current_type = engine->currentType();
        }
        if (current_stage >= 0)
            current.insert(blockAlign(inst.pc));
    }
    close();

    unsigned compared = 0;
    double jaccard_sum = 0.0;
    for (const auto &[type, footprints] : by_type) {
        for (std::size_t i = 1; i < footprints.size(); ++i) {
            const auto &a = footprints[i - 1];
            const auto &b = footprints[i];
            std::size_t inter = 0;
            for (Addr blk : b)
                inter += a.count(blk);
            std::size_t uni = a.size() + b.size() - inter;
            if (uni == 0)
                continue;
            jaccard_sum += double(inter) / double(uni);
            ++compared;
        }
    }
    ASSERT_GT(compared, 3u);
    EXPECT_GT(jaccard_sum / compared, 0.75);
}

} // namespace
} // namespace hp
