#include <gtest/gtest.h>

#include "core/bundle_analysis.hh"
#include "workload/program_builder.hh"

namespace hp
{
namespace
{

TEST(ProgramBuilderTest, BuildsValidProgram)
{
    auto app = ProgramBuilder::build(appProfile("caddy"));
    app->program.validate();
    EXPECT_TRUE(app->program.isLaidOut());
    EXPECT_GT(app->program.numFunctions(), 1000u);
    EXPECT_GT(app->program.totalCodeBytes(), 4ull * 1024 * 1024);
}

TEST(ProgramBuilderTest, DeterministicForSameSeed)
{
    auto a = ProgramBuilder::build(appProfile("caddy"));
    auto b = ProgramBuilder::build(appProfile("caddy"));
    ASSERT_EQ(a->program.numFunctions(), b->program.numFunctions());
    EXPECT_EQ(a->program.totalCodeBytes(), b->program.totalCodeBytes());
    EXPECT_EQ(a->image.section.taggedInstructions,
              b->image.section.taggedInstructions);
    for (FuncId f = 0; f < 100; ++f) {
        EXPECT_EQ(a->program.func(f).addr, b->program.func(f).addr);
        EXPECT_EQ(a->program.func(f).body.size(),
                  b->program.func(f).body.size());
    }
}

TEST(ProgramBuilderTest, CachedSharesBinaryAcrossWorkloads)
{
    auto tpcc = ProgramBuilder::cached(appProfile("tidb-tpcc"));
    auto sysbench = ProgramBuilder::cached(appProfile("tidb-sysbench"));
    EXPECT_EQ(tpcc.get(), sysbench.get());
    auto mysql = ProgramBuilder::cached(appProfile("mysql-ycsb"));
    EXPECT_NE(tpcc.get(), mysql.get());
}

TEST(ProgramBuilderTest, WiringIsComplete)
{
    auto app = ProgramBuilder::cached(appProfile("caddy"));
    const AppProfile &profile = appProfile("caddy");
    EXPECT_NE(app->requestDriver, kNoFunc);
    ASSERT_EQ(app->dispatchers.size(), profile.numStages);
    ASSERT_EQ(app->stageRoutines.size(), profile.numStages);
    for (unsigned s = 0; s < profile.numStages; ++s) {
        EXPECT_EQ(app->stageRoutines[s].size(),
                  profile.routinesPerStage[s])
            << "stage " << s;
    }
    EXPECT_FALSE(app->irqRoutines.empty());
}

TEST(ProgramBuilderTest, BundleEntriesInPaperRange)
{
    // Table 4: 2.3% - 6.1% of functions are Bundle entries.
    for (const std::string &binary : allBinaries()) {
        auto app = ProgramBuilder::cached(
            appProfile(workloadForBinary(binary)));
        double pct = app->image.analysis.entryFraction * 100.0;
        EXPECT_GT(pct, 1.0) << binary;
        EXPECT_LT(pct, 8.0) << binary;
    }
}

TEST(ProgramBuilderTest, DispatchersDivergeIntoRoutines)
{
    auto app = ProgramBuilder::cached(appProfile("tidb-tpcc"));
    // Every multi-routine stage dispatcher has an indirect call site
    // whose candidates are exactly the stage's routines.
    const AppProfile &profile = appProfile("tidb-tpcc");
    for (unsigned s = 0; s < profile.numStages; ++s) {
        if (profile.routinesPerStage[s] < 2)
            continue;
        const Function &dispatcher =
            app->program.func(app->dispatchers[s]);
        bool found = false;
        for (const BodyOp &op : dispatcher.body) {
            if (op.kind != OpKind::CallSite || !op.indirect)
                continue;
            EXPECT_EQ(dispatcher.targets[op.targetIdx].candidates,
                      app->stageRoutines[s]);
            found = true;
        }
        EXPECT_TRUE(found) << "stage " << s;
    }
}

TEST(ProgramBuilderTest, RoutineRootsAreTaggedEntries)
{
    // Multi-routine stage roots should be Bundle entries (the paper's
    // divergence points).
    auto app = ProgramBuilder::cached(appProfile("tidb-tpcc"));
    const AppProfile &profile = appProfile("tidb-tpcc");
    unsigned tagged_roots = 0, total_roots = 0;
    for (unsigned s = 0; s < profile.numStages; ++s) {
        if (profile.routinesPerStage[s] < 2)
            continue;
        for (FuncId root : app->stageRoutines[s]) {
            ++total_roots;
            tagged_roots += app->image.analysis.isEntry(root);
        }
    }
    EXPECT_GT(total_roots, 0u);
    // Most (not necessarily all) routine roots are divergence points.
    EXPECT_GT(double(tagged_roots) / total_roots, 0.5);
}

TEST(ProgramBuilderTest, StaticFootprintExceedsThresholdForDriver)
{
    auto app = ProgramBuilder::cached(appProfile("caddy"));
    CallGraph graph(app->program);
    const auto &reach = graph.reachableSizes();
    EXPECT_GT(reach[app->requestDriver], kDefaultBundleThreshold);
}

} // namespace
} // namespace hp
