#include <gtest/gtest.h>

#include <set>

#include "workload/app_profile.hh"

namespace hp
{
namespace
{

TEST(AppProfileTest, AllElevenWorkloadsRegistered)
{
    EXPECT_EQ(allWorkloads().size(), 11u);
    for (const std::string &name : allWorkloads()) {
        const AppProfile &profile = appProfile(name);
        EXPECT_EQ(profile.name, name);
        EXPECT_FALSE(profile.binary.empty());
    }
}

TEST(AppProfileTest, EightDistinctBinaries)
{
    EXPECT_EQ(allBinaries().size(), 8u);
    std::set<std::string> from_workloads;
    for (const std::string &name : allWorkloads())
        from_workloads.insert(appProfile(name).binary);
    std::set<std::string> binaries(allBinaries().begin(),
                                   allBinaries().end());
    EXPECT_EQ(from_workloads, binaries);
}

TEST(AppProfileTest, SharedBinariesShareStaticShape)
{
    // Workloads on the same binary must agree on every field the
    // program builder consumes, or the image cache would be wrong.
    const AppProfile &tpcc = appProfile("tidb-tpcc");
    const AppProfile &sysbench = appProfile("tidb-sysbench");
    EXPECT_EQ(tpcc.binary, sysbench.binary);
    EXPECT_EQ(tpcc.binarySeed, sysbench.binarySeed);
    EXPECT_EQ(tpcc.numStages, sysbench.numStages);
    EXPECT_EQ(tpcc.routinesPerStage, sysbench.routinesPerStage);
    EXPECT_EQ(tpcc.funcsPerRoutine, sysbench.funcsPerRoutine);
    EXPECT_EQ(tpcc.sharedUtilFuncs, sysbench.sharedUtilFuncs);
    EXPECT_EQ(tpcc.coldLibraries, sysbench.coldLibraries);
    // But they differ dynamically.
    EXPECT_NE(tpcc.requestSeed, sysbench.requestSeed);
}

TEST(AppProfileTest, StructurallyValid)
{
    for (const std::string &name : allWorkloads()) {
        const AppProfile &p = appProfile(name);
        EXPECT_EQ(p.routinesPerStage.size(), p.numStages) << name;
        EXPECT_GT(p.requestTypes, 0u) << name;
        EXPECT_GE(p.rowsMax, p.rowsMin) << name;
        EXPECT_LE(p.branchJitter, 100u) << name;
        EXPECT_LE(p.callJitter, 100u) << name;
        EXPECT_LE(p.typeSensitivePercent, 100u) << name;
        EXPECT_GT(p.funcInstsMax, p.funcInstsMin) << name;
    }
}

TEST(AppProfileTest, WorkloadForBinaryRoundTrips)
{
    for (const std::string &binary : allBinaries()) {
        const std::string &workload = workloadForBinary(binary);
        EXPECT_EQ(appProfile(workload).binary, binary);
    }
}

TEST(AppProfileDeathTest, UnknownWorkloadFatals)
{
    EXPECT_DEATH(appProfile("no-such-app"), "unknown workload");
}

} // namespace
} // namespace hp
