/**
 * @file
 * Shared helpers for unit tests: tiny hand-built programs with known
 * call-graph shapes, so analyses can be checked against exact values.
 */

#ifndef HP_TESTS_TEST_HELPERS_HH
#define HP_TESTS_TEST_HELPERS_HH

#include <vector>

#include "binary/program.hh"

namespace hp::test
{

/** Adds a leaf function: a run of @p insts-2 plus Ret. */
inline FuncId
addLeaf(Program &program, const std::string &name, std::uint32_t insts,
        std::uint16_t module = 0)
{
    FuncId id = program.addFunction(name, module);
    Function &fn = program.func(id);
    if (insts > 1) {
        BodyOp run;
        run.kind = OpKind::Run;
        run.offset = 0;
        run.length = insts - 1;
        fn.body.push_back(run);
    }
    BodyOp ret;
    ret.kind = OpKind::Ret;
    ret.offset = insts > 1 ? insts - 1 : 0;
    fn.body.push_back(ret);
    return id;
}

/**
 * Adds a caller: alternating short runs and unconditional call sites
 * to @p callees (each with execProb 100), ending in Ret.
 */
inline FuncId
addCaller(Program &program, const std::string &name,
          const std::vector<FuncId> &callees, std::uint16_t module = 0,
          std::uint32_t run_len = 4)
{
    FuncId id = program.addFunction(name, module);
    Function &fn = program.func(id);
    std::uint32_t cursor = 0;
    for (FuncId callee : callees) {
        BodyOp run;
        run.kind = OpKind::Run;
        run.offset = cursor;
        run.length = run_len;
        fn.body.push_back(run);
        cursor += run_len;

        CallTarget target;
        target.candidates = {callee};
        fn.targets.push_back(target);

        BodyOp call;
        call.kind = OpKind::CallSite;
        call.offset = cursor;
        call.targetIdx =
            static_cast<std::uint32_t>(fn.targets.size() - 1);
        call.execProb = 100;
        fn.body.push_back(call);
        ++cursor;
    }
    BodyOp ret;
    ret.kind = OpKind::Ret;
    ret.offset = cursor;
    fn.body.push_back(ret);
    return id;
}

} // namespace hp::test

#endif // HP_TESTS_TEST_HELPERS_HH
