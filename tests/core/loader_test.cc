#include <gtest/gtest.h>

#include <algorithm>

#include "../test_helpers.hh"
#include "core/loader.hh"

namespace hp
{
namespace
{

constexpr std::uint32_t
instsFor(std::uint64_t bytes)
{
    return static_cast<std::uint32_t>(bytes / kInstBytes);
}

struct TaggedFixture
{
    Program program;
    FuncId big_a, big_b, parent;
    LinkedImage image;

    TaggedFixture()
    {
        big_a = test::addLeaf(program, "bigA", instsFor(250 * 1024));
        big_b = test::addLeaf(program, "bigB", instsFor(260 * 1024));
        parent = test::addCaller(program, "parent", {big_a, big_b});
        program.layout();
        image = linkAndTag(program);
    }
};

TEST(LoaderTest, TagsCallSitesOfEntryFunctions)
{
    TaggedFixture fx;
    // Both calls inside parent target entry functions -> both call
    // instructions tagged. addCaller places calls at slots 4 and 9.
    const Function &parent_fn = fx.program.func(fx.parent);
    Addr call_a = parent_fn.instAddr(4);
    Addr call_b = parent_fn.instAddr(9);
    EXPECT_TRUE(fx.image.tags.isTagged(call_a));
    EXPECT_TRUE(fx.image.tags.isTagged(call_b));
}

TEST(LoaderTest, TagsReturnsOfEntryFunctions)
{
    TaggedFixture fx;
    const Function &fa = fx.program.func(fx.big_a);
    Addr ret_a = fa.instAddr(fa.numInsts() - 1);
    EXPECT_TRUE(fx.image.tags.isTagged(ret_a));
    // parent is an entry (root): its return is tagged too.
    const Function &fp = fx.program.func(fx.parent);
    EXPECT_TRUE(fx.image.tags.isTagged(fp.instAddr(fp.numInsts() - 1)));
}

TEST(LoaderTest, NonEntryInstructionsUntagged)
{
    TaggedFixture fx;
    const Function &fa = fx.program.func(fx.big_a);
    // Interior run instructions are never tagged.
    EXPECT_FALSE(fx.image.tags.isTagged(fa.instAddr(0)));
    EXPECT_FALSE(fx.image.tags.isTagged(fa.instAddr(10)));
}

TEST(LoaderTest, SectionSortedAndUnique)
{
    TaggedFixture fx;
    const auto &tagged = fx.image.section.taggedInstructions;
    EXPECT_TRUE(std::is_sorted(tagged.begin(), tagged.end()));
    EXPECT_EQ(std::adjacent_find(tagged.begin(), tagged.end()),
              tagged.end());
    EXPECT_EQ(tagged.size(), fx.image.tags.size());
}

TEST(LoaderTest, IndirectSiteTaggedIfAnyCandidateIsEntry)
{
    Program program;
    FuncId big = test::addLeaf(program, "big", instsFor(300 * 1024));
    FuncId small = test::addLeaf(program, "small", 10);
    // A second large branch makes the parent's reachable size exceed
    // big's by more than the threshold, so big is a divergence point.
    FuncId other = test::addLeaf(program, "other", instsFor(280 * 1024));
    FuncId parent = program.addFunction("parent");
    Function &fn = program.func(parent);
    {
        CallTarget target;
        target.candidates = {small, big};
        fn.targets.push_back(target);
        BodyOp indirect_call;
        indirect_call.kind = OpKind::CallSite;
        indirect_call.offset = 0;
        indirect_call.targetIdx = 0;
        indirect_call.indirect = true;
        fn.body.push_back(indirect_call);
    }
    {
        CallTarget target;
        target.candidates = {other};
        fn.targets.push_back(target);
        BodyOp direct_call;
        direct_call.kind = OpKind::CallSite;
        direct_call.offset = 1;
        direct_call.targetIdx = 1;
        fn.body.push_back(direct_call);
    }
    BodyOp ret;
    ret.kind = OpKind::Ret;
    ret.offset = 2;
    fn.body.push_back(ret);
    program.layout();

    LinkedImage image = linkAndTag(program);
    EXPECT_TRUE(image.analysis.isEntry(big));
    EXPECT_FALSE(image.analysis.isEntry(small));
    // The indirect call site carries the tag because one of its
    // candidates (big) is an entry.
    EXPECT_TRUE(image.tags.isTagged(fn.instAddr(0)));
}

TEST(LoaderTest, EmptyTagMapSafe)
{
    TagMap tags;
    EXPECT_FALSE(tags.isTagged(0x400000));
    EXPECT_EQ(tags.size(), 0u);
}

TEST(LoaderTest, NoEntriesNoTags)
{
    Program program;
    FuncId leaf = test::addLeaf(program, "leaf", 16);
    test::addCaller(program, "root", {leaf});
    program.layout();
    LinkedImage image = linkAndTag(program);
    EXPECT_TRUE(image.section.taggedInstructions.empty());
    EXPECT_EQ(image.tags.size(), 0u);
}

} // namespace
} // namespace hp
