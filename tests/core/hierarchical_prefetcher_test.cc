#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "core/hierarchical_prefetcher.hh"

namespace hp
{
namespace
{

DynInst
taggedCall(Addr pc, Addr target)
{
    DynInst inst;
    inst.pc = pc;
    inst.kind = InstKind::Call;
    inst.taken = true;
    inst.target = target;
    inst.tagged = true;
    return inst;
}

DynInst
plain(Addr pc)
{
    DynInst inst;
    inst.pc = pc;
    inst.kind = InstKind::Plain;
    return inst;
}

/** Drains every queued prefetch after ticking at @p now. */
std::vector<Addr>
drain(HierarchicalPrefetcher &pf, Cycle now)
{
    pf.tick(now);
    std::vector<Addr> blocks;
    Addr block;
    while (pf.popRequest(block))
        blocks.push_back(block);
    return blocks;
}

/**
 * Executes one Bundle: a tagged call to @p body_base, then @p blocks
 * cache blocks of straight-line code. Returns the cycle after.
 */
Cycle
runBundle(HierarchicalPrefetcher &pf, Addr call_pc, Addr body_base,
          unsigned blocks, Cycle now)
{
    pf.onCommit(taggedCall(call_pc, body_base), now++);
    for (unsigned b = 0; b < blocks; ++b) {
        for (unsigned i = 0; i < kInstsPerBlock; ++i) {
            pf.onCommit(plain(body_base + Addr(b) * kBlockBytes +
                              Addr(i) * kInstBytes),
                        now);
        }
        now += 4;
    }
    return now;
}

struct HierFixture
{
    HierarchicalConfig config;
    NullMetadataMemory memory;

    HierFixture()
    {
        config.trackBundleStats = true;
    }
};

TEST(HierarchicalPrefetcherTest, FirstExecutionRecordsOnly)
{
    HierFixture fx;
    HierarchicalPrefetcher pf(fx.config, fx.memory);

    Cycle now = runBundle(pf, 0x1000, 0x400000, 10, 0);
    auto blocks = drain(pf, now);
    EXPECT_TRUE(blocks.empty()); // nothing recorded yet at trigger time
    EXPECT_EQ(pf.stats().matMisses, 1u);
    EXPECT_EQ(pf.stats().replaysStarted, 0u);
}

TEST(HierarchicalPrefetcherTest, SecondExecutionReplaysRecording)
{
    HierFixture fx;
    HierarchicalPrefetcher pf(fx.config, fx.memory);

    constexpr unsigned kBlocks = 10;
    Cycle now = runBundle(pf, 0x1000, 0x400000, kBlocks, 0);
    // Second trigger of the same Bundle: the first execution's
    // footprint must be replayed.
    now = runBundle(pf, 0x1000, 0x400000, kBlocks, now);
    auto blocks = drain(pf, now);

    EXPECT_EQ(pf.stats().matHits, 1u);
    EXPECT_EQ(pf.stats().replaysStarted, 1u);
    std::set<Addr> unique(blocks.begin(), blocks.end());
    // The full footprint: every body block.
    for (unsigned b = 0; b < kBlocks; ++b)
        EXPECT_TRUE(unique.count(0x400000 + Addr(b) * kBlockBytes));
}

TEST(HierarchicalPrefetcherTest, BundleIdDependsOnTarget)
{
    HierFixture fx;
    HierarchicalPrefetcher pf(fx.config, fx.memory);

    Cycle now = runBundle(pf, 0x1000, 0x400000, 4, 0);
    // Same call site, different target -> different Bundle -> miss.
    now = runBundle(pf, 0x1000, 0x800000, 4, now);
    EXPECT_EQ(pf.stats().matMisses, 2u);
    EXPECT_EQ(pf.stats().matHits, 0u);
}

TEST(HierarchicalPrefetcherTest, SupersedeKeepsOnlyLastFootprint)
{
    HierFixture fx;
    HierarchicalPrefetcher pf(fx.config, fx.memory);

    Addr entry = 0x400000;
    auto run_variant = [&pf, entry](unsigned skip_blocks, Cycle now) {
        pf.onCommit(taggedCall(0x1000, entry), now++);
        // Entry block always touched, then a variant suffix.
        for (unsigned b = skip_blocks; b < skip_blocks + 6; ++b) {
            pf.onCommit(
                plain(entry + Addr(b) * kBlockBytes), now);
            now += 2;
        }
        return now;
    };

    Cycle now = run_variant(0, 0);   // exec 1: blocks 0..5
    now = run_variant(32, now);      // exec 2: blocks 32..37
    now = run_variant(64, now);      // exec 3: replay sees exec 2
    auto blocks = drain(pf, now);
    std::set<Addr> unique(blocks.begin(), blocks.end());
    // Replay at exec 3 must contain exec 2's blocks, not exec 1's.
    EXPECT_TRUE(unique.count(entry + 32 * kBlockBytes));
    EXPECT_FALSE(unique.count(entry + 0 * kBlockBytes));
}

TEST(HierarchicalPrefetcherTest, MetadataTrafficAccounted)
{
    HierFixture fx;
    HierarchicalPrefetcher pf(fx.config, fx.memory);

    Cycle now = runBundle(pf, 0x1000, 0x400000, 8, 0);
    EXPECT_GT(pf.stats().metadataWriteBytes, 0u);
    now = runBundle(pf, 0x1000, 0x400000, 8, now);
    EXPECT_GT(pf.stats().metadataReadBytes, 0u);
}

TEST(HierarchicalPrefetcherTest, MetadataReadLatencyDelaysReplay)
{
    // With a slow metadata service, replay blocks must not be ready
    // before the read completes.
    class SlowMemory : public MetadataMemory
    {
      public:
        Cycle
        metadataRead(std::uint64_t, Cycle now) override
        {
            return now + 1000;
        }
        void metadataWrite(std::uint64_t, Cycle) override {}
    };

    HierarchicalConfig config;
    SlowMemory memory;
    HierarchicalPrefetcher pf(config, memory);

    Cycle now = runBundle(pf, 0x1000, 0x400000, 4, 0);
    Cycle trigger = now;
    pf.onCommit(taggedCall(0x1000, 0x400000), trigger);
    // Immediately after the trigger nothing can be issued yet.
    auto early = drain(pf, trigger + 1);
    EXPECT_TRUE(early.empty());
    auto late = drain(pf, trigger + 2000);
    EXPECT_FALSE(late.empty());
}

TEST(HierarchicalPrefetcherTest, RecordTruncatedAtMaxSegments)
{
    HierFixture fx;
    fx.config.maxSegmentsPerBundle = 2;
    HierarchicalPrefetcher pf(fx.config, fx.memory);

    // Touch far more regions than 2 segments can hold (64 regions).
    Cycle now = 0;
    pf.onCommit(taggedCall(0x1000, 0x400000), now++);
    for (unsigned r = 0; r < 200; ++r) {
        pf.onCommit(plain(0x400000 + Addr(r) * kRegionBlocks *
                          kBlockBytes),
                    now++);
    }
    pf.onCommit(taggedCall(0x1000, 0x800000), now++); // close record
    EXPECT_GT(pf.stats().recordsTruncated, 0u);
}

TEST(HierarchicalPrefetcherTest, TaggedReturnStartsBundle)
{
    HierFixture fx;
    HierarchicalPrefetcher pf(fx.config, fx.memory);

    DynInst ret;
    ret.pc = 0x2000;
    ret.kind = InstKind::Return;
    ret.taken = true;
    ret.target = 0x3000;
    ret.tagged = true;

    pf.onCommit(ret, 0);
    EXPECT_EQ(pf.stats().bundlesStarted, 1u);
    EXPECT_EQ(pf.stats().taggedCommits, 1u);
}

TEST(HierarchicalPrefetcherTest, UntaggedControlFlowIgnored)
{
    HierFixture fx;
    HierarchicalPrefetcher pf(fx.config, fx.memory);

    DynInst call;
    call.pc = 0x2000;
    call.kind = InstKind::Call;
    call.taken = true;
    call.target = 0x3000;
    call.tagged = false;

    pf.onCommit(call, 0);
    EXPECT_EQ(pf.stats().bundlesStarted, 0u);
}

TEST(HierarchicalPrefetcherTest, StorageBudgetNearPaper)
{
    HierFixture fx;
    HierarchicalPrefetcher pf(fx.config, fx.memory);
    double kb = double(pf.storageBits()) / 8.0 / 1024.0;
    // 1.94 KB table + small Compression Buffer.
    EXPECT_LT(kb, 2.5);
    EXPECT_GT(kb, 1.9);
}

TEST(HierarchicalPrefetcherTest, BundleStatsTrackJaccard)
{
    HierFixture fx;
    HierarchicalPrefetcher pf(fx.config, fx.memory);

    Cycle now = runBundle(pf, 0x1000, 0x400000, 10, 0);
    now = runBundle(pf, 0x1000, 0x400000, 10, now);
    now = runBundle(pf, 0x1000, 0x400000, 10, now);
    // Identical executions -> Jaccard 1.0.
    EXPECT_GT(pf.stats().bundleJaccard.count(), 0u);
    EXPECT_DOUBLE_EQ(pf.stats().bundleJaccard.mean(), 1.0);
    EXPECT_EQ(pf.stats().dynamicBundles, 1u);
}

TEST(HierarchicalPrefetcherTest, BufferWrapInvalidatesTableEntries)
{
    HierFixture fx;
    // Tiny buffer: 4 segments.
    fx.config.metadataBufferBytes = 4 * kSegmentEncodedBytes;
    HierarchicalPrefetcher pf(fx.config, fx.memory);

    // Record several distinct bundles, each needing >= 1 segment, so
    // the circular allocator must reclaim heads.
    Cycle now = 0;
    for (unsigned i = 0; i < 12; ++i) {
        now = runBundle(pf, 0x1000, 0x400000 + Addr(i) * 0x100000, 40,
                        now);
    }
    EXPECT_GT(pf.stats().matInvalidations, 0u);
}

} // namespace
} // namespace hp
