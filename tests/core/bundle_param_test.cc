#include <gtest/gtest.h>

#include "core/hierarchical_prefetcher.hh"
#include "core/loader.hh"
#include "workload/program_builder.hh"

namespace hp
{
namespace
{

/**
 * Property sweep over divergence thresholds on a real (synthetic)
 * server binary: raising the threshold must monotonically shrink the
 * entry set, and every entry must satisfy Algorithm 1's conditions.
 */
class ThresholdSweep : public ::testing::TestWithParam<std::uint64_t>
{
  protected:
    static void
    SetUpTestSuite()
    {
        app_ = ProgramBuilder::cached(appProfile("caddy"))
                   ; // shared across params
        graph_ = new CallGraph(app_->program);
    }

    static std::shared_ptr<const BuiltApp> app_;
    static CallGraph *graph_;
};

std::shared_ptr<const BuiltApp> ThresholdSweep::app_;
CallGraph *ThresholdSweep::graph_ = nullptr;

TEST_P(ThresholdSweep, EveryEntrySatisfiesAlgorithmOne)
{
    std::uint64_t threshold = GetParam();
    BundleAnalysis analysis = findBundleEntries(*graph_, threshold);
    const auto &reach = analysis.reachableSizes;
    for (FuncId entry : analysis.entries) {
        EXPECT_GE(reach[entry], threshold);
        const auto &parents = graph_->parents(entry);
        if (parents.empty())
            continue; // root rule
        bool divergent = false;
        for (FuncId parent : parents) {
            if (reach[parent] > reach[entry] &&
                reach[parent] - reach[entry] > threshold) {
                divergent = true;
            }
        }
        EXPECT_TRUE(divergent) << "entry " << entry;
    }
}

TEST_P(ThresholdSweep, MonotonicInThreshold)
{
    std::uint64_t threshold = GetParam();
    BundleAnalysis tight = findBundleEntries(*graph_, threshold);
    BundleAnalysis loose = findBundleEntries(*graph_, threshold / 2);
    // A smaller threshold can only admit more or equal entries.
    EXPECT_GE(loose.entries.size(), tight.entries.size());
}

INSTANTIATE_TEST_SUITE_P(Thresholds, ThresholdSweep,
                         ::testing::Values(50ull * 1024,
                                           100ull * 1024,
                                           200ull * 1024,
                                           400ull * 1024,
                                           800ull * 1024),
                         [](const auto &info) {
                             return std::to_string(info.param / 1024) +
                                    "KB";
                         });

/**
 * Property sweep over Metadata Address Table sizes: the storage
 * formula must track the geometry, and behaviour must stay correct.
 */
class MatSweep : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(MatSweep, StorageScalesWithEntries)
{
    unsigned entries = GetParam();
    MetadataAddressTable table(entries, 8, 11);
    MetadataAddressTable half(entries / 2, 8, 11);
    // Tag width grows as sets shrink, so storage is slightly more
    // than 2x, never less.
    EXPECT_GE(table.storageBits(), 2 * half.storageBits() - entries);
}

TEST_P(MatSweep, HoldsUpToCapacityDistinctIds)
{
    unsigned entries = GetParam();
    MetadataAddressTable table(entries, 8, 11);
    // Insert exactly `entries` ids that spread over all sets.
    unsigned sets = entries / 8;
    for (unsigned i = 0; i < entries; ++i) {
        BundleId id = (i % sets) | ((i / sets) << 16);
        table.insert(id, i);
    }
    EXPECT_EQ(table.occupancy(), entries);
}

INSTANTIATE_TEST_SUITE_P(Sizes, MatSweep,
                         ::testing::Values(64u, 128u, 256u, 512u,
                                           1024u, 2048u, 4096u));

} // namespace
} // namespace hp
