/**
 * @file
 * Property-based test: CompressionBuffer vs a naive vector-based
 * reference model of Section 5.3.1's spec — newest-first matching,
 * FIFO eviction on overflow, creation-order drain — under random
 * block streams with realistic spatial locality, fixed seeds.
 * Serialization round-trips are checked mid-stream so wrapped/evicted
 * states are covered too.
 */

#include <gtest/gtest.h>

#include <vector>

#include "core/compression_buffer.hh"
#include "util/rng.hh"
#include "util/serialize.hh"
#include "util/types.hh"

namespace hp
{
namespace
{

/** Straight-line reimplementation of the spec, no cleverness. */
class NaiveCompressionBuffer
{
  public:
    explicit NaiveCompressionBuffer(unsigned entries)
        : capacity_(entries)
    {
    }

    std::optional<SpatialRegion>
    touch(Addr block_addr)
    {
        for (std::size_t i = regions_.size(); i-- > 0;) {
            if (regions_[i].covers(block_addr)) {
                regions_[i].touch(block_addr);
                return std::nullopt;
            }
        }
        SpatialRegion fresh;
        fresh.base = blockAlign(block_addr);
        fresh.touch(block_addr);
        std::optional<SpatialRegion> evicted;
        if (regions_.size() == capacity_) {
            evicted = regions_.front();
            regions_.erase(regions_.begin());
        }
        regions_.push_back(fresh);
        return evicted;
    }

    std::vector<SpatialRegion>
    flush()
    {
        std::vector<SpatialRegion> drained = regions_;
        regions_.clear();
        return drained;
    }

    const std::vector<SpatialRegion> &regions() const { return regions_; }

  private:
    unsigned capacity_;
    std::vector<SpatialRegion> regions_;
};

/** A block stream with hot regions and occasional far jumps. */
Addr
nextBlock(Rng &rng, Addr &cursor)
{
    const std::uint64_t roll = rng.nextUint(100);
    if (roll < 70) {
        // Stay near the cursor: dense spatial reuse inside regions.
        cursor += kBlockBytes * rng.nextRange(-3, 4);
    } else if (roll < 90) {
        // Medium jump: often a different resident region.
        cursor += kBlockBytes * rng.nextRange(-200, 200);
    } else {
        // Far jump: forces evictions.
        cursor = 0x400000 + kBlockBytes * rng.nextUint(1 << 16);
    }
    return blockAlign(cursor);
}

class CompressionBufferPropertyTest
    : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(CompressionBufferPropertyTest, MatchesNaiveReference)
{
    for (unsigned capacity : {1u, 2u, 16u}) {
        Rng rng(GetParam());
        CompressionBuffer buffer(capacity);
        NaiveCompressionBuffer ref(capacity);
        Addr cursor = 0x400000;

        for (int op = 0; op < 30'000; ++op) {
            const Addr block = nextBlock(rng, cursor);
            const std::optional<SpatialRegion> got = buffer.touch(block);
            const std::optional<SpatialRegion> want = ref.touch(block);
            ASSERT_EQ(got.has_value(), want.has_value())
                << "op " << op << " capacity " << capacity;
            if (got)
                ASSERT_EQ(*got, *want) << "op " << op;
            ASSERT_EQ(buffer.size(), ref.regions().size());
        }

        EXPECT_EQ(buffer.flush(), ref.flush());
        EXPECT_EQ(buffer.size(), 0u);
    }
}

TEST_P(CompressionBufferPropertyTest, SerializeRoundTripsMidStream)
{
    Rng rng(GetParam() ^ 0x5eed);
    CompressionBuffer buffer(8);
    Addr cursor = 0x400000;
    for (int op = 0; op < 5'000; ++op)
        buffer.touch(nextBlock(rng, cursor));

    StateWriter writer;
    buffer.serializeState(writer);
    const std::vector<std::uint8_t> bytes = writer.take();

    // Restore over a buffer left in a different state.
    CompressionBuffer restored(8);
    restored.touch(0x1000);
    StateLoader loader(bytes.data(), bytes.size());
    restored.serializeState(loader);
    ASSERT_FALSE(loader.failed());
    EXPECT_EQ(loader.remaining(), 0u);
    EXPECT_EQ(restored.size(), buffer.size());

    // Restored buffer must continue exactly like the original.
    for (int op = 0; op < 2'000; ++op) {
        const Addr block = nextBlock(rng, cursor);
        ASSERT_EQ(restored.touch(block), buffer.touch(block)) << "op " << op;
    }
    EXPECT_EQ(restored.flush(), buffer.flush());
}

INSTANTIATE_TEST_SUITE_P(Seeds, CompressionBufferPropertyTest,
                         ::testing::Values(3u, 17u, 0xfeedfaceu));

} // namespace
} // namespace hp
