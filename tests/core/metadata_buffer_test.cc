#include <gtest/gtest.h>

#include "core/metadata_buffer.hh"

namespace hp
{
namespace
{

TEST(MetadataBufferTest, CapacityInSegments)
{
    MetadataBuffer buffer(512 * 1024);
    // 512 KB / 368 B per segment = 1424 segments.
    EXPECT_EQ(buffer.numSegments(), 512u * 1024 / kSegmentEncodedBytes);
    EXPECT_GE(buffer.numSegments(), 1400u);
}

TEST(MetadataBufferTest, PointerBitsMatchPaper)
{
    // The paper's 512 KB buffer is indexed by an 11-bit pointer.
    MetadataBuffer buffer(512 * 1024);
    EXPECT_EQ(buffer.pointerBits(), 11u);
}

TEST(MetadataBufferTest, AllocateInitializesSegment)
{
    MetadataBuffer buffer(8 * 1024);
    auto [idx, invalidated] = buffer.allocate(0x1234, true);
    EXPECT_FALSE(invalidated.has_value());
    const Segment &seg = buffer.seg(idx);
    EXPECT_EQ(seg.owner, 0x1234u);
    EXPECT_TRUE(seg.headOfBundle);
    EXPECT_TRUE(seg.live);
    EXPECT_EQ(seg.next, kNoSeg);
    EXPECT_TRUE(seg.regions.empty());
}

TEST(MetadataBufferTest, CircularReclaimReportsEvictedHead)
{
    MetadataBuffer buffer(2 * kSegmentEncodedBytes);
    ASSERT_EQ(buffer.numSegments(), 2u);
    buffer.allocate(0xaaa, true);
    buffer.allocate(0xaaa, false);
    // Wrap: reclaims the head segment of bundle 0xaaa.
    auto [idx, invalidated] = buffer.allocate(0xbbb, true);
    EXPECT_EQ(idx, 0u);
    ASSERT_TRUE(invalidated.has_value());
    EXPECT_EQ(*invalidated, 0xaaau);
}

TEST(MetadataBufferTest, ReclaimOfNonHeadInvalidatesNothing)
{
    MetadataBuffer buffer(2 * kSegmentEncodedBytes);
    buffer.allocate(0xaaa, true);
    buffer.allocate(0xaaa, false);
    buffer.allocate(0xbbb, true); // reclaims the head (reported)
    // Next allocation reclaims the non-head segment: no invalidation.
    auto [idx, invalidated] = buffer.allocate(0xbbb, false);
    EXPECT_EQ(idx, 1u);
    EXPECT_FALSE(invalidated.has_value());
}

TEST(MetadataBufferTest, SameOwnerReallocationNotReported)
{
    MetadataBuffer buffer(2 * kSegmentEncodedBytes);
    buffer.allocate(0xaaa, true);
    buffer.allocate(0xaaa, false);
    // The same bundle reclaiming its own head is not an invalidation.
    auto [idx, invalidated] = buffer.allocate(0xaaa, true);
    (void)idx;
    EXPECT_FALSE(invalidated.has_value());
}

TEST(MetadataBufferTest, OwnedByChecksOwnerAndLiveness)
{
    MetadataBuffer buffer(4 * kSegmentEncodedBytes);
    auto [idx, inv] = buffer.allocate(7, true);
    (void)inv;
    EXPECT_TRUE(buffer.ownedBy(idx, 7));
    EXPECT_FALSE(buffer.ownedBy(idx, 8));
    EXPECT_FALSE(buffer.ownedBy(kNoSeg, 7));
    EXPECT_FALSE(buffer.ownedBy(9999, 7));
}

TEST(MetadataBufferTest, SegmentEncodedSizeMatchesPaper)
{
    // 32 regions x 11 B + 16 B header = 368 B ~ the paper's 0.36 KB.
    EXPECT_EQ(kSegmentEncodedBytes, 368u);
}

} // namespace
} // namespace hp
