#include <gtest/gtest.h>

#include "core/metadata_table.hh"

namespace hp
{
namespace
{

TEST(MetadataTableTest, MissOnEmpty)
{
    MetadataAddressTable table(512, 8, 11);
    EXPECT_FALSE(table.lookup(0x123456).has_value());
    EXPECT_EQ(table.occupancy(), 0u);
}

TEST(MetadataTableTest, InsertThenLookup)
{
    MetadataAddressTable table(512, 8, 11);
    table.insert(0x123456, 77);
    auto head = table.lookup(0x123456);
    ASSERT_TRUE(head.has_value());
    EXPECT_EQ(*head, 77u);
    EXPECT_EQ(table.occupancy(), 1u);
}

TEST(MetadataTableTest, InsertUpdatesExistingEntry)
{
    MetadataAddressTable table(512, 8, 11);
    table.insert(0x42, 1);
    table.insert(0x42, 2);
    EXPECT_EQ(table.occupancy(), 1u);
    EXPECT_EQ(*table.lookup(0x42), 2u);
}

TEST(MetadataTableTest, Invalidate)
{
    MetadataAddressTable table(512, 8, 11);
    table.insert(0x42, 1);
    table.invalidate(0x42);
    EXPECT_FALSE(table.lookup(0x42).has_value());
    // Invalidating a missing id is a no-op.
    table.invalidate(0x43);
}

TEST(MetadataTableTest, LruEvictionWithinSet)
{
    // 64 sets -> ids that differ only above bit 6 share a set.
    MetadataAddressTable table(512, 8, 11);
    auto id_for_way = [](unsigned way) {
        return BundleId(way << 6); // same set 0, distinct tags
    };
    for (unsigned w = 0; w < 8; ++w)
        table.insert(id_for_way(w), w);
    // Touch way 0 so way 1 becomes LRU.
    EXPECT_TRUE(table.lookup(id_for_way(0)).has_value());
    table.insert(id_for_way(100), 100);
    EXPECT_TRUE(table.lookup(id_for_way(0)).has_value());
    EXPECT_FALSE(table.lookup(id_for_way(1)).has_value());
    EXPECT_TRUE(table.lookup(id_for_way(100)).has_value());
}

TEST(MetadataTableTest, StorageBitsMatchPaperBudget)
{
    // Paper Section 5.3.3: 512 entries, 8-way, 18-bit tag, 11-bit
    // pointer, valid bit, LRU bit -> 15872 bits (1.94 KB).
    MetadataAddressTable table(512, 8, 11);
    EXPECT_EQ(table.storageBits(), 15872u);
    EXPECT_NEAR(double(table.storageBits()) / 8.0 / 1024.0, 1.94, 0.01);
}

TEST(MetadataTableTest, DifferentSetsDoNotConflict)
{
    MetadataAddressTable table(512, 8, 11);
    for (unsigned set = 0; set < 64; ++set)
        table.insert(set, set);
    for (unsigned set = 0; set < 64; ++set)
        EXPECT_EQ(*table.lookup(set), set);
}

TEST(MetadataTableTest, ParameterizedGeometries)
{
    for (unsigned entries : {64u, 128u, 256u, 1024u, 4096u}) {
        MetadataAddressTable table(entries, 8, 11);
        EXPECT_EQ(table.numEntries(), entries);
        table.insert(1, 5);
        EXPECT_EQ(*table.lookup(1), 5u);
    }
}

} // namespace
} // namespace hp
