#include <gtest/gtest.h>

#include "core/compression_buffer.hh"

namespace hp
{
namespace
{

constexpr Addr kBase = 0x400000;

TEST(CompressionBufferTest, SequentialBlocksShareOneRegion)
{
    CompressionBuffer buffer(16);
    for (unsigned i = 0; i < kRegionBlocks; ++i) {
        auto evicted = buffer.touch(kBase + Addr(i) * kBlockBytes);
        EXPECT_FALSE(evicted.has_value());
    }
    auto regions = buffer.flush();
    ASSERT_EQ(regions.size(), 1u);
    EXPECT_EQ(regions[0].base, kBase);
    EXPECT_EQ(regions[0].bits, 0xffffffffu);
    EXPECT_EQ(regions[0].count(), 32u);
}

TEST(CompressionBufferTest, BlockOutsideWindowOpensNewRegion)
{
    CompressionBuffer buffer(16);
    buffer.touch(kBase);
    buffer.touch(kBase + Addr(kRegionBlocks) * kBlockBytes);
    auto regions = buffer.flush();
    ASSERT_EQ(regions.size(), 2u);
}

TEST(CompressionBufferTest, RegionWindowIsAnchoredAtFirstTouch)
{
    CompressionBuffer buffer(16);
    Addr first = kBase + 10 * kBlockBytes;
    buffer.touch(first);
    // A block *before* the base is outside the window.
    buffer.touch(kBase);
    auto regions = buffer.flush();
    ASSERT_EQ(regions.size(), 2u);
    EXPECT_EQ(regions[0].base, first);
    EXPECT_EQ(regions[1].base, kBase);
}

TEST(CompressionBufferTest, EvictionIsFifoOrder)
{
    CompressionBuffer buffer(2);
    Addr window = Addr(kRegionBlocks) * kBlockBytes;
    buffer.touch(kBase);
    buffer.touch(kBase + window);
    auto evicted = buffer.touch(kBase + 2 * window);
    ASSERT_TRUE(evicted.has_value());
    EXPECT_EQ(evicted->base, kBase);
    EXPECT_EQ(buffer.size(), 2u);
}

TEST(CompressionBufferTest, HitRefreshesBitsNotOrder)
{
    CompressionBuffer buffer(2);
    Addr window = Addr(kRegionBlocks) * kBlockBytes;
    buffer.touch(kBase);
    buffer.touch(kBase + window);
    // Touch a block in the *older* region: it must set a bit there,
    // not create a new region or change FIFO order.
    buffer.touch(kBase + kBlockBytes);
    auto evicted = buffer.touch(kBase + 2 * window);
    ASSERT_TRUE(evicted.has_value());
    EXPECT_EQ(evicted->base, kBase);
    EXPECT_EQ(evicted->count(), 2u);
}

TEST(CompressionBufferTest, FlushDrainsEverythingInOrder)
{
    CompressionBuffer buffer(8);
    Addr window = Addr(kRegionBlocks) * kBlockBytes;
    for (unsigned i = 0; i < 5; ++i)
        buffer.touch(kBase + Addr(i) * window);
    auto regions = buffer.flush();
    ASSERT_EQ(regions.size(), 5u);
    for (unsigned i = 0; i < 5; ++i)
        EXPECT_EQ(regions[i].base, kBase + Addr(i) * window);
    EXPECT_EQ(buffer.size(), 0u);
}

TEST(CompressionBufferTest, StorageBitsScaleWithCapacity)
{
    CompressionBuffer a(16), b(32);
    EXPECT_EQ(b.storageBits(), 2 * a.storageBits());
}

TEST(SpatialRegionTest, CoversAndTouch)
{
    SpatialRegion region;
    region.base = kBase;
    EXPECT_TRUE(region.covers(kBase));
    EXPECT_TRUE(
        region.covers(kBase + Addr(kRegionBlocks - 1) * kBlockBytes));
    EXPECT_FALSE(
        region.covers(kBase + Addr(kRegionBlocks) * kBlockBytes));
    EXPECT_FALSE(region.covers(kBase - kBlockBytes));

    region.touch(kBase + 5 * kBlockBytes);
    EXPECT_EQ(region.bits, 1u << 5);
    EXPECT_EQ(region.blockAt(5), kBase + 5 * kBlockBytes);
}

} // namespace
} // namespace hp
