#include <gtest/gtest.h>

#include <algorithm>

#include "../test_helpers.hh"
#include "core/bundle_analysis.hh"

namespace hp
{
namespace
{

/** insts needed for a leaf of roughly @p bytes. */
constexpr std::uint32_t
instsFor(std::uint64_t bytes)
{
    return static_cast<std::uint32_t>(bytes / kInstBytes);
}

/**
 * The paper's Figure 5 shape: root A calls B and C; C calls D; D
 * calls E. Reachable sizes are controlled through leaf padding so the
 * divergence threshold (200 KB) splits exactly as in the figure:
 * B and C are entries (both branches of A exceed the threshold and
 * differ from A by more than it); D is NOT an entry (too close to C).
 */
struct Figure5Fixture
{
    Program program;
    FuncId a, b, c, d, e;
    FuncId bPad, ePad;

    Figure5Fixture()
    {
        // E: 210 KB reachable on its own.
        ePad = test::addLeaf(program, "e_pad", instsFor(205 * 1024));
        e = test::addCaller(program, "e", {ePad});
        // D: E plus a little -> ~215 KB (close to C).
        d = test::addCaller(program, "d", {e});
        // C: D plus ~20 KB -> ~235 KB.
        FuncId c_pad =
            test::addLeaf(program, "c_pad", instsFor(20 * 1024));
        c = test::addCaller(program, "c", {d, c_pad});
        // B: own 250 KB branch.
        bPad = test::addLeaf(program, "b_pad", instsFor(250 * 1024));
        b = test::addCaller(program, "b", {bPad});
        // A: root calling both branches (~485 KB+).
        a = test::addCaller(program, "a", {b, c});
        program.layout();
    }
};

TEST(BundleAnalysisTest, Figure5EntriesMatchPaper)
{
    Figure5Fixture fx;
    CallGraph graph(fx.program);
    BundleAnalysis analysis = findBundleEntries(graph);

    // A (root over threshold), B and C are entries.
    EXPECT_TRUE(analysis.isEntry(fx.a));
    EXPECT_TRUE(analysis.isEntry(fx.b));
    EXPECT_TRUE(analysis.isEntry(fx.c));
    // D meets the size threshold but differs from C by < 200 KB.
    EXPECT_FALSE(analysis.isEntry(fx.d));
    EXPECT_FALSE(analysis.isEntry(fx.e));
    // b_pad is over the size threshold but its parent B exceeds it by
    // only a few bytes, so it is not a divergence point.
    std::uint64_t diff = analysis.reachableSizes[fx.b] -
                         analysis.reachableSizes[fx.bPad];
    EXPECT_LT(diff, kDefaultBundleThreshold);
    EXPECT_FALSE(analysis.isEntry(fx.bPad));
}

TEST(BundleAnalysisTest, SmallGraphHasNoEntries)
{
    Program program;
    FuncId leaf = test::addLeaf(program, "leaf", 100);
    FuncId root = test::addCaller(program, "root", {leaf});
    program.layout();
    CallGraph graph(program);
    BundleAnalysis analysis = findBundleEntries(graph);
    EXPECT_TRUE(analysis.entries.empty());
    EXPECT_FALSE(analysis.isEntry(root));
    EXPECT_DOUBLE_EQ(analysis.entryFraction, 0.0);
}

TEST(BundleAnalysisTest, RootTaggedWhenOverThreshold)
{
    Program program;
    FuncId big =
        test::addLeaf(program, "big", instsFor(300 * 1024));
    FuncId root = test::addCaller(program, "root", {big});
    program.layout();
    CallGraph graph(program);
    BundleAnalysis analysis = findBundleEntries(graph);
    EXPECT_TRUE(analysis.isEntry(root));
    // big itself: differs from root by only a few bytes -> no entry.
    EXPECT_FALSE(analysis.isEntry(big));
}

TEST(BundleAnalysisTest, ThresholdIsRespected)
{
    Program program;
    FuncId big = test::addLeaf(program, "big", instsFor(300 * 1024));
    FuncId root = test::addCaller(program, "root", {big});
    program.layout();
    CallGraph graph(program);

    // With a huge threshold nothing qualifies.
    BundleAnalysis none =
        findBundleEntries(graph, 10ull * 1024 * 1024);
    EXPECT_TRUE(none.entries.empty());

    // With a tiny threshold the root and the divergent child qualify.
    BundleAnalysis all = findBundleEntries(graph, 64);
    EXPECT_TRUE(all.isEntry(root));
    (void)big;
}

TEST(BundleAnalysisTest, EntriesSortedAndFractionConsistent)
{
    Figure5Fixture fx;
    CallGraph graph(fx.program);
    BundleAnalysis analysis = findBundleEntries(graph);
    EXPECT_TRUE(std::is_sorted(analysis.entries.begin(),
                               analysis.entries.end()));
    EXPECT_DOUBLE_EQ(analysis.entryFraction,
                     double(analysis.entries.size()) /
                         double(fx.program.numFunctions()));
}

TEST(BundleAnalysisTest, DivergenceRequiresBothConditions)
{
    // parent -> {bigA, bigB}: both children over the threshold and
    // the parent exceeds each by more than the threshold via the other
    // branch -> both are entries.
    Program program;
    FuncId big_a =
        test::addLeaf(program, "bigA", instsFor(250 * 1024));
    FuncId big_b =
        test::addLeaf(program, "bigB", instsFor(260 * 1024));
    FuncId parent = test::addCaller(program, "parent", {big_a, big_b});
    program.layout();
    CallGraph graph(program);
    BundleAnalysis analysis = findBundleEntries(graph);
    EXPECT_TRUE(analysis.isEntry(big_a));
    EXPECT_TRUE(analysis.isEntry(big_b));
    EXPECT_TRUE(analysis.isEntry(parent)); // root over threshold
}

} // namespace
} // namespace hp
