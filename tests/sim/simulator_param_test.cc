#include <gtest/gtest.h>

#include "sim/runner.hh"

namespace hp
{
namespace
{

SimConfig
quick(const std::string &workload = "caddy")
{
    SimConfig config;
    config.workload = workload;
    config.warmupInsts = 120'000;
    config.measureInsts = 250'000;
    return config;
}

double
ipcOf(const SimConfig &config)
{
    return ExperimentRunner::run(config).ipc();
}

/**
 * Monotonicity properties of the core model: making a resource
 * strictly worse must never make the core faster (within the
 * determinism of the model, these hold exactly).
 */
TEST(SimulatorSweep, MispredictPenaltyMonotonic)
{
    double prev = 1e9;
    for (unsigned penalty : {0u, 7u, 14u, 28u, 56u}) {
        SimConfig config = quick();
        config.mispredictPenalty = penalty;
        double ipc = ipcOf(config);
        EXPECT_LE(ipc, prev + 1e-9) << "penalty " << penalty;
        prev = ipc;
    }
}

TEST(SimulatorSweep, FetchBandwidthMonotonic)
{
    SimConfig narrow = quick();
    narrow.fetchBytesPerCycle = 8;
    SimConfig wide = quick();
    wide.fetchBytesPerCycle = 32;
    EXPECT_LE(ipcOf(narrow), ipcOf(wide));
}

TEST(SimulatorSweep, CommitWidthBoundsIpc)
{
    SimConfig scalar = quick();
    scalar.commitWidth = 1;
    const SimMetrics &m = ExperimentRunner::run(scalar);
    EXPECT_LE(m.ipc(), 1.0);
    SimConfig wide = quick();
    wide.commitWidth = 6;
    EXPECT_GE(ipcOf(wide), m.ipc());
}

TEST(SimulatorSweep, MemoryLatencyMonotonic)
{
    double prev = 1e9;
    for (Cycle lat : {80u, 160u, 320u, 640u}) {
        SimConfig config = quick();
        config.mem.memLatency = lat;
        double ipc = ipcOf(config);
        EXPECT_LE(ipc, prev + 1e-9) << "memLatency " << lat;
        prev = ipc;
    }
}

TEST(SimulatorSweep, BackendStallsSlowTheCore)
{
    SimConfig none = quick();
    none.backendStallPermille = 0;
    SimConfig heavy = quick();
    heavy.backendStallPermille = 60;
    EXPECT_GT(ipcOf(none), ipcOf(heavy));
}

TEST(SimulatorSweep, RobCapLimitsRunahead)
{
    SimConfig tiny = quick();
    tiny.robEntries = 16;
    SimConfig big = quick();
    big.robEntries = 352;
    EXPECT_LE(ipcOf(tiny), ipcOf(big));
}

TEST(SimulatorSweep, TinyFtqStarvesFetch)
{
    SimConfig tiny = quick();
    tiny.ftqEntries = 2;
    SimConfig normal = quick();
    EXPECT_LT(ipcOf(tiny), ipcOf(normal));
}

/** The same sweep as a TEST_P over the fetch-latency ladder. */
class L1LatencySweep : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(L1LatencySweep, HigherL1LatencyNeverHelps)
{
    SimConfig base = quick();
    SimConfig slower = quick();
    slower.mem.l1iLatency = GetParam();
    // l1iLatency only affects hit readiness in this model (pipeline
    // depth covers the base case); misses dominate, so allow equality.
    EXPECT_LE(ipcOf(slower), ipcOf(base) + 0.02);
}

INSTANTIATE_TEST_SUITE_P(Latencies, L1LatencySweep,
                         ::testing::Values(2u, 3u, 4u, 6u));

} // namespace
} // namespace hp
