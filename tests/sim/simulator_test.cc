#include <gtest/gtest.h>

#include "sim/simulator.hh"

namespace hp
{
namespace
{

SimConfig
quickConfig(PrefetcherKind kind = PrefetcherKind::None)
{
    SimConfig config;
    config.workload = "caddy";
    config.warmupInsts = 150'000;
    config.measureInsts = 300'000;
    config.prefetcher = kind;
    return config;
}

TEST(SimulatorTest, RunsAndReportsSaneMetrics)
{
    Simulator sim(quickConfig());
    SimMetrics m = sim.run();
    // The final commit group may overshoot by up to the commit width.
    EXPECT_GE(m.instructions, 300'000u);
    EXPECT_LT(m.instructions, 300'000u + 6);
    EXPECT_GT(m.cycles, m.instructions / 6); // bounded by commit width
    EXPECT_GT(m.ipc(), 0.1);
    EXPECT_LT(m.ipc(), 6.0);
    EXPECT_GT(m.mem.demandAccesses, 0u);
    EXPECT_GT(m.condBranches, 0u);
    EXPECT_GT(m.engine.requests, 0u);
}

TEST(SimulatorTest, Deterministic)
{
    SimMetrics a = Simulator(quickConfig()).run();
    SimMetrics b = Simulator(quickConfig()).run();
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.mem.demandL1Misses, b.mem.demandL1Misses);
    EXPECT_EQ(a.condMispredicts, b.condMispredicts);
    EXPECT_EQ(a.mem.fdip.issued, b.mem.fdip.issued);
}

TEST(SimulatorTest, PerfectL1IEliminatesMissesAndBeatsBaseline)
{
    SimMetrics base = Simulator(quickConfig()).run();
    SimMetrics perfect =
        Simulator(quickConfig(PrefetcherKind::PerfectL1I)).run();
    EXPECT_EQ(perfect.mem.demandL1Misses, 0u);
    EXPECT_GT(perfect.ipc(), base.ipc());
}

TEST(SimulatorTest, FdipIssuesPrefetches)
{
    SimMetrics m = Simulator(quickConfig()).run();
    EXPECT_GT(m.mem.fdip.issued, 0u);
    EXPECT_GT(m.mem.fdip.usefulL1 + m.mem.fdip.lateMerges, 0u);
}

TEST(SimulatorTest, HierarchicalPrefetcherEngages)
{
    SimConfig config = quickConfig(PrefetcherKind::Hierarchical);
    config.hier.trackBundleStats = true;
    Simulator sim(config);
    SimMetrics m = sim.run();
    EXPECT_TRUE(m.hierActive);
    EXPECT_GT(m.hier.bundlesStarted, 0u);
    EXPECT_GT(m.hier.replaysStarted, 0u);
    EXPECT_GT(m.mem.ext.issued, 0u);
    EXPECT_GT(m.hier.metadataWriteBytes, 0u);
}

TEST(SimulatorTest, InfiniteBtbReducesBtbMisses)
{
    SimConfig finite = quickConfig();
    SimConfig infinite = quickConfig();
    infinite.btbEntries = 0;
    SimMetrics mf = Simulator(finite).run();
    SimMetrics mi = Simulator(infinite).run();
    EXPECT_LT(mi.btbMissBlocks, mf.btbMissBlocks);
    EXPECT_GE(mi.ipc(), mf.ipc() * 0.99);
}

TEST(SimulatorTest, SmallerL1IMeansMoreMisses)
{
    SimConfig big = quickConfig();
    SimConfig small = quickConfig();
    small.mem.l1iBytes = 8 * 1024;
    SimMetrics mb = Simulator(big).run();
    SimMetrics ms = Simulator(small).run();
    EXPECT_GT(ms.mem.demandL1Misses, mb.mem.demandL1Misses);
    EXPECT_LE(ms.ipc(), mb.ipc());
}

TEST(SimulatorTest, ReuseTrackingCountsLongRangeAccesses)
{
    SimConfig config = quickConfig();
    config.trackReuse = true;
    SimMetrics m = Simulator(config).run();
    EXPECT_GT(m.longRangeAccesses, 0u);
    EXPECT_LE(m.longRangeL2Misses, m.longRangeAccesses);
}

TEST(SimulatorTest, MispredictsCostCycles)
{
    // Removing the mispredict penalty must speed the core up.
    SimConfig slow = quickConfig();
    SimConfig fast = quickConfig();
    fast.mispredictPenalty = 0;
    SimMetrics m_slow = Simulator(slow).run();
    SimMetrics m_fast = Simulator(fast).run();
    EXPECT_GT(m_fast.ipc(), m_slow.ipc());
}

TEST(SimulatorTest, BackendStallsAccounted)
{
    SimMetrics m = Simulator(quickConfig()).run();
    EXPECT_GT(m.backendStallCycles, 0u);
    EXPECT_LT(m.backendStallCycles, m.cycles);
}

TEST(SimulatorTest, StreamIdenticalAcrossPrefetchers)
{
    // The committed instruction stream must not depend on the
    // prefetcher (timing-independent workload model): engine stats
    // must match exactly between runs.
    SimMetrics a = Simulator(quickConfig()).run();
    SimMetrics b =
        Simulator(quickConfig(PrefetcherKind::Hierarchical)).run();
    EXPECT_EQ(a.engine.calls, b.engine.calls);
    EXPECT_EQ(a.engine.condBranches, b.engine.condBranches);
    EXPECT_EQ(a.engine.taggedInsts, b.engine.taggedInsts);
}

} // namespace
} // namespace hp
