#include <gtest/gtest.h>

#include "sim/simulator.hh"

namespace hp
{
namespace
{

SimConfig
quickConfig(PrefetcherKind kind = PrefetcherKind::None)
{
    SimConfig config;
    config.workload = "caddy";
    config.warmupInsts = 150'000;
    config.measureInsts = 300'000;
    config.prefetcher = kind;
    return config;
}

TEST(SimulatorTest, RunsAndReportsSaneMetrics)
{
    Simulator sim(quickConfig());
    SimMetrics m = sim.run();
    // The final commit group may overshoot by up to the commit width.
    EXPECT_GE(m.instructions, 300'000u);
    EXPECT_LT(m.instructions, 300'000u + 6);
    EXPECT_GT(m.cycles, m.instructions / 6); // bounded by commit width
    EXPECT_GT(m.ipc(), 0.1);
    EXPECT_LT(m.ipc(), 6.0);
    EXPECT_GT(m.mem.demandAccesses, 0u);
    EXPECT_GT(m.condBranches, 0u);
    EXPECT_GT(m.engine.requests, 0u);
}

TEST(SimulatorTest, Deterministic)
{
    SimMetrics a = Simulator(quickConfig()).run();
    SimMetrics b = Simulator(quickConfig()).run();
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.mem.demandL1Misses, b.mem.demandL1Misses);
    EXPECT_EQ(a.condMispredicts, b.condMispredicts);
    EXPECT_EQ(a.mem.fdip.issued, b.mem.fdip.issued);
}

TEST(SimulatorTest, PerfectL1IEliminatesMissesAndBeatsBaseline)
{
    SimMetrics base = Simulator(quickConfig()).run();
    SimMetrics perfect =
        Simulator(quickConfig(PrefetcherKind::PerfectL1I)).run();
    EXPECT_EQ(perfect.mem.demandL1Misses, 0u);
    EXPECT_GT(perfect.ipc(), base.ipc());
}

TEST(SimulatorTest, FdipIssuesPrefetches)
{
    SimMetrics m = Simulator(quickConfig()).run();
    EXPECT_GT(m.mem.fdip.issued, 0u);
    EXPECT_GT(m.mem.fdip.usefulL1 + m.mem.fdip.lateMerges, 0u);
}

TEST(SimulatorTest, HierarchicalPrefetcherEngages)
{
    SimConfig config = quickConfig(PrefetcherKind::Hierarchical);
    config.hier.trackBundleStats = true;
    Simulator sim(config);
    SimMetrics m = sim.run();
    EXPECT_TRUE(m.hierActive);
    EXPECT_GT(m.hier.bundlesStarted, 0u);
    EXPECT_GT(m.hier.replaysStarted, 0u);
    EXPECT_GT(m.mem.ext.issued, 0u);
    EXPECT_GT(m.hier.metadataWriteBytes, 0u);
}

TEST(SimulatorTest, InfiniteBtbReducesBtbMisses)
{
    SimConfig finite = quickConfig();
    SimConfig infinite = quickConfig();
    infinite.btbEntries = 0;
    SimMetrics mf = Simulator(finite).run();
    SimMetrics mi = Simulator(infinite).run();
    EXPECT_LT(mi.btbMissBlocks, mf.btbMissBlocks);
    EXPECT_GE(mi.ipc(), mf.ipc() * 0.99);
}

TEST(SimulatorTest, SmallerL1IMeansMoreMisses)
{
    SimConfig big = quickConfig();
    SimConfig small = quickConfig();
    small.mem.l1iBytes = 8 * 1024;
    SimMetrics mb = Simulator(big).run();
    SimMetrics ms = Simulator(small).run();
    EXPECT_GT(ms.mem.demandL1Misses, mb.mem.demandL1Misses);
    EXPECT_LE(ms.ipc(), mb.ipc());
}

TEST(SimulatorTest, ReuseTrackingCountsLongRangeAccesses)
{
    SimConfig config = quickConfig();
    config.trackReuse = true;
    SimMetrics m = Simulator(config).run();
    EXPECT_GT(m.longRangeAccesses, 0u);
    EXPECT_LE(m.longRangeL2Misses, m.longRangeAccesses);
}

TEST(SimulatorTest, MispredictsCostCycles)
{
    // Removing the mispredict penalty must speed the core up.
    SimConfig slow = quickConfig();
    SimConfig fast = quickConfig();
    fast.mispredictPenalty = 0;
    SimMetrics m_slow = Simulator(slow).run();
    SimMetrics m_fast = Simulator(fast).run();
    EXPECT_GT(m_fast.ipc(), m_slow.ipc());
}

TEST(SimulatorTest, BackendStallsAccounted)
{
    SimMetrics m = Simulator(quickConfig()).run();
    EXPECT_GT(m.backendStallCycles, 0u);
    EXPECT_LT(m.backendStallCycles, m.cycles);
}

TEST(SimulatorTest, StreamIdenticalAcrossPrefetchers)
{
    // The committed instruction stream must not depend on the
    // prefetcher (timing-independent workload model): engine stats
    // must match exactly between runs.
    SimMetrics a = Simulator(quickConfig()).run();
    SimMetrics b =
        Simulator(quickConfig(PrefetcherKind::Hierarchical)).run();
    EXPECT_EQ(a.engine.calls, b.engine.calls);
    EXPECT_EQ(a.engine.condBranches, b.engine.condBranches);
    EXPECT_EQ(a.engine.taggedInsts, b.engine.taggedInsts);
}

TEST(SimulatorStatsTest, RegistryCoversEveryComponent)
{
    Simulator sim(quickConfig(PrefetcherKind::Hierarchical));
    const StatsRegistry &reg = sim.stats();
    for (const char *path :
         {"sim.cycles", "sim.instructions", "sim.ras_mispredicts",
          "l1i.demand_accesses", "l1i.demand_misses",
          "l2i.demand_misses", "llc.demand_misses", "itlb.accesses",
          "itlb.misses", "btb.lookups", "btb.misses",
          "cond.predictions", "cond.mispredicts",
          "indirect.mispredicts", "ras.overflows", "ras.underflows",
          "fdip.issued", "fdip.useful_l1", "ext.issued",
          "ext.late_merges", "dram.demand_bytes",
          "dram.metadata_read_bytes", "engine.instructions",
          "engine.tagged_insts", "hier.requests_pushed",
          "hier.tagged_commits", "hier.metadata_read_bytes"}) {
        EXPECT_TRUE(reg.has(path)) << "missing stat: " << path;
    }
    // Non-hierarchical prefetchers register under the generic "pf".
    Simulator efetch(quickConfig(PrefetcherKind::EFetch));
    EXPECT_TRUE(efetch.stats().has("pf.requests_pushed"));
    EXPECT_FALSE(efetch.stats().has("hier.tagged_commits"));
}

TEST(SimulatorStatsTest, MetricsSnapshotAgreesWithScalarFields)
{
    SimMetrics m =
        Simulator(quickConfig(PrefetcherKind::Hierarchical)).run();
    // The scalar fields are derived from the embedded snapshot; the
    // two views must agree exactly.
    EXPECT_EQ(m.stats.value("sim.cycles"), m.cycles);
    EXPECT_EQ(m.stats.value("sim.instructions"), m.instructions);
    EXPECT_EQ(m.stats.value("cond.predictions"), m.condBranches);
    EXPECT_EQ(m.stats.value("cond.mispredicts"), m.condMispredicts);
    EXPECT_EQ(m.stats.value("btb.misses"), m.btbMissBlocks);
    EXPECT_EQ(m.stats.value("itlb.accesses"), m.itlbAccesses);
    EXPECT_EQ(m.stats.value("l1i.demand_accesses"),
              m.mem.demandAccesses);
    EXPECT_EQ(m.stats.value("l1i.demand_misses"),
              m.mem.demandL1Misses);
    EXPECT_EQ(m.stats.value("ext.issued"), m.mem.ext.issued);
    EXPECT_EQ(m.stats.value("engine.instructions"),
              m.engine.instructions);
    EXPECT_EQ(m.stats.value("hier.replay_prefetches"),
              m.hier.replayPrefetches);
    EXPECT_EQ(m.stats.value("hier.metadata_read_bytes"),
              m.hier.metadataReadBytes);
}

// Golden values captured from the seed implementation (the
// hand-maintained *AtWarmup_ shadow fields and per-counter
// subtraction block) on this exact config, before the registry
// refactor. The registry-derived SimMetrics must reproduce the seed
// path field for field.
TEST(SimulatorStatsTest, RegistryDerivedMetricsMatchSeedPathFdip)
{
    SimMetrics m = Simulator(quickConfig()).run();
    EXPECT_EQ(m.cycles, 818881u);
    EXPECT_EQ(m.instructions, 300003u);
    EXPECT_EQ(m.condBranches, 16531u);
    EXPECT_EQ(m.condMispredicts, 3313u);
    EXPECT_EQ(m.indirectMispredicts, 1u);
    EXPECT_EQ(m.rasMispredicts, 1u);
    EXPECT_EQ(m.btbMissBlocks, 2200u);
    EXPECT_EQ(m.fetchStallCycles, 488171u);
    EXPECT_EQ(m.backendStallCycles, 226751u);
    EXPECT_EQ(m.itlbAccesses, 31981u);
    EXPECT_EQ(m.itlbMisses, 182u);
    EXPECT_EQ(m.mem.demandAccesses, 31981u);
    EXPECT_EQ(m.mem.demandL1Misses, 4180u);
    EXPECT_EQ(m.mem.demandL2Misses, 3241u);
    EXPECT_EQ(m.mem.demandLlcMisses, 3190u);
    EXPECT_EQ(m.mem.servedByMshr, 3588u);
    EXPECT_EQ(m.mem.fdip.issued, 31982u);
    EXPECT_EQ(m.mem.fdip.inserted, 12538u);
    EXPECT_EQ(m.mem.dramDemandBytes, 448u);
    EXPECT_EQ(m.dataDramBytes, 120001u);
    EXPECT_EQ(m.engine.instructions, 300022u);
    EXPECT_EQ(m.engine.requests, 1u);
    EXPECT_EQ(m.engine.calls, 595u);
    EXPECT_EQ(m.engine.returns, 596u);
    EXPECT_EQ(m.engine.condBranches, 16531u);
    EXPECT_EQ(m.engine.taggedInsts, 9u);
}

TEST(SimulatorStatsTest, RegistryDerivedMetricsMatchSeedPathHier)
{
    SimMetrics m =
        Simulator(quickConfig(PrefetcherKind::Hierarchical)).run();
    EXPECT_EQ(m.cycles, 818776u);
    EXPECT_EQ(m.instructions, 300003u);
    EXPECT_EQ(m.condBranches, 16531u);
    EXPECT_EQ(m.condMispredicts, 3313u);
    EXPECT_EQ(m.btbMissBlocks, 2200u);
    EXPECT_EQ(m.fetchStallCycles, 488065u);
    EXPECT_EQ(m.mem.demandL1Misses, 4178u);
    EXPECT_EQ(m.mem.demandL2Misses, 3239u);
    EXPECT_EQ(m.mem.fdip.inserted, 12530u);
    EXPECT_EQ(m.mem.ext.issued, 12u);
    EXPECT_EQ(m.mem.ext.inserted, 8u);
    EXPECT_EQ(m.mem.ext.usefulL1, 7u);
    EXPECT_EQ(m.mem.ext.lateMerges, 1u);
    EXPECT_EQ(m.hier.taggedCommits, 15u);
    EXPECT_EQ(m.hier.replayPrefetches, 12u);
    EXPECT_EQ(m.hier.metadataReadBytes, 368u);
}

} // namespace
} // namespace hp
