#include <gtest/gtest.h>

#include "sim/runner.hh"

namespace hp
{
namespace
{

SimConfig
quickConfig(PrefetcherKind kind = PrefetcherKind::None)
{
    SimConfig config;
    config.workload = "caddy";
    config.warmupInsts = 100'000;
    config.measureInsts = 200'000;
    config.prefetcher = kind;
    return config;
}

TEST(RunnerTest, MemoizesIdenticalConfigs)
{
    std::size_t before = ExperimentRunner::simulationsRun();
    SimMetrics a = ExperimentRunner::run(quickConfig());
    std::size_t after_first = ExperimentRunner::simulationsRun();
    SimMetrics b = ExperimentRunner::run(quickConfig());
    std::size_t after_second = ExperimentRunner::simulationsRun();
    EXPECT_GE(after_first, before); // may have been cached already
    EXPECT_EQ(after_second, after_first);
    // run() returns by value (the cache is shared across threads),
    // but both calls report the one cached simulation.
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.instructions, b.instructions);
}

TEST(RunnerTest, ConfigHashDistinguishesKnobsAndMatchesEquality)
{
    SimConfig base = quickConfig();
    EXPECT_EQ(configHash(base), configHash(quickConfig()));
    EXPECT_TRUE(base == quickConfig());

    SimConfig tweaked = base;
    tweaked.hier.aheadSegments = 7;
    EXPECT_NE(configHash(tweaked), configHash(base));
    EXPECT_FALSE(tweaked == base);

    SimConfig other_workload = base;
    other_workload.workload = "gin";
    EXPECT_NE(configHash(other_workload), configHash(base));
}

TEST(RunnerTest, ConfigKeyDistinguishesEveryKnob)
{
    SimConfig base = quickConfig();
    std::string base_key = ExperimentRunner::configKey(base);

    SimConfig c1 = base;
    c1.prefetcher = PrefetcherKind::Hierarchical;
    EXPECT_NE(ExperimentRunner::configKey(c1), base_key);

    SimConfig c2 = base;
    c2.mem.l1iBytes *= 2;
    EXPECT_NE(ExperimentRunner::configKey(c2), base_key);

    SimConfig c3 = base;
    c3.hier.matEntries = 1024;
    EXPECT_NE(ExperimentRunner::configKey(c3), base_key);

    SimConfig c4 = base;
    c4.mana.lookahead = 7;
    EXPECT_NE(ExperimentRunner::configKey(c4), base_key);

    SimConfig c5 = base;
    c5.extPrefetchToL2 = true;
    EXPECT_NE(ExperimentRunner::configKey(c5), base_key);

    SimConfig c6 = base;
    c6.btbEntries = 0;
    EXPECT_NE(ExperimentRunner::configKey(c6), base_key);

    SimConfig c7 = base;
    c7.workload = "gin";
    EXPECT_NE(ExperimentRunner::configKey(c7), base_key);
}

TEST(RunnerTest, RunPairBaselineIsFdipOnly)
{
    SimConfig config = quickConfig(PrefetcherKind::Hierarchical);
    // Bundles must recur for replays to happen: give this test a
    // window long enough for several requests.
    config.warmupInsts = 800'000;
    config.measureInsts = 1'200'000;
    RunPair pair = ExperimentRunner::runPair(config);
    // The baseline has no Ext prefetches.
    EXPECT_EQ(pair.base.mem.ext.issued, 0u);
    EXPECT_GT(pair.run.mem.ext.issued, 0u);
    // Paired metrics are consistent with the two runs.
    EXPECT_NEAR(pair.paired.speedup,
                pair.run.ipc() / pair.base.ipc() - 1.0, 1e-12);
}

TEST(RunnerTest, DefaultConfigMatchesTableOne)
{
    SimConfig config = defaultConfig("tidb-tpcc");
    EXPECT_EQ(config.ftqEntries, 24u);
    EXPECT_EQ(config.btbEntries, 8192u);
    EXPECT_EQ(config.mem.l1iBytes, 32u * 1024);
    EXPECT_EQ(config.mem.l1iWays, 8u);
    EXPECT_EQ(config.mem.l1iLatency, 2u);
    EXPECT_EQ(config.mem.l2Latency, 14u);
    EXPECT_EQ(config.mem.llcLatency, 50u);
    EXPECT_EQ(config.mem.l1iMshrs, 16u);
    EXPECT_EQ(config.robEntries, 352u);
    EXPECT_EQ(config.commitWidth, 6u);
    EXPECT_EQ(config.hier.matEntries, 512u);
    EXPECT_EQ(config.hier.metadataBufferBytes, 512u * 1024);
}

TEST(RunnerTest, DefaultConfigEnablesBundleStatsForHp)
{
    SimConfig hp_config =
        defaultConfig("caddy", PrefetcherKind::Hierarchical);
    EXPECT_TRUE(hp_config.hier.trackBundleStats);
    SimConfig base = defaultConfig("caddy");
    EXPECT_EQ(base.prefetcher, PrefetcherKind::None);
}

} // namespace
} // namespace hp
