#include <gtest/gtest.h>

#include "sim/runner.hh"

namespace hp
{
namespace
{

SimConfig
quickConfig(PrefetcherKind kind = PrefetcherKind::None)
{
    SimConfig config;
    config.workload = "caddy";
    config.warmupInsts = 100'000;
    config.measureInsts = 200'000;
    config.prefetcher = kind;
    return config;
}

TEST(RunnerTest, MemoizesIdenticalConfigs)
{
    std::size_t before = ExperimentRunner::simulationsRun();
    SimMetrics a = ExperimentRunner::run(quickConfig());
    std::size_t after_first = ExperimentRunner::simulationsRun();
    SimMetrics b = ExperimentRunner::run(quickConfig());
    std::size_t after_second = ExperimentRunner::simulationsRun();
    EXPECT_GE(after_first, before); // may have been cached already
    EXPECT_EQ(after_second, after_first);
    // run() returns by value (the cache is shared across threads),
    // but both calls report the one cached simulation.
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.instructions, b.instructions);
}

TEST(RunnerTest, ConfigHashDistinguishesKnobsAndMatchesEquality)
{
    SimConfig base = quickConfig();
    EXPECT_EQ(configHash(base), configHash(quickConfig()));
    EXPECT_TRUE(base == quickConfig());

    SimConfig tweaked = base;
    tweaked.hier.aheadSegments = 7;
    EXPECT_NE(configHash(tweaked), configHash(base));
    EXPECT_FALSE(tweaked == base);

    SimConfig other_workload = base;
    other_workload.workload = "gin";
    EXPECT_NE(configHash(other_workload), configHash(base));
}

TEST(RunnerTest, ConfigKeyDistinguishesEveryKnob)
{
    SimConfig base = quickConfig();
    std::string base_key = ExperimentRunner::configKey(base);

    SimConfig c1 = base;
    c1.prefetcher = PrefetcherKind::Hierarchical;
    EXPECT_NE(ExperimentRunner::configKey(c1), base_key);

    SimConfig c2 = base;
    c2.mem.l1iBytes *= 2;
    EXPECT_NE(ExperimentRunner::configKey(c2), base_key);

    SimConfig c3 = base;
    c3.hier.matEntries = 1024;
    EXPECT_NE(ExperimentRunner::configKey(c3), base_key);

    SimConfig c4 = base;
    c4.mana.lookahead = 7;
    EXPECT_NE(ExperimentRunner::configKey(c4), base_key);

    SimConfig c5 = base;
    c5.extPrefetchToL2 = true;
    EXPECT_NE(ExperimentRunner::configKey(c5), base_key);

    SimConfig c6 = base;
    c6.btbEntries = 0;
    EXPECT_NE(ExperimentRunner::configKey(c6), base_key);

    SimConfig c7 = base;
    c7.workload = "gin";
    EXPECT_NE(ExperimentRunner::configKey(c7), base_key);
}

TEST(RunnerTest, MeasurementConfigPinsOnlyUnreadFields)
{
    // Fields the configured prefetcher never reads are normalized...
    SimConfig none = quickConfig(PrefetcherKind::None);
    none.eip.maxTargets = 7;
    none.hier.aheadSegments = 9;
    none.mana.indexEntries = 123;
    EXPECT_EQ(measurementConfig(none),
              measurementConfig(quickConfig(PrefetcherKind::None)));

    // ...but fields the simulation does read must survive untouched.
    SimConfig hier = quickConfig(PrefetcherKind::Hierarchical);
    hier.hier.aheadSegments = 9;
    EXPECT_NE(measurementConfig(hier),
              measurementConfig(quickConfig(PrefetcherKind::Hierarchical)));
    EXPECT_EQ(measurementConfig(hier).hier.aheadSegments, 9u);

    SimConfig eip = quickConfig(PrefetcherKind::Eip);
    eip.eip.maxTargets = 5; // actually-read sweep knob
    EXPECT_NE(measurementConfig(eip),
              measurementConfig(quickConfig(PrefetcherKind::Eip)));
}

TEST(RunnerTest, CacheDoesNotRerunConfigsDifferingOnlyInUnreadFields)
{
    // Regression: a sweep over a prefetcher knob must not re-simulate
    // grid points whose configured prefetcher never reads that knob.
    SimConfig a = quickConfig(PrefetcherKind::None);
    a.warmupInsts = 110'000; // unique class within the test binary
    SimConfig b = a;
    b.eip.maxTargets = 99;
    ASSERT_FALSE(a == b); // configKey still tells them apart
    ASSERT_NE(ExperimentRunner::configKey(a),
              ExperimentRunner::configKey(b));

    SimMetrics ma = ExperimentRunner::run(a);
    std::size_t after_a = ExperimentRunner::simulationsRun();
    SimMetrics mb = ExperimentRunner::run(b);
    EXPECT_EQ(ExperimentRunner::simulationsRun(), after_a);
    EXPECT_EQ(ma.cycles, mb.cycles);
}

TEST(RunnerTest, CacheDoesNotAliasConfigsDifferingInReadFields)
{
    // The inverse guard: two configs that differ in a field the
    // simulation reads must stay distinct cache entries.
    SimConfig a = quickConfig(PrefetcherKind::Hierarchical);
    a.warmupInsts = 130'000;
    SimConfig b = a;
    b.hier.aheadSegments = a.hier.aheadSegments + 2;

    ExperimentRunner::run(a);
    std::size_t after_a = ExperimentRunner::simulationsRun();
    ExperimentRunner::run(b);
    EXPECT_EQ(ExperimentRunner::simulationsRun(), after_a + 1);
}

TEST(RunnerTest, RunPairBaselineIsFdipOnly)
{
    SimConfig config = quickConfig(PrefetcherKind::Hierarchical);
    // Bundles must recur for replays to happen: give this test a
    // window long enough for several requests.
    config.warmupInsts = 800'000;
    config.measureInsts = 1'200'000;
    RunPair pair = ExperimentRunner::runPair(config);
    // The baseline has no Ext prefetches.
    EXPECT_EQ(pair.base.mem.ext.issued, 0u);
    EXPECT_GT(pair.run.mem.ext.issued, 0u);
    // Paired metrics are consistent with the two runs.
    EXPECT_NEAR(pair.paired.speedup,
                pair.run.ipc() / pair.base.ipc() - 1.0, 1e-12);
}

TEST(RunnerTest, DefaultConfigMatchesTableOne)
{
    SimConfig config = defaultConfig("tidb-tpcc");
    EXPECT_EQ(config.ftqEntries, 24u);
    EXPECT_EQ(config.btbEntries, 8192u);
    EXPECT_EQ(config.mem.l1iBytes, 32u * 1024);
    EXPECT_EQ(config.mem.l1iWays, 8u);
    EXPECT_EQ(config.mem.l1iLatency, 2u);
    EXPECT_EQ(config.mem.l2Latency, 14u);
    EXPECT_EQ(config.mem.llcLatency, 50u);
    EXPECT_EQ(config.mem.l1iMshrs, 16u);
    EXPECT_EQ(config.robEntries, 352u);
    EXPECT_EQ(config.commitWidth, 6u);
    EXPECT_EQ(config.hier.matEntries, 512u);
    EXPECT_EQ(config.hier.metadataBufferBytes, 512u * 1024);
}

TEST(RunnerTest, DefaultConfigEnablesBundleStatsForHp)
{
    SimConfig hp_config =
        defaultConfig("caddy", PrefetcherKind::Hierarchical);
    EXPECT_TRUE(hp_config.hier.trackBundleStats);
    SimConfig base = defaultConfig("caddy");
    EXPECT_EQ(base.prefetcher, PrefetcherKind::None);
}

} // namespace
} // namespace hp
