#include <gtest/gtest.h>

#include "sim/footprint_probe.hh"

namespace hp
{
namespace
{

DynInst
taggedCall(Addr pc, Addr target)
{
    DynInst inst;
    inst.pc = pc;
    inst.kind = InstKind::Call;
    inst.taken = true;
    inst.target = target;
    inst.tagged = true;
    return inst;
}

DynInst
plain(Addr pc)
{
    DynInst inst;
    inst.pc = pc;
    inst.kind = InstKind::Plain;
    return inst;
}

/** Emits @p blocks cache blocks of straight-line code at @p base. */
void
body(FootprintProbe &probe, Addr base, unsigned blocks)
{
    for (unsigned b = 0; b < blocks; ++b)
        probe.onCommit(plain(base + Addr(b) * kBlockBytes));
}

TEST(FootprintProbeTest, IdenticalFootprintsScoreOne)
{
    FootprintProbe probe(TriggerKind::Bundle, 1);
    for (int rep = 0; rep < 6; ++rep) {
        probe.onCommit(taggedCall(0x1000, 0x400000));
        body(probe, 0x400000, 40);
    }
    probe.finalize();
    EXPECT_GT(probe.triggersSeen(), 0u);
    // Footprint size 16 and 32 both fully covered by the 40 blocks.
    EXPECT_DOUBLE_EQ(probe.meanJaccard(0), 1.0);
    EXPECT_DOUBLE_EQ(probe.meanJaccard(1), 1.0);
}

TEST(FootprintProbeTest, DisjointFootprintsScoreZero)
{
    FootprintProbe probe(TriggerKind::Bundle, 1);
    for (int rep = 0; rep < 6; ++rep) {
        probe.onCommit(taggedCall(0x1000, 0x400000));
        // Alternate between two disjoint code regions.
        Addr base = (rep % 2) ? 0x800000 : 0x400000;
        body(probe, base, 40);
    }
    probe.finalize();
    EXPECT_DOUBLE_EQ(probe.meanJaccard(0), 0.0);
}

TEST(FootprintProbeTest, PartialOverlapBetweenZeroAndOne)
{
    FootprintProbe probe(TriggerKind::Bundle, 1);
    for (int rep = 0; rep < 8; ++rep) {
        probe.onCommit(taggedCall(0x1000, 0x400000));
        // Shared prefix of 20 blocks, then an 20-block variant tail.
        body(probe, 0x400000, 20);
        body(probe, (rep % 2) ? 0xa00000 : 0xb00000, 20);
    }
    probe.finalize();
    double j32 = probe.meanJaccard(1); // 32-block footprints
    EXPECT_GT(j32, 0.2);
    EXPECT_LT(j32, 0.9);
}

TEST(FootprintProbeTest, SignatureTriggersFireOnCalls)
{
    FootprintProbe probe(TriggerKind::Signature, 1);
    DynInst call;
    call.pc = 0x1000;
    call.kind = InstKind::Call;
    call.taken = true;
    call.target = 0x400000;
    probe.onCommit(call);
    EXPECT_EQ(probe.triggersSeen(), 1u);
    probe.onCommit(plain(0x400000));
    EXPECT_EQ(probe.triggersSeen(), 1u);
}

TEST(FootprintProbeTest, BlockTriggersFireOnRegionChange)
{
    FootprintProbe probe(TriggerKind::BlockAddress, 1);
    body(probe, 0x400000, 4); // one 8-block region
    EXPECT_EQ(probe.triggersSeen(), 1u);
    body(probe, 0x500000, 1); // new region
    EXPECT_EQ(probe.triggersSeen(), 2u);
}

TEST(FootprintProbeTest, SamplingReducesCollectors)
{
    FootprintProbe sampled(TriggerKind::Bundle, 4);
    for (int rep = 0; rep < 8; ++rep) {
        sampled.onCommit(taggedCall(0x1000, 0x400000));
        body(sampled, 0x400000, 4);
    }
    EXPECT_EQ(sampled.triggersSeen(), 8u);
    // With period 4, only every 4th trigger opened a collector; with
    // identical footprints the score is still 1 when defined.
}

} // namespace
} // namespace hp
