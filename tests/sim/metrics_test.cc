#include <gtest/gtest.h>

#include "sim/metrics.hh"

namespace hp
{
namespace
{

SimMetrics
makeBaseline()
{
    SimMetrics m;
    m.cycles = 1'000'000;
    m.instructions = 800'000;
    m.mem.demandL1Misses = 10'000;
    m.mem.demandL2Misses = 4'000;
    m.mem.missCyclesL2 = 50'000;
    m.mem.missCyclesLlc = 100'000;
    m.mem.dramDemandBytes = 1'000'000;
    m.dataDramBytes = 3'000'000;
    m.longRangeL2Misses = 2'000;
    return m;
}

TEST(MetricsTest, SpeedupFromIpcRatio)
{
    SimMetrics base = makeBaseline();
    SimMetrics run = base;
    run.cycles = 900'000; // 11.1% faster
    PairedMetrics paired = pairedMetrics(run, base);
    EXPECT_NEAR(paired.speedup, 1'000'000.0 / 900'000.0 - 1.0, 1e-9);
}

TEST(MetricsTest, CoverageIsMissReduction)
{
    SimMetrics base = makeBaseline();
    SimMetrics run = base;
    run.mem.demandL1Misses = 6'000;
    run.mem.demandL2Misses = 1'000;
    PairedMetrics paired = pairedMetrics(run, base);
    EXPECT_NEAR(paired.coverageL1, 0.4, 1e-9);
    EXPECT_NEAR(paired.coverageL2, 0.75, 1e-9);
}

TEST(MetricsTest, NegativeCoverageOnPollution)
{
    SimMetrics base = makeBaseline();
    SimMetrics run = base;
    run.mem.demandL1Misses = 12'000; // prefetcher made it worse
    PairedMetrics paired = pairedMetrics(run, base);
    EXPECT_LT(paired.coverageL1, 0.0);
}

TEST(MetricsTest, BandwidthRatio)
{
    SimMetrics base = makeBaseline();
    SimMetrics run = base;
    run.mem.dramExtBytes = 200'000;
    run.mem.dramMetadataReadBytes = 100'000;
    run.mem.dramMetadataWriteBytes = 100'000;
    PairedMetrics paired = pairedMetrics(run, base);
    double expected = double(base.totalDramBytes() + 400'000) /
                      double(base.totalDramBytes());
    EXPECT_NEAR(paired.bandwidthRatio, expected, 1e-9);
}

TEST(MetricsTest, LongRangeElimination)
{
    SimMetrics base = makeBaseline();
    SimMetrics run = base;
    run.longRangeL2Misses = 500;
    PairedMetrics paired = pairedMetrics(run, base);
    EXPECT_NEAR(paired.longRangeEliminated, 0.75, 1e-9);
    // No credit when misses grow.
    run.longRangeL2Misses = 3'000;
    EXPECT_DOUBLE_EQ(pairedMetrics(run, base).longRangeEliminated, 0.0);
}

TEST(MetricsTest, MissLatencyRatio)
{
    SimMetrics base = makeBaseline();
    SimMetrics run = base;
    run.mem.missCyclesLlc = 25'000;
    PairedMetrics paired = pairedMetrics(run, base);
    EXPECT_NEAR(paired.missLatencyRatio, 75'000.0 / 150'000.0, 1e-9);
}

TEST(MetricsTest, AccuracyAndLatenessFromPrefetchStats)
{
    SimMetrics base = makeBaseline();
    SimMetrics run = base;
    run.mem.ext.inserted = 1'000;
    run.mem.ext.usefulL1 = 400;
    run.mem.ext.lateMerges = 100;
    PairedMetrics paired = pairedMetrics(run, base);
    EXPECT_NEAR(paired.accuracy, 0.5, 1e-9);
    EXPECT_NEAR(paired.lateFraction, 0.2, 1e-9);
}

TEST(MetricsTest, ZeroBaselineSafe)
{
    SimMetrics zero;
    PairedMetrics paired = pairedMetrics(zero, zero);
    EXPECT_DOUBLE_EQ(paired.speedup, 0.0);
    EXPECT_DOUBLE_EQ(paired.coverageL1, 0.0);
    EXPECT_DOUBLE_EQ(paired.bandwidthRatio, 1.0);
}

TEST(MetricsTest, TotalDramBytesSumsAllSources)
{
    SimMetrics m;
    m.mem.dramDemandBytes = 1;
    m.mem.dramFdipBytes = 2;
    m.mem.dramExtBytes = 4;
    m.mem.dramMetadataReadBytes = 8;
    m.mem.dramMetadataWriteBytes = 16;
    m.dataDramBytes = 32;
    EXPECT_EQ(m.totalDramBytes(), 63u);
}

} // namespace
} // namespace hp
