/**
 * @file
 * Checkpoint blob format tests: golden-file stability, save → restore
 * → save byte-identity, and rejection (never UB) of malformed,
 * version-mismatched, or foreign-keyed blobs.
 *
 * The golden blob tests/golden/warmup_small.ckpt is checked in. When
 * an intentional format change bumps kCheckpointFormatVersion,
 * regenerate it with:
 *     HP_CKPT_GOLDEN_REGEN=1 ./sim_test \
 *         --gtest_filter='*Golden*'
 * and commit the new blob together with the version bump.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <iterator>

#include "sim/checkpoint.hh"
#include "sim/runner.hh"
#include "sim/simulator.hh"

#ifndef HP_GOLDEN_DIR
#define HP_GOLDEN_DIR "tests/golden"
#endif

namespace hp
{
namespace
{

/**
 * The golden config: deliberately tiny structures and a short warmup
 * so the checked-in blob stays small (~200 KB, dominated by the
 * fixed-size TAGE/ITTAGE tables) while still exercising the
 * hierarchical prefetcher's compression/metadata path. The reuse
 * probe is excluded — its tree spans the binary's whole block
 * footprint (megabytes) and is covered by the replay tests instead.
 */
SimConfig
goldenConfig()
{
    SimConfig config;
    config.workload = "caddy";
    config.warmupInsts = 60'000;
    config.measureInsts = 100'000;
    config.prefetcher = PrefetcherKind::Hierarchical;
    config.hier.trackBundleStats = true;
    config.btbEntries = 512;
    config.mem.l1iBytes = 8 * 1024;
    config.mem.l2Bytes = 32 * 1024;
    config.mem.llcBytes = 64 * 1024;
    config.mem.itlbEntries = 16;
    config.hier.metadataBufferBytes = 16 * 1024;
    return config;
}

std::string
goldenPath()
{
    return std::string(HP_GOLDEN_DIR) + "/warmup_small.ckpt";
}

Checkpoint
captureGolden()
{
    Simulator sim(goldenConfig());
    sim.runWarmup();
    return Checkpoint::capture(
        sim, ExperimentRunner::configKey(warmupConfig(goldenConfig())));
}

std::vector<std::uint8_t>
readFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in.good()) << "missing " << path;
    return std::vector<std::uint8_t>(
        (std::istreambuf_iterator<char>(in)),
        std::istreambuf_iterator<char>());
}

TEST(CheckpointGoldenTest, GoldenBlobRestoresAndRoundTrips)
{
    if (std::getenv("HP_CKPT_GOLDEN_REGEN") != nullptr) {
        const std::vector<std::uint8_t> image = captureGolden().encode();
        std::ofstream out(goldenPath(), std::ios::binary | std::ios::trunc);
        ASSERT_TRUE(out.good()) << "cannot write " << goldenPath();
        out.write(reinterpret_cast<const char *>(image.data()),
                  std::streamsize(image.size()));
        GTEST_SKIP() << "regenerated " << goldenPath();
    }

    const std::vector<std::uint8_t> on_disk = readFile(goldenPath());
    std::string error;
    std::shared_ptr<const Checkpoint> golden =
        Checkpoint::decode(on_disk, &error);
    ASSERT_NE(golden, nullptr) << error;

    // save → restore → save must be byte-identical: restore the blob
    // into a fresh simulator, capture again, and compare images.
    Simulator sim(goldenConfig());
    ASSERT_TRUE(golden->restoreInto(sim, &error)) << error;
    Checkpoint again = Checkpoint::capture(sim, golden->warmupKey());
    EXPECT_EQ(again.encode(), on_disk);
}

TEST(CheckpointGoldenTest, GoldenBlobMatchesCurrentEncoder)
{
    if (std::getenv("HP_CKPT_GOLDEN_REGEN") != nullptr)
        GTEST_SKIP() << "regeneration run";
    // A fresh warmup of the golden config must reproduce the checked-in
    // bytes exactly — any drift means the serialization layout changed
    // without a kCheckpointFormatVersion bump.
    EXPECT_EQ(captureGolden().encode(), readFile(goldenPath()));
}

TEST(CheckpointFormatTest, EncodeDecodeRoundTrip)
{
    Checkpoint ckpt("some-key", {1, 2, 3, 250, 251, 252});
    std::string error;
    std::shared_ptr<const Checkpoint> back =
        Checkpoint::decode(ckpt.encode(), &error);
    ASSERT_NE(back, nullptr) << error;
    EXPECT_EQ(back->warmupKey(), "some-key");
    EXPECT_EQ(back->payload(), ckpt.payload());
}

TEST(CheckpointFormatTest, RejectsBadMagic)
{
    std::vector<std::uint8_t> image = Checkpoint("k", {7}).encode();
    image[0] ^= 0xff;
    std::string error;
    EXPECT_EQ(Checkpoint::decode(image, &error), nullptr);
    EXPECT_NE(error.find("magic"), std::string::npos) << error;
}

TEST(CheckpointFormatTest, RejectsVersionMismatchWithClearError)
{
    std::vector<std::uint8_t> image = Checkpoint("k", {7}).encode();
    image[8] = std::uint8_t(kCheckpointFormatVersion + 1); // version LSB
    std::string error;
    EXPECT_EQ(Checkpoint::decode(image, &error), nullptr);
    EXPECT_NE(error.find("version"), std::string::npos) << error;
    EXPECT_NE(error.find(std::to_string(kCheckpointFormatVersion + 1)),
              std::string::npos)
        << error;
}

TEST(CheckpointFormatTest, RejectsTruncation)
{
    const std::vector<std::uint8_t> image =
        Checkpoint("key", {1, 2, 3, 4}).encode();
    // Every proper prefix must be rejected, never misread.
    for (std::size_t n = 0; n < image.size(); ++n) {
        std::vector<std::uint8_t> cut(image.begin(), image.begin() + n);
        std::string error;
        EXPECT_EQ(Checkpoint::decode(cut, &error), nullptr)
            << "prefix of " << n << " bytes decoded";
        EXPECT_FALSE(error.empty());
    }
}

TEST(CheckpointFormatTest, RejectsTrailingGarbage)
{
    std::vector<std::uint8_t> image = Checkpoint("k", {7}).encode();
    image.push_back(0);
    std::string error;
    EXPECT_EQ(Checkpoint::decode(image, &error), nullptr);
}

TEST(CheckpointFormatTest, RestoreRejectsPayloadForOtherConfig)
{
    // A payload captured under one config must not silently restore
    // into a simulator with a different shape.
    SimConfig small = goldenConfig();
    SimConfig big = small;
    big.mem.l1iBytes *= 4;

    Simulator warm(small);
    warm.runWarmup();
    Checkpoint ckpt = Checkpoint::capture(warm, "k");

    Simulator other(big);
    std::string error;
    EXPECT_FALSE(ckpt.restoreInto(other, &error));
    EXPECT_FALSE(error.empty());
}

TEST(CheckpointFileTest, SaveLoadRoundTripAndKeyCheck)
{
    const char *tmpdir = std::getenv("TMPDIR");
    const std::string dir =
        (tmpdir ? std::string(tmpdir) : "/tmp") + "/hp_ckpt_test";
    Checkpoint ckpt("right-key", {9, 8, 7});
    ASSERT_TRUE(saveCheckpointFile(dir, "t.ckpt", ckpt));

    std::string error;
    std::shared_ptr<const Checkpoint> loaded =
        loadCheckpointFile(dir + "/t.ckpt", "right-key", &error);
    ASSERT_NE(loaded, nullptr) << error;
    EXPECT_EQ(loaded->payload(), ckpt.payload());

    EXPECT_EQ(loadCheckpointFile(dir + "/t.ckpt", "wrong-key", &error),
              nullptr);
    EXPECT_NE(error.find("key mismatch"), std::string::npos) << error;

    EXPECT_EQ(loadCheckpointFile(dir + "/absent.ckpt", "k", &error),
              nullptr);
}

} // namespace
} // namespace hp
