#include <gtest/gtest.h>

#include <cstdlib>
#include <thread>
#include <vector>

#include "sim/executor.hh"

namespace hp
{
namespace
{

/** Small config; the odd instruction counts keep it unique within the
 *  test binary so cache state from other tests cannot mask runs. */
SimConfig
tinyConfig(const std::string &workload, PrefetcherKind kind,
           std::uint64_t warmup, std::uint64_t measure)
{
    SimConfig config;
    config.workload = workload;
    config.prefetcher = kind;
    config.warmupInsts = warmup;
    config.measureInsts = measure;
    return config;
}

TEST(ExecutorTest, HpJobsOverridesDefaultThreads)
{
    const char *saved = std::getenv("HP_JOBS");
    std::string saved_value = saved ? saved : "";

    setenv("HP_JOBS", "3", 1);
    EXPECT_EQ(Executor::defaultThreads(), 3u);
    setenv("HP_JOBS", "not-a-number", 1);
    EXPECT_GE(Executor::defaultThreads(), 1u);

    if (saved)
        setenv("HP_JOBS", saved_value.c_str(), 1);
    else
        unsetenv("HP_JOBS");
}

TEST(ExecutorTest, SubmitDeduplicatesIdenticalConfigs)
{
    SimConfig config = tinyConfig("caddy", PrefetcherKind::None,
                                  101'000, 201'000);
    Executor executor(2);

    std::size_t before = ExperimentRunner::simulationsRun();
    auto f1 = executor.submit(config);
    auto f2 = executor.submit(config);
    SimMetrics a = f1.get();
    SimMetrics b = f2.get();
    std::size_t after = ExperimentRunner::simulationsRun();

    EXPECT_EQ(after - before, 1u);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.instructions, b.instructions);
}

TEST(ExecutorTest, ConcurrentRunPairPerformsOneSimulationPerConfig)
{
    SimConfig config = tinyConfig("gin", PrefetcherKind::EFetch,
                                  103'000, 203'000);

    std::size_t before = ExperimentRunner::simulationsRun();

    constexpr unsigned kThreads = 4;
    std::vector<RunPair> results(kThreads);
    std::vector<std::thread> threads;
    for (unsigned t = 0; t < kThreads; ++t) {
        threads.emplace_back([&, t] {
            results[t] = ExperimentRunner::runPair(config);
        });
    }
    for (std::thread &thread : threads)
        thread.join();

    std::size_t after = ExperimentRunner::simulationsRun();

    // Exactly one simulation for the run and one for its baseline, no
    // matter how many threads raced on the same config.
    EXPECT_EQ(after - before, 2u);
    for (unsigned t = 1; t < kThreads; ++t) {
        EXPECT_EQ(results[t].run.cycles, results[0].run.cycles);
        EXPECT_EQ(results[t].base.cycles, results[0].base.cycles);
        EXPECT_DOUBLE_EQ(results[t].paired.speedup,
                         results[0].paired.speedup);
    }
}

TEST(ExecutorTest, ParallelGridMatchesSerialRun)
{
    const std::vector<std::string> workloads = {"echo", "gorm"};
    const std::vector<PrefetcherKind> kinds = {PrefetcherKind::EFetch,
                                               PrefetcherKind::Eip};
    SimConfig base = tinyConfig("echo", PrefetcherKind::None, 107'000,
                                207'000);

    // Serial reference: fresh Simulator per grid point, bypassing the
    // cache entirely.
    std::vector<RunPair> serial;
    for (const std::string &workload : workloads) {
        for (PrefetcherKind kind : kinds) {
            SimConfig config = base;
            config.workload = workload;
            config.prefetcher = kind;
            Simulator run_sim(config);
            Simulator base_sim(fdipBaseline(config));
            serial.push_back(
                makeRunPair(run_sim.run(), base_sim.run()));
        }
    }

    Executor executor(4);
    std::vector<RunPair> parallel =
        executor.runGrid(workloads, kinds, base);

    ASSERT_EQ(parallel.size(), serial.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
        EXPECT_EQ(parallel[i].run.cycles, serial[i].run.cycles);
        EXPECT_EQ(parallel[i].run.instructions,
                  serial[i].run.instructions);
        EXPECT_EQ(parallel[i].base.cycles, serial[i].base.cycles);
        EXPECT_EQ(parallel[i].run.mem.ext.issued,
                  serial[i].run.mem.ext.issued);
        EXPECT_DOUBLE_EQ(parallel[i].paired.speedup,
                         serial[i].paired.speedup);
    }
}

TEST(ExecutorTest, RunAllPreservesSubmissionOrder)
{
    std::vector<SimConfig> configs;
    for (const std::string &workload : {"beego", "caddy", "echo"}) {
        configs.push_back(tinyConfig(workload, PrefetcherKind::None,
                                     109'000, 209'000));
    }

    Executor executor(3);
    std::vector<SimMetrics> results = executor.runAll(configs);

    ASSERT_EQ(results.size(), configs.size());
    for (std::size_t i = 0; i < configs.size(); ++i) {
        SimMetrics direct = ExperimentRunner::run(configs[i]);
        EXPECT_EQ(results[i].cycles, direct.cycles);
        EXPECT_EQ(results[i].instructions, direct.instructions);
    }
}

} // namespace
} // namespace hp
