/**
 * @file
 * Bit-identical replay validation: for every prefetcher kind, a run
 * forked from a warmup checkpoint must produce exactly the same
 * measurement as a cold run — every counter in the StatsSnapshot,
 * field for field, plus the derived scalar metrics.
 */

#include <gtest/gtest.h>

#include "sim/checkpoint.hh"
#include "sim/runner.hh"
#include "sim/simulator.hh"

namespace hp
{
namespace
{

SimConfig
quickConfig(PrefetcherKind kind)
{
    SimConfig config;
    config.workload = "caddy";
    config.warmupInsts = 120'000;
    config.measureInsts = 240'000;
    config.prefetcher = kind;
    if (kind == PrefetcherKind::Hierarchical)
        config.hier.trackBundleStats = true;
    return config;
}

/** Fails with the first differing counter path, not just "not equal". */
void
expectSnapshotsIdentical(const StatsSnapshot &cold,
                         const StatsSnapshot &warm)
{
    ASSERT_EQ(cold.size(), warm.size());
    const auto &a = cold.entries();
    const auto &b = warm.entries();
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].first, b[i].first) << "path order diverged at " << i;
        EXPECT_EQ(a[i].second, b[i].second)
            << "counter " << a[i].first << " differs";
    }
}

void
expectBitIdentical(const SimConfig &config)
{
    SimMetrics cold = Simulator(config).run();

    Simulator warm(config);
    warm.runWarmup();
    Checkpoint ckpt = Checkpoint::capture(
        warm, ExperimentRunner::configKey(warmupConfig(config)));

    Simulator restored(config);
    std::string error;
    ASSERT_TRUE(ckpt.restoreInto(restored, &error)) << error;
    SimMetrics replay = restored.finishRun();

    EXPECT_EQ(cold.cycles, replay.cycles);
    EXPECT_EQ(cold.instructions, replay.instructions);
    expectSnapshotsIdentical(cold.stats, replay.stats);
}

class CheckpointReplayTest
    : public ::testing::TestWithParam<PrefetcherKind>
{
};

TEST_P(CheckpointReplayTest, RestoredRunMatchesColdRunExactly)
{
    expectBitIdentical(quickConfig(GetParam()));
}

INSTANTIATE_TEST_SUITE_P(
    AllPrefetchers, CheckpointReplayTest,
    ::testing::Values(PrefetcherKind::None, PrefetcherKind::EFetch,
                      PrefetcherKind::Mana, PrefetcherKind::Eip,
                      PrefetcherKind::Rdip, PrefetcherKind::Hierarchical,
                      PrefetcherKind::PerfectL1I),
    [](const ::testing::TestParamInfo<PrefetcherKind> &info) {
        return prefetcherName(info.param);
    });

TEST(CheckpointReplayTest, ProducerContinuationMatchesColdRun)
{
    // The checkpoint owner captures and then continues the same
    // Simulator instance; capture must not perturb it.
    SimConfig config = quickConfig(PrefetcherKind::Hierarchical);
    SimMetrics cold = Simulator(config).run();

    Simulator warm(config);
    warm.runWarmup();
    (void)Checkpoint::capture(warm, "key");
    SimMetrics cont = warm.finishRun();

    EXPECT_EQ(cold.cycles, cont.cycles);
    expectSnapshotsIdentical(cold.stats, cont.stats);
}

TEST(CheckpointReplayTest, ReplayExactWithReuseTracking)
{
    // trackReuse adds the reuse-distance tree and warmup histogram to
    // the serialized state; the long-range threshold derived at the
    // boundary must come out identical.
    SimConfig config = quickConfig(PrefetcherKind::None);
    config.trackReuse = true;
    config.longRangePercentile = 0.85;
    expectBitIdentical(config);
}

TEST(CheckpointReplayTest, OneWarmupServesManyMeasurementConfigs)
{
    // Two configs in the same warmup class (they differ only in
    // measureInsts, read after the boundary) fork from one checkpoint
    // and still match their own cold runs.
    SimConfig short_run = quickConfig(PrefetcherKind::Eip);
    SimConfig long_run = short_run;
    long_run.measureInsts = 360'000;
    ASSERT_EQ(warmupConfig(short_run), warmupConfig(long_run));

    Simulator warm(short_run);
    warm.runWarmup();
    Checkpoint ckpt = Checkpoint::capture(
        warm, ExperimentRunner::configKey(warmupConfig(short_run)));

    for (const SimConfig &config : {short_run, long_run}) {
        SimMetrics cold = Simulator(config).run();
        Simulator restored(config);
        std::string error;
        ASSERT_TRUE(ckpt.restoreInto(restored, &error)) << error;
        SimMetrics replay = restored.finishRun();
        EXPECT_EQ(cold.cycles, replay.cycles);
        expectSnapshotsIdentical(cold.stats, replay.stats);
    }
}

TEST(CheckpointReplayTest, RunCheckpointedMatchesColdRun)
{
    SimConfig config = quickConfig(PrefetcherKind::Mana);
    SimMetrics cold = Simulator(config).run();
    SimMetrics via = runCheckpointed(config);
    EXPECT_EQ(cold.cycles, via.cycles);
    expectSnapshotsIdentical(cold.stats, via.stats);
}

} // namespace
} // namespace hp
