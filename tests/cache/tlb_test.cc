#include <gtest/gtest.h>

#include "cache/tlb.hh"

namespace hp
{
namespace
{

TEST(TlbTest, MissPaysWalkThenHits)
{
    Tlb tlb(4, 50);
    EXPECT_EQ(tlb.translate(0x400123), 50u);
    EXPECT_EQ(tlb.translate(0x400fff), 0u); // same page
    EXPECT_EQ(tlb.translate(0x401000), 50u); // next page
    EXPECT_EQ(tlb.accesses(), 3u);
    EXPECT_EQ(tlb.misses(), 2u);
}

TEST(TlbTest, LruReplacement)
{
    Tlb tlb(2, 10);
    tlb.translate(0x1000);
    tlb.translate(0x2000);
    tlb.translate(0x1000); // refresh page 1; page 2 is LRU
    tlb.translate(0x3000); // evicts page 2
    EXPECT_EQ(tlb.translate(0x1000), 0u);
    EXPECT_EQ(tlb.translate(0x2000), 10u); // was evicted
}

TEST(TlbTest, CapacityRespected)
{
    Tlb tlb(8, 10);
    for (Addr page = 0; page < 16; ++page)
        tlb.translate(page * kPageBytes);
    // The last 8 pages are resident, the first 8 are not.
    for (Addr page = 8; page < 16; ++page)
        EXPECT_EQ(tlb.translate(page * kPageBytes), 0u);
    EXPECT_EQ(tlb.translate(0), 10u);
}

TEST(TlbTest, ResetStats)
{
    Tlb tlb(4, 10);
    tlb.translate(0x1000);
    tlb.resetStats();
    EXPECT_EQ(tlb.accesses(), 0u);
    EXPECT_EQ(tlb.misses(), 0u);
    // Contents survive the stats reset.
    EXPECT_EQ(tlb.translate(0x1000), 0u);
}

} // namespace
} // namespace hp
