#include <gtest/gtest.h>

#include "cache/cache.hh"

namespace hp
{
namespace
{

constexpr Addr kBase = 0x400000;

Addr
blk(unsigned i)
{
    return kBase + Addr(i) * kBlockBytes;
}

TEST(CacheTest, MissThenHit)
{
    SetAssocCache cache("t", 4 * 1024, 4);
    EXPECT_FALSE(cache.access(blk(0)).has_value());
    cache.insert(blk(0), Origin::Demand);
    auto hit = cache.access(blk(0));
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(hit->origin, Origin::Demand);
    EXPECT_EQ(cache.accesses(), 2u);
    EXPECT_EQ(cache.misses(), 1u);
}

TEST(CacheTest, FirstUseFlagOnlyOnce)
{
    SetAssocCache cache("t", 4 * 1024, 4);
    cache.insert(blk(1), Origin::Ext);
    auto first = cache.access(blk(1));
    ASSERT_TRUE(first.has_value());
    EXPECT_TRUE(first->firstUse);
    EXPECT_EQ(first->origin, Origin::Ext);
    auto second = cache.access(blk(1));
    ASSERT_TRUE(second.has_value());
    EXPECT_FALSE(second->firstUse);
}

TEST(CacheTest, ContainsDoesNotTouchState)
{
    SetAssocCache cache("t", 4 * 1024, 4);
    cache.insert(blk(2), Origin::Fdip);
    EXPECT_TRUE(cache.contains(blk(2)));
    EXPECT_EQ(cache.accesses(), 0u);
    auto hit = cache.access(blk(2));
    ASSERT_TRUE(hit.has_value());
    EXPECT_TRUE(hit->firstUse); // contains() must not consume firstUse
}

TEST(CacheTest, LruEviction)
{
    // One set: 64 B * 2 ways.
    SetAssocCache cache("t", 2 * kBlockBytes, 2);
    ASSERT_EQ(cache.numSets(), 1u);
    cache.insert(blk(0), Origin::Demand);
    cache.insert(blk(1), Origin::Demand);
    cache.access(blk(0)); // 1 becomes LRU
    EvictInfo evicted = cache.insert(blk(2), Origin::Demand);
    ASSERT_TRUE(evicted.valid);
    EXPECT_EQ(evicted.block, blk(1));
    EXPECT_TRUE(cache.contains(blk(0)));
    EXPECT_FALSE(cache.contains(blk(1)));
}

TEST(CacheTest, EvictInfoCarriesOriginAndUse)
{
    SetAssocCache cache("t", 2 * kBlockBytes, 2);
    cache.insert(blk(0), Origin::Ext);
    cache.insert(blk(1), Origin::Demand);
    cache.access(blk(1));
    // blk(0) is LRU and unused.
    EvictInfo evicted = cache.insert(blk(2), Origin::Demand);
    ASSERT_TRUE(evicted.valid);
    EXPECT_EQ(evicted.block, blk(0));
    EXPECT_EQ(evicted.origin, Origin::Ext);
    EXPECT_FALSE(evicted.used);
}

TEST(CacheTest, ReinsertResidentBlockNoEviction)
{
    SetAssocCache cache("t", 2 * kBlockBytes, 2);
    cache.insert(blk(0), Origin::Demand);
    EvictInfo evicted = cache.insert(blk(0), Origin::Ext);
    EXPECT_FALSE(evicted.valid);
}

TEST(CacheTest, Invalidate)
{
    SetAssocCache cache("t", 4 * 1024, 4);
    cache.insert(blk(3), Origin::Demand);
    cache.invalidate(blk(3));
    EXPECT_FALSE(cache.contains(blk(3)));
}

TEST(CacheTest, MarkUsedSuppressesFirstUse)
{
    SetAssocCache cache("t", 4 * 1024, 4);
    cache.insert(blk(4), Origin::Ext);
    cache.markUsed(blk(4));
    auto hit = cache.access(blk(4));
    ASSERT_TRUE(hit.has_value());
    EXPECT_FALSE(hit->firstUse);
}

TEST(CacheTest, NonPowerOfTwoSetCount)
{
    // 3 sets x 4 ways: used by the fractional instruction shares.
    SetAssocCache cache("t", 12 * kBlockBytes, 4);
    EXPECT_EQ(cache.numSets(), 3u);
    for (unsigned i = 0; i < 12; ++i)
        cache.insert(blk(i), Origin::Demand);
    unsigned resident = 0;
    for (unsigned i = 0; i < 12; ++i)
        resident += cache.contains(blk(i));
    EXPECT_GT(resident, 8u); // nearly all fit
}

TEST(CacheTest, ResetStatsKeepsContents)
{
    SetAssocCache cache("t", 4 * 1024, 4);
    cache.insert(blk(5), Origin::Demand);
    cache.access(blk(5));
    cache.resetStats();
    EXPECT_EQ(cache.accesses(), 0u);
    EXPECT_TRUE(cache.contains(blk(5)));
}

TEST(CacheTest, MissRate)
{
    SetAssocCache cache("t", 4 * 1024, 4);
    cache.access(blk(6));
    cache.insert(blk(6), Origin::Demand);
    cache.access(blk(6));
    EXPECT_DOUBLE_EQ(cache.missRate(), 0.5);
}

} // namespace
} // namespace hp
