#include <gtest/gtest.h>

#include <list>
#include <map>

#include "cache/cache.hh"
#include "util/rng.hh"

namespace hp
{
namespace
{

/** Geometry sweep: (size KB, ways). */
using Geometry = std::tuple<unsigned, unsigned>;

class CacheGeometry : public ::testing::TestWithParam<Geometry>
{
  protected:
    std::uint64_t sizeBytes() const
    {
        return std::uint64_t(std::get<0>(GetParam())) * 1024;
    }
    unsigned ways() const { return std::get<1>(GetParam()); }
};

/** Reference model: per-set LRU lists. */
class ReferenceCache
{
  public:
    ReferenceCache(std::uint64_t size, unsigned ways)
        : ways_(ways), sets_(unsigned(size / kBlockBytes / ways))
    {}

    bool
    access(Addr block)
    {
        auto &set = sets_map_[blockNumber(block) % sets_];
        auto it = std::find(set.begin(), set.end(), block);
        if (it == set.end())
            return false;
        set.erase(it);
        set.push_front(block);
        return true;
    }

    void
    insert(Addr block)
    {
        auto &set = sets_map_[blockNumber(block) % sets_];
        auto it = std::find(set.begin(), set.end(), block);
        if (it != set.end()) {
            set.erase(it);
        } else if (set.size() >= ways_) {
            set.pop_back();
        }
        set.push_front(block);
    }

  private:
    unsigned ways_;
    unsigned sets_;
    std::map<unsigned, std::list<Addr>> sets_map_;
};

TEST_P(CacheGeometry, MatchesReferenceLruModel)
{
    SetAssocCache cache("sweep", sizeBytes(), ways());
    ReferenceCache reference(sizeBytes(), ways());
    Rng rng(7 + ways());

    unsigned span_blocks = 4 * unsigned(sizeBytes() / kBlockBytes);
    for (int i = 0; i < 30000; ++i) {
        Addr block = rng.nextUint(span_blocks) * kBlockBytes;
        bool model_hit = cache.access(block).has_value();
        bool ref_hit = reference.access(block);
        ASSERT_EQ(model_hit, ref_hit) << "access " << i;
        if (!model_hit) {
            cache.insert(block, Origin::Demand);
            reference.insert(block);
        }
    }
}

TEST_P(CacheGeometry, OccupancyNeverExceedsCapacity)
{
    SetAssocCache cache("sweep", sizeBytes(), ways());
    Rng rng(13);
    unsigned capacity = unsigned(sizeBytes() / kBlockBytes);
    for (unsigned i = 0; i < 3 * capacity; ++i)
        cache.insert(rng.next() & ~Addr(kBlockBytes - 1),
                     Origin::Demand);
    // Count resident blocks by probing everything inserted.
    // (The structural invariant: sets * ways == capacity.)
    EXPECT_EQ(cache.numSets() * cache.ways(), capacity);
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, CacheGeometry,
    ::testing::Values(Geometry{2, 2}, Geometry{4, 4}, Geometry{8, 8},
                      Geometry{32, 8}, Geometry{16, 16},
                      Geometry{64, 16}),
    [](const ::testing::TestParamInfo<Geometry> &info) {
        return "kb" + std::to_string(std::get<0>(info.param)) + "w" +
               std::to_string(std::get<1>(info.param));
    });

} // namespace
} // namespace hp
