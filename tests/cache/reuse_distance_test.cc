#include <gtest/gtest.h>

#include <map>
#include <set>
#include <vector>

#include "cache/reuse_distance.hh"
#include "util/rng.hh"

namespace hp
{
namespace
{

/** Brute-force reference: unique blocks between accesses. */
class ReferenceTracker
{
  public:
    std::uint64_t
    access(Addr block)
    {
        std::uint64_t distance = ReuseDistanceTracker::kColdAccess;
        auto it = last_.find(block);
        if (it != last_.end()) {
            std::set<Addr> unique;
            for (std::size_t i = it->second + 1; i < trace_.size(); ++i)
                unique.insert(trace_[i]);
            distance = unique.size();
        }
        trace_.push_back(block);
        last_[block] = trace_.size() - 1;
        return distance;
    }

  private:
    std::vector<Addr> trace_;
    std::map<Addr, std::size_t> last_;
};

TEST(ReuseDistanceTest, ColdAccessesReported)
{
    ReuseDistanceTracker tracker;
    EXPECT_EQ(tracker.access(0x100), ReuseDistanceTracker::kColdAccess);
    EXPECT_EQ(tracker.access(0x200), ReuseDistanceTracker::kColdAccess);
    EXPECT_EQ(tracker.uniqueBlocks(), 2u);
}

TEST(ReuseDistanceTest, ImmediateReuseIsZero)
{
    ReuseDistanceTracker tracker;
    tracker.access(0x100);
    EXPECT_EQ(tracker.access(0x100), 0u);
}

TEST(ReuseDistanceTest, SimpleSequence)
{
    // A B C A: distance of the second A is 2 (B and C).
    ReuseDistanceTracker tracker;
    tracker.access(0xa);
    tracker.access(0xb);
    tracker.access(0xc);
    EXPECT_EQ(tracker.access(0xa), 2u);
}

TEST(ReuseDistanceTest, RepeatsDoNotInflateDistance)
{
    // A B B B A: distance of the second A is 1 (just B).
    ReuseDistanceTracker tracker;
    tracker.access(0xa);
    tracker.access(0xb);
    tracker.access(0xb);
    tracker.access(0xb);
    EXPECT_EQ(tracker.access(0xa), 1u);
}

TEST(ReuseDistanceTest, MatchesBruteForceOnRandomTrace)
{
    ReuseDistanceTracker tracker;
    ReferenceTracker reference;
    Rng rng(99);
    for (int i = 0; i < 5000; ++i) {
        Addr block = rng.nextUint(64) * kBlockBytes;
        EXPECT_EQ(tracker.access(block), reference.access(block))
            << "at access " << i;
    }
}

TEST(ReuseDistanceTest, GrowthPreservesCorrectness)
{
    // Force the Fenwick tree to grow past its initial capacity by
    // running > 2^20 accesses, then verify distances still match a
    // small-window reference.
    ReuseDistanceTracker tracker;
    constexpr std::uint64_t kAccesses = (1u << 20) + 5000;
    // Cyclic pattern over 8 blocks: after warmup, each access has
    // distance exactly 7.
    for (std::uint64_t i = 0; i < kAccesses; ++i) {
        std::uint64_t d = tracker.access((i % 8) * kBlockBytes);
        if (i >= 8) {
            EXPECT_EQ(d, 7u) << "at access " << i;
        }
    }
}

} // namespace
} // namespace hp
