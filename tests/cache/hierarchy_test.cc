#include <gtest/gtest.h>

#include "cache/hierarchy.hh"

namespace hp
{
namespace
{

constexpr Addr kBase = 0x400000;

Addr
blk(unsigned i)
{
    return kBase + Addr(i) * kBlockBytes;
}

HierarchyParams
smallParams()
{
    HierarchyParams p;
    p.l1iBytes = 2 * 1024; // tiny, to exercise evictions
    p.l1iWays = 4;
    p.l2Bytes = 16 * 1024;
    p.l2InstFraction = 1.0;
    p.llcBytes = 64 * 1024;
    p.llcInstFraction = 1.0;
    return p;
}

TEST(HierarchyTest, ColdMissGoesToMemory)
{
    CacheHierarchy hier(smallParams());
    DemandResult res = hier.demandAccess(blk(0), 100);
    EXPECT_FALSE(res.retry);
    EXPECT_EQ(res.level, ServiceLevel::Mem);
    EXPECT_EQ(res.readyAt, 100 + hier.params().memLatency);
    EXPECT_EQ(hier.stats().demandL1Misses, 1u);
    EXPECT_EQ(hier.stats().demandL2Misses, 1u);
    EXPECT_EQ(hier.stats().demandLlcMisses, 1u);
}

TEST(HierarchyTest, FillMakesSubsequentAccessHit)
{
    CacheHierarchy hier(smallParams());
    DemandResult res = hier.demandAccess(blk(0), 0);
    hier.tick(res.readyAt);
    DemandResult second = hier.demandAccess(blk(0), res.readyAt + 1);
    EXPECT_EQ(second.level, ServiceLevel::L1);
    EXPECT_EQ(hier.stats().dramDemandBytes, kBlockBytes);
}

TEST(HierarchyTest, MergeIntoOutstandingMiss)
{
    CacheHierarchy hier(smallParams());
    DemandResult first = hier.demandAccess(blk(0), 0);
    DemandResult merge = hier.demandAccess(blk(0), 10);
    EXPECT_EQ(merge.level, ServiceLevel::Mshr);
    EXPECT_EQ(merge.readyAt, first.readyAt);
    EXPECT_EQ(hier.stats().servedByMshr, 1u);
}

TEST(HierarchyTest, L2ServiceAfterL1Eviction)
{
    HierarchyParams params = smallParams();
    CacheHierarchy hier(params);
    // Fill blk(0), then flood the L1-I so it gets evicted; it should
    // then be served by the L2.
    DemandResult res = hier.demandAccess(blk(0), 0);
    hier.tick(res.readyAt);
    Cycle now = res.readyAt + 1;
    unsigned l1_blocks = unsigned(params.l1iBytes / kBlockBytes);
    for (unsigned i = 1; i <= 2 * l1_blocks; ++i) {
        DemandResult r = hier.demandAccess(blk(i), now);
        if (!r.retry) {
            now = r.readyAt + 1;
            hier.tick(now);
        } else {
            hier.tick(now + 200);
            now += 200;
        }
    }
    DemandResult again = hier.demandAccess(blk(0), now);
    EXPECT_EQ(again.level, ServiceLevel::L2);
    EXPECT_EQ(again.readyAt, now + params.l2Latency);
}

TEST(HierarchyTest, MshrExhaustionForcesRetry)
{
    HierarchyParams params = smallParams();
    params.l1iMshrs = 2;
    CacheHierarchy hier(params);
    EXPECT_FALSE(hier.demandAccess(blk(0), 0).retry);
    EXPECT_FALSE(hier.demandAccess(blk(1), 0).retry);
    EXPECT_TRUE(hier.demandAccess(blk(2), 0).retry);
    // After fills complete, the access succeeds.
    hier.tick(1000);
    EXPECT_FALSE(hier.demandAccess(blk(2), 1000).retry);
}

TEST(HierarchyTest, PrefetchFillsAndCountsUseful)
{
    CacheHierarchy hier(smallParams());
    EXPECT_TRUE(hier.prefetch(blk(0), Origin::Ext, 0));
    hier.tick(1000);
    EXPECT_EQ(hier.stats().ext.inserted, 1u);
    DemandResult res = hier.demandAccess(blk(0), 1000);
    EXPECT_EQ(res.level, ServiceLevel::L1);
    EXPECT_EQ(hier.stats().ext.usefulL1, 1u);
}

TEST(HierarchyTest, RedundantPrefetchFiltered)
{
    CacheHierarchy hier(smallParams());
    hier.prefetch(blk(0), Origin::Ext, 0);
    EXPECT_FALSE(hier.prefetch(blk(0), Origin::Ext, 1)); // in flight
    hier.tick(1000);
    EXPECT_FALSE(hier.prefetch(blk(0), Origin::Ext, 1001)); // resident
    EXPECT_EQ(hier.stats().ext.redundant, 2u);
}

TEST(HierarchyTest, PrefetchRespectsMshrReservation)
{
    HierarchyParams params = smallParams();
    params.l1iMshrs = 4;
    params.mshrsReservedForDemand = 2;
    CacheHierarchy hier(params);
    EXPECT_TRUE(hier.prefetch(blk(0), Origin::Ext, 0));
    EXPECT_TRUE(hier.prefetch(blk(1), Origin::Ext, 0));
    // Only 2 MSHRs left: reserved for demand.
    EXPECT_FALSE(hier.prefetch(blk(2), Origin::Ext, 0));
    EXPECT_EQ(hier.stats().ext.dropped, 1u);
    // Demand can still allocate.
    EXPECT_FALSE(hier.demandAccess(blk(3), 0).retry);
}

TEST(HierarchyTest, LatePrefetchMerge)
{
    CacheHierarchy hier(smallParams());
    hier.prefetch(blk(0), Origin::Ext, 0);
    DemandResult res = hier.demandAccess(blk(0), 5);
    EXPECT_EQ(res.level, ServiceLevel::Mshr);
    EXPECT_EQ(hier.stats().ext.lateMerges, 1u);
    // The block, once filled, must not later count as useless.
    hier.tick(1000);
    EXPECT_EQ(hier.stats().ext.uselessEvicted, 0u);
}

TEST(HierarchyTest, UselessEvictionCounted)
{
    HierarchyParams params = smallParams();
    CacheHierarchy hier(params);
    // Prefetch one block, never use it, then flood its set.
    hier.prefetch(blk(0), Origin::Ext, 0);
    hier.tick(1000);
    Cycle now = 1000;
    unsigned sets = unsigned(params.l1iBytes / kBlockBytes /
                             params.l1iWays);
    for (unsigned w = 1; w <= params.l1iWays + 1; ++w) {
        DemandResult r = hier.demandAccess(blk(w * sets), now);
        now = r.readyAt + 1;
        hier.tick(now);
    }
    EXPECT_EQ(hier.stats().ext.uselessEvicted, 1u);
}

TEST(HierarchyTest, PrefetchToL2Mode)
{
    CacheHierarchy hier(smallParams());
    EXPECT_TRUE(hier.prefetch(blk(0), Origin::Ext, 0, /*to_l2=*/true));
    hier.tick(1000);
    // The block must be in the L2, not the L1-I.
    EXPECT_FALSE(hier.l1i().contains(blk(0)));
    EXPECT_TRUE(hier.l2().contains(blk(0)));
    // Demand then hits the L2 and counts usefulL2.
    DemandResult res = hier.demandAccess(blk(0), 1000);
    EXPECT_EQ(res.level, ServiceLevel::L2);
    EXPECT_EQ(hier.stats().ext.usefulL2, 1u);
}

TEST(HierarchyTest, DistanceTrackedForUsefulPrefetch)
{
    CacheHierarchy hier(smallParams());
    hier.prefetch(blk(0), Origin::Ext, 0);
    hier.tick(1000);
    for (int i = 0; i < 10; ++i)
        hier.noteFetchBlock();
    hier.demandAccess(blk(0), 1000);
    EXPECT_EQ(hier.stats().extUsefulDistance.count(), 1u);
    EXPECT_DOUBLE_EQ(hier.stats().extUsefulDistance.mean(), 10.0);
}

TEST(HierarchyTest, MetadataReadLatencyAndTraffic)
{
    HierarchyParams params = smallParams();
    params.metadataDramEvery = 2;
    CacheHierarchy hier(params);
    Cycle llc_read = hier.metadataRead(368, 100);
    EXPECT_EQ(llc_read, 100 + params.llcLatency);
    Cycle dram_read = hier.metadataRead(368, 200);
    EXPECT_EQ(dram_read, 200 + params.memLatency);
    EXPECT_GT(hier.stats().dramMetadataReadBytes, 0u);
    hier.metadataWrite(100, 300);
    EXPECT_EQ(hier.stats().dramMetadataWriteBytes, 100u);
}

TEST(HierarchyTest, InstShareBytesRounding)
{
    // 512 KB at 0.65 share with 8 ways of 64 B = set-aligned value.
    std::uint64_t share = instShareBytes(512 * 1024, 0.65, 8);
    EXPECT_EQ(share % (8 * kBlockBytes), 0u);
    EXPECT_NEAR(double(share), 0.65 * 512 * 1024, 8.0 * kBlockBytes);
}

TEST(HierarchyTest, ResetStatsPreservesContents)
{
    CacheHierarchy hier(smallParams());
    DemandResult res = hier.demandAccess(blk(0), 0);
    hier.tick(res.readyAt);
    hier.resetStats();
    EXPECT_EQ(hier.stats().demandAccesses, 0u);
    EXPECT_EQ(hier.demandAccess(blk(0), 1000).level, ServiceLevel::L1);
}

TEST(HierarchyTest, PrefetchAccuracyClampedToOne)
{
    // Late merges are counted when the demand merges into the MSHR,
    // but the insertion is only counted when the fill completes, so a
    // run can end with served > inserted. Accuracy must stay in
    // [0, 1] regardless.
    PrefetchStats late_only;
    late_only.issued = 3;
    late_only.lateMerges = 2;
    late_only.inserted = 0;
    EXPECT_DOUBLE_EQ(late_only.accuracy(), 1.0);

    PrefetchStats overshoot;
    overshoot.inserted = 4;
    overshoot.usefulL1 = 4;
    overshoot.lateMerges = 3;
    EXPECT_DOUBLE_EQ(overshoot.accuracy(), 1.0);

    PrefetchStats idle;
    EXPECT_DOUBLE_EQ(idle.accuracy(), 0.0);

    // The common case (inserted >= useful + late) is unchanged.
    PrefetchStats normal;
    normal.inserted = 10;
    normal.usefulL1 = 4;
    normal.lateMerges = 1;
    EXPECT_DOUBLE_EQ(normal.accuracy(), 0.5);
}

} // namespace
} // namespace hp
