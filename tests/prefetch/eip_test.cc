#include <gtest/gtest.h>

#include <set>

#include "prefetch/eip.hh"

namespace hp
{
namespace
{

constexpr Addr kBase = 0x400000;

Addr
blk(unsigned i)
{
    return kBase + Addr(i) * kBlockBytes;
}

std::vector<Addr>
drainQueue(Prefetcher &pf)
{
    std::vector<Addr> blocks;
    Addr block;
    while (pf.popRequest(block))
        blocks.push_back(block);
    return blocks;
}

TEST(EipTest, EntanglesMissWithLatencyMatchedTrigger)
{
    Eip pf;
    Cycle now = 0;
    // Fetch blocks 0..9 at 10-cycle intervals, then miss block 50 with
    // a 40-cycle latency: the trigger should be ~4 blocks back.
    for (unsigned i = 0; i < 10; ++i) {
        pf.onDemandAccess(blk(i), true, now, 0);
        now += 10;
    }
    pf.onDemandAccess(blk(50), false, now, 40);
    drainQueue(pf);

    // Fetch times were 0,10,...,90 and the miss lands at t=100 with a
    // 40-cycle latency, so the youngest viable trigger is the block
    // fetched at t=60 — blk(6). Re-fetch it: the miss target (and its
    // following basic-block lines) must be prefetched.
    pf.onDemandAccess(blk(6), true, now + 100, 0);
    auto blocks = drainQueue(pf);
    std::set<Addr> unique(blocks.begin(), blocks.end());
    EXPECT_TRUE(unique.count(blk(50)));
    // Basic-block run: following lines come along.
    EXPECT_TRUE(unique.count(blk(51)));
}

TEST(EipTest, NoEntanglementOnHits)
{
    Eip pf;
    Cycle now = 0;
    for (unsigned i = 0; i < 10; ++i)
        pf.onDemandAccess(blk(i), true, now++, 0);
    // Nothing was a miss: re-fetching produces no prefetches.
    pf.onDemandAccess(blk(0), true, now, 0);
    EXPECT_TRUE(drainQueue(pf).empty());
}

TEST(EipTest, FdipPrefetchesTrainHistory)
{
    Eip pf;
    Cycle now = 0;
    // History is built from FDIP prefetches only.
    for (unsigned i = 0; i < 8; ++i) {
        pf.onFdipPrefetch(blk(i), now);
        now += 10;
    }
    // Prefetch times were 0,10,...,70; the miss lands at t=80 with a
    // 30-cycle latency -> trigger is the block prefetched at t=50.
    pf.onDemandAccess(blk(60), false, now, 30);
    drainQueue(pf);
    pf.onFdipPrefetch(blk(5), now + 100);
    auto blocks = drainQueue(pf);
    std::set<Addr> unique(blocks.begin(), blocks.end());
    EXPECT_TRUE(unique.count(blk(60)));
}

TEST(EipTest, MultipleTargetsPerSource)
{
    Eip pf;
    Cycle now = 0;
    // The same trigger precedes two different misses over time.
    for (unsigned pass = 0; pass < 2; ++pass) {
        pf.onDemandAccess(blk(1), true, now, 0);
        now += 50;
        Addr target = pass == 0 ? blk(100) : blk(200);
        pf.onDemandAccess(target, false, now, 40);
        now += 50;
        drainQueue(pf);
    }
    pf.onDemandAccess(blk(1), true, now, 0);
    auto blocks = drainQueue(pf);
    std::set<Addr> unique(blocks.begin(), blocks.end());
    // Both recorded targets are issued (the source of EIP's low
    // accuracy and high coverage).
    EXPECT_TRUE(unique.count(blk(100)));
    EXPECT_TRUE(unique.count(blk(200)));
}

TEST(EipTest, TargetCapRespected)
{
    EipConfig config;
    config.maxTargets = 2;
    Eip pf(config);
    Cycle now = 0;
    for (unsigned pass = 0; pass < 5; ++pass) {
        pf.onDemandAccess(blk(1), true, now, 0);
        now += 50;
        pf.onDemandAccess(blk(100 + pass * 10), false, now, 40);
        now += 50;
        drainQueue(pf);
    }
    pf.onDemandAccess(blk(1), true, now, 0);
    auto blocks = drainQueue(pf);
    // At most maxTargets * targetRunBlocks prefetches per trigger.
    EXPECT_LE(blocks.size(),
              std::size_t(config.maxTargets) * config.targetRunBlocks);
}

TEST(EipTest, StorageMatchesPaperClass)
{
    Eip pf;
    double kb = double(pf.storageBits()) / 8.0 / 1024.0;
    // Paper: 40 KB configuration.
    EXPECT_GT(kb, 30.0);
    EXPECT_LT(kb, 60.0);
}

} // namespace
} // namespace hp
