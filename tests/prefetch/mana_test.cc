#include <gtest/gtest.h>

#include <set>

#include "prefetch/mana.hh"

namespace hp
{
namespace
{

constexpr Addr kBase = 0x400000;

Addr
blk(unsigned i)
{
    return kBase + Addr(i) * kBlockBytes;
}

std::vector<Addr>
drainQueue(Prefetcher &pf)
{
    std::vector<Addr> blocks;
    Addr block;
    while (pf.popRequest(block))
        blocks.push_back(block);
    return blocks;
}

/** Feeds a stream of block accesses (all hits). */
void
feed(Mana &pf, const std::vector<Addr> &blocks, Cycle &now)
{
    for (Addr b : blocks)
        pf.onDemandAccess(b, true, now++, 0);
}

/** A stream with region-sized strides so each access opens a region. */
std::vector<Addr>
stridedStream(unsigned regions)
{
    std::vector<Addr> blocks;
    for (unsigned r = 0; r < regions; ++r)
        blocks.push_back(blk(r * 8)); // regionBlocks = 8 default
    return blocks;
}

TEST(ManaTest, ReplaysRecordedStream)
{
    Mana pf;
    Cycle now = 0;
    auto stream = stridedStream(20);
    feed(pf, stream, now);
    drainQueue(pf);
    // Re-encounter the first region: MANA must stream ahead.
    pf.onDemandAccess(stream[0], true, now++, 0);
    auto blocks = drainQueue(pf);
    std::set<Addr> unique(blocks.begin(), blocks.end());
    // Default lookahead 3: the next regions must be issued.
    EXPECT_TRUE(unique.count(stream[1]));
    EXPECT_TRUE(unique.count(stream[2]));
    EXPECT_TRUE(unique.count(stream[3]));
    EXPECT_FALSE(unique.count(stream[10]));
}

TEST(ManaTest, LookaheadControlsDepth)
{
    ManaConfig deep;
    deep.lookahead = 8;
    Mana pf(deep);
    Cycle now = 0;
    auto stream = stridedStream(20);
    feed(pf, stream, now);
    drainQueue(pf);
    pf.onDemandAccess(stream[0], true, now++, 0);
    auto blocks = drainQueue(pf);
    std::set<Addr> unique(blocks.begin(), blocks.end());
    EXPECT_TRUE(unique.count(stream[8]));
}

TEST(ManaTest, AdvancesWithExecution)
{
    Mana pf;
    Cycle now = 0;
    auto stream = stridedStream(20);
    feed(pf, stream, now);
    drainQueue(pf);
    // Follow the stream: each step must pull one more region in.
    pf.onDemandAccess(stream[0], true, now++, 0);
    drainQueue(pf);
    pf.onDemandAccess(stream[1], true, now++, 0);
    auto blocks = drainQueue(pf);
    std::set<Addr> unique(blocks.begin(), blocks.end());
    EXPECT_TRUE(unique.count(stream[4]));
}

TEST(ManaTest, DivergenceForcesReindex)
{
    Mana pf;
    Cycle now = 0;
    auto stream = stridedStream(20);
    feed(pf, stream, now);
    drainQueue(pf);
    pf.onDemandAccess(stream[0], true, now++, 0);
    drainQueue(pf);
    std::uint64_t before = pf.divergences();
    // Jump to an unrelated address: off the recorded stream.
    pf.onDemandAccess(blk(500), true, now++, 0);
    EXPECT_EQ(pf.divergences(), before + 1);
}

TEST(ManaTest, RegionCompressionMergesNearbyBlocks)
{
    Mana pf;
    Cycle now = 0;
    // Blocks 0..7 share one region (regionBlocks = 8); then a far
    // region, then re-trigger.
    std::vector<Addr> stream;
    for (unsigned i = 0; i < 8; ++i)
        stream.push_back(blk(i));
    stream.push_back(blk(100));
    feed(pf, stream, now);
    drainQueue(pf);
    pf.onDemandAccess(blk(0), true, now++, 0);
    auto blocks = drainQueue(pf);
    std::set<Addr> unique(blocks.begin(), blocks.end());
    // The dense region's blocks are all issued together.
    EXPECT_TRUE(unique.count(blk(100)));
}

TEST(ManaTest, StorageInPaperClass)
{
    Mana pf;
    double kb = double(pf.storageBits()) / 8.0 / 1024.0;
    // MANA's budget class is ~15-31 KB.
    EXPECT_GT(kb, 8.0);
    EXPECT_LT(kb, 40.0);
}

} // namespace
} // namespace hp
