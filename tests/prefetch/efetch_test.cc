#include <gtest/gtest.h>

#include <set>

#include "prefetch/efetch.hh"

namespace hp
{
namespace
{

DynInst
call(Addr pc, Addr target)
{
    DynInst inst;
    inst.pc = pc;
    inst.kind = InstKind::Call;
    inst.taken = true;
    inst.target = target;
    return inst;
}

DynInst
ret(Addr pc, Addr target)
{
    DynInst inst;
    inst.pc = pc;
    inst.kind = InstKind::Return;
    inst.taken = true;
    inst.target = target;
    return inst;
}

DynInst
plain(Addr pc)
{
    DynInst inst;
    inst.pc = pc;
    inst.kind = InstKind::Plain;
    return inst;
}

std::vector<Addr>
drainQueue(Prefetcher &pf)
{
    std::vector<Addr> blocks;
    Addr block;
    while (pf.popRequest(block))
        blocks.push_back(block);
    return blocks;
}

/** One call sequence A -> B -> C with returns, twice. */
void
playSequence(EFetch &pf, Cycle &now)
{
    pf.onCommit(call(0x1000, 0x10000), now++); // A calls B
    for (int i = 0; i < 8; ++i)
        pf.onCommit(plain(0x10000 + i * 4), now++);
    pf.onCommit(call(0x10020, 0x20000), now++); // B calls C
    for (int i = 0; i < 8; ++i)
        pf.onCommit(plain(0x20000 + i * 4), now++);
    pf.onCommit(ret(0x20020, 0x10024), now++);
    pf.onCommit(ret(0x10024, 0x1004), now++);
}

TEST(EFetchTest, PredictsNextCalleeAfterTraining)
{
    EFetch pf;
    Cycle now = 0;
    playSequence(pf, now);
    drainQueue(pf);
    // Second pass: after the A->B call, the signature must predict the
    // B->C call and prefetch C's entry blocks.
    pf.onCommit(call(0x1000, 0x10000), now++);
    auto blocks = drainQueue(pf);
    std::set<Addr> unique(blocks.begin(), blocks.end());
    EXPECT_TRUE(unique.count(blockAlign(0x20000)));
}

TEST(EFetchTest, FootprintVectorsCoverCalleeBody)
{
    EFetch pf;
    Cycle now = 0;
    // Training pass: A calls B; inside B a call to C follows, and C
    // touches 3 blocks of its body.
    pf.onCommit(call(0x1000, 0x10000), now++);  // A -> B
    pf.onCommit(call(0x10020, 0x20000), now++); // B -> C
    for (int b = 0; b < 3; ++b)
        pf.onCommit(plain(0x20000 + b * kBlockBytes), now++);
    pf.onCommit(ret(0x200c0, 0x10024), now++);
    pf.onCommit(ret(0x10024, 0x1004), now++);
    drainQueue(pf);

    // Second pass: at the A->B call, EFetch predicts the B->C call and
    // must prefetch every learned footprint block of C, not just its
    // entry block.
    pf.onCommit(call(0x1000, 0x10000), now++);
    auto blocks = drainQueue(pf);
    std::set<Addr> unique(blocks.begin(), blocks.end());
    for (int b = 0; b < 3; ++b)
        EXPECT_TRUE(unique.count(blockAlign(0x20000) +
                                 Addr(b) * kBlockBytes))
            << "block " << b;
}

TEST(EFetchTest, NoPredictionWithoutTraining)
{
    EFetch pf;
    pf.onCommit(call(0x9000, 0x90000), 0);
    auto blocks = drainQueue(pf);
    EXPECT_TRUE(blocks.empty());
}

TEST(EFetchTest, LookaheadIssuesMoreCallees)
{
    EFetchConfig deep;
    deep.lookahead = 3;
    EFetch pf_deep(deep);
    EFetch pf_shallow;

    Cycle now = 0;
    for (int pass = 0; pass < 3; ++pass) {
        Cycle n2 = now;
        playSequence(pf_deep, now);
        playSequence(pf_shallow, n2);
    }
    drainQueue(pf_deep);
    drainQueue(pf_shallow);
    Cycle n3 = now;
    pf_deep.onCommit(call(0x1000, 0x10000), now++);
    pf_shallow.onCommit(call(0x1000, 0x10000), n3);
    EXPECT_GE(drainQueue(pf_deep).size(),
              drainQueue(pf_shallow).size());
}

TEST(EFetchTest, StorageWithinPaperClass)
{
    EFetch pf;
    double kb = double(pf.storageBits()) / 8.0 / 1024.0;
    // The paper says "under 40KB"; the reimplementation's explicit
    // accounting lands in the tens-of-KB class.
    EXPECT_GT(kb, 10.0);
    EXPECT_LT(kb, 150.0);
}

TEST(EFetchTest, DeepCallStackBounded)
{
    EFetch pf;
    Cycle now = 0;
    // 1000 nested calls must not blow memory or crash.
    for (int i = 0; i < 1000; ++i)
        pf.onCommit(call(0x1000 + i * 4, 0x100000 + i * 0x100), now++);
    for (int i = 0; i < 1000; ++i)
        pf.onCommit(ret(0x100000 + i * 0x100, 0x1004 + i * 4), now++);
    SUCCEED();
}

} // namespace
} // namespace hp
