#include <gtest/gtest.h>

#include <set>

#include "prefetch/rdip.hh"

namespace hp
{
namespace
{

constexpr Addr kBase = 0x400000;

Addr
blk(unsigned i)
{
    return kBase + Addr(i) * kBlockBytes;
}

DynInst
call(Addr pc, Addr target)
{
    DynInst inst;
    inst.pc = pc;
    inst.kind = InstKind::Call;
    inst.taken = true;
    inst.target = target;
    return inst;
}

DynInst
ret(Addr pc, Addr target)
{
    DynInst inst;
    inst.pc = pc;
    inst.kind = InstKind::Return;
    inst.taken = true;
    inst.target = target;
    return inst;
}

std::vector<Addr>
drainQueue(Prefetcher &pf)
{
    std::vector<Addr> blocks;
    Addr block;
    while (pf.popRequest(block))
        blocks.push_back(block);
    return blocks;
}

TEST(RdipTest, ReplaysMissesOfRecurringSignature)
{
    Rdip pf;
    Cycle now = 0;
    // Enter context (call), observe two misses, leave (return).
    pf.onCommit(call(0x1000, 0x10000), now++);
    drainQueue(pf);
    pf.onDemandAccess(blk(5), false, now++, 20);
    pf.onDemandAccess(blk(9), false, now++, 20);
    pf.onCommit(ret(0x10040, 0x1004), now++);
    drainQueue(pf);

    // Re-enter the same context: the recorded misses are prefetched.
    pf.onCommit(call(0x1000, 0x10000), now++);
    auto blocks = drainQueue(pf);
    std::set<Addr> unique(blocks.begin(), blocks.end());
    EXPECT_TRUE(unique.count(blk(5)));
    EXPECT_TRUE(unique.count(blk(9)));
}

TEST(RdipTest, DistinctContextsDoNotAlias)
{
    Rdip pf;
    Cycle now = 0;
    pf.onCommit(call(0x1000, 0x10000), now++);
    pf.onDemandAccess(blk(5), false, now++, 20);
    pf.onCommit(ret(0x10040, 0x1004), now++);
    drainQueue(pf);

    // A different call context must not replay the other's misses.
    pf.onCommit(call(0x2000, 0x20000), now++);
    auto blocks = drainQueue(pf);
    EXPECT_EQ(std::count(blocks.begin(), blocks.end(), blk(5)), 0);
}

TEST(RdipTest, HitsAreNotRecorded)
{
    Rdip pf;
    Cycle now = 0;
    pf.onCommit(call(0x1000, 0x10000), now++);
    pf.onDemandAccess(blk(7), true, now++, 0); // hit
    pf.onCommit(ret(0x10040, 0x1004), now++);
    drainQueue(pf);
    pf.onCommit(call(0x1000, 0x10000), now++);
    EXPECT_TRUE(drainQueue(pf).empty());
}

TEST(RdipTest, EntryCapacityBounded)
{
    RdipConfig config;
    config.blocksPerEntry = 4;
    Rdip pf(config);
    Cycle now = 0;
    pf.onCommit(call(0x1000, 0x10000), now++);
    for (unsigned i = 0; i < 20; ++i)
        pf.onDemandAccess(blk(i), false, now++, 20);
    pf.onCommit(ret(0x10040, 0x1004), now++);
    drainQueue(pf);
    pf.onCommit(call(0x1000, 0x10000), now++);
    EXPECT_LE(drainQueue(pf).size(), 4u);
}

TEST(RdipTest, StorageIsMetadataHungry)
{
    Rdip pf;
    double kb = double(pf.storageBits()) / 8.0 / 1024.0;
    // The paper quotes 60 KB/core for RDIP.
    EXPECT_GT(kb, 40.0);
    EXPECT_LT(kb, 300.0);
}

} // namespace
} // namespace hp
