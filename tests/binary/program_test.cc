#include <gtest/gtest.h>

#include "../test_helpers.hh"
#include "binary/program.hh"

namespace hp
{
namespace
{

TEST(ProgramTest, AddFunctionAssignsSequentialIds)
{
    Program program;
    FuncId a = program.addFunction("a");
    FuncId b = program.addFunction("b");
    EXPECT_EQ(a, 0u);
    EXPECT_EQ(b, 1u);
    EXPECT_EQ(program.numFunctions(), 2u);
    EXPECT_EQ(program.func(a).name, "a");
}

TEST(ProgramTest, NumInstsCountsBodySlots)
{
    Program program;
    FuncId leaf = test::addLeaf(program, "leaf", 10);
    EXPECT_EQ(program.func(leaf).numInsts(), 10u);
    EXPECT_EQ(program.func(leaf).sizeBytes(), 40u);
}

TEST(ProgramTest, LayoutAssignsAlignedNonOverlappingAddresses)
{
    Program program;
    FuncId a = test::addLeaf(program, "a", 7);
    FuncId b = test::addLeaf(program, "b", 3);
    program.layout(0x400000);
    ASSERT_TRUE(program.isLaidOut());
    const Function &fa = program.func(a);
    const Function &fb = program.func(b);
    EXPECT_EQ(fa.addr % 16, 0u);
    EXPECT_EQ(fb.addr % 16, 0u);
    EXPECT_GE(fb.addr, fa.addr + fa.sizeBytes());
    EXPECT_GT(program.totalCodeBytes(), 0u);
}

TEST(ProgramTest, LayoutGroupsByModule)
{
    Program program;
    FuncId m1 = test::addLeaf(program, "m1", 4, 1);
    FuncId m0 = test::addLeaf(program, "m0", 4, 0);
    FuncId m1b = test::addLeaf(program, "m1b", 4, 1);
    program.layout();
    // Module 0 first, then module 1 functions contiguously.
    EXPECT_LT(program.func(m0).addr, program.func(m1).addr);
    EXPECT_LT(program.func(m1).addr, program.func(m1b).addr);
}

TEST(ProgramTest, FuncAtResolvesInteriorAddresses)
{
    Program program;
    FuncId a = test::addLeaf(program, "a", 8);
    FuncId b = test::addLeaf(program, "b", 8);
    program.layout();
    const Function &fa = program.func(a);
    EXPECT_EQ(program.funcAt(fa.addr), a);
    EXPECT_EQ(program.funcAt(fa.addr + 4), a);
    EXPECT_EQ(program.funcAt(fa.addr + fa.sizeBytes() - 1), a);
    EXPECT_EQ(program.funcAt(program.func(b).addr), b);
    // Below the image.
    EXPECT_EQ(program.funcAt(0x100), kNoFunc);
}

TEST(ProgramTest, FuncAtAlignmentGap)
{
    Program program;
    FuncId a = test::addLeaf(program, "a", 3); // 12 bytes, padded to 16
    test::addLeaf(program, "b", 3);
    program.layout();
    const Function &fa = program.func(a);
    // The padding byte after a's body belongs to no function.
    EXPECT_EQ(program.funcAt(fa.addr + fa.sizeBytes()), kNoFunc);
}

TEST(ProgramTest, InstAddr)
{
    Program program;
    FuncId a = test::addLeaf(program, "a", 4);
    program.layout();
    const Function &fa = program.func(a);
    EXPECT_EQ(fa.instAddr(0), fa.addr);
    EXPECT_EQ(fa.instAddr(3), fa.addr + 12);
}

TEST(ProgramTest, ValidatePassesOnWellFormedBodies)
{
    Program program;
    FuncId leaf = test::addLeaf(program, "leaf", 6);
    test::addCaller(program, "caller", {leaf});
    program.layout();
    program.validate(); // must not panic
}

TEST(ProgramDeathTest, ValidateCatchesOffsetGap)
{
    Program program;
    FuncId id = program.addFunction("broken");
    Function &fn = program.func(id);
    BodyOp run;
    run.kind = OpKind::Run;
    run.offset = 5; // gap: first op must start at 0
    run.length = 3;
    fn.body.push_back(run);
    BodyOp ret;
    ret.kind = OpKind::Ret;
    ret.offset = 8;
    fn.body.push_back(ret);
    EXPECT_DEATH(program.validate(), "offset mismatch");
}

TEST(ProgramDeathTest, ValidateCatchesMissingRet)
{
    Program program;
    FuncId id = program.addFunction("noret");
    Function &fn = program.func(id);
    BodyOp run;
    run.kind = OpKind::Run;
    run.offset = 0;
    run.length = 3;
    fn.body.push_back(run);
    EXPECT_DEATH(program.validate(), "does not end in Ret");
}

TEST(ProgramDeathTest, ValidateCatchesBadCallee)
{
    Program program;
    FuncId id = program.addFunction("badcall");
    Function &fn = program.func(id);
    CallTarget target;
    target.candidates = {42}; // no such function
    fn.targets.push_back(target);
    BodyOp call;
    call.kind = OpKind::CallSite;
    call.offset = 0;
    call.targetIdx = 0;
    fn.body.push_back(call);
    BodyOp ret;
    ret.kind = OpKind::Ret;
    ret.offset = 1;
    fn.body.push_back(ret);
    EXPECT_DEATH(program.validate(), "callee out of range");
}

} // namespace
} // namespace hp
