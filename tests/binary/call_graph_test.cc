#include <gtest/gtest.h>

#include <algorithm>

#include "../test_helpers.hh"
#include "binary/call_graph.hh"

namespace hp
{
namespace
{

/** a -> b -> {c, d}; e isolated. Leaf sizes are exact for checks. */
struct DiamondFixture
{
    Program program;
    FuncId a, b, c, d, e;

    DiamondFixture()
    {
        c = test::addLeaf(program, "c", 100); // 400 B
        d = test::addLeaf(program, "d", 50);  // 200 B
        b = test::addCaller(program, "b", {c, d});
        a = test::addCaller(program, "a", {b});
        e = test::addLeaf(program, "e", 10);
        program.layout();
    }
};

TEST(CallGraphTest, ChildrenAndParents)
{
    DiamondFixture fx;
    CallGraph graph(fx.program);
    auto kids_b = graph.children(fx.b);
    EXPECT_EQ(kids_b.size(), 2u);
    EXPECT_TRUE(std::count(kids_b.begin(), kids_b.end(), fx.c));
    EXPECT_TRUE(std::count(kids_b.begin(), kids_b.end(), fx.d));
    ASSERT_EQ(graph.parents(fx.b).size(), 1u);
    EXPECT_EQ(graph.parents(fx.b)[0], fx.a);
    EXPECT_TRUE(graph.children(fx.e).empty());
}

TEST(CallGraphTest, RootsAreUncalledFunctions)
{
    DiamondFixture fx;
    CallGraph graph(fx.program);
    auto roots = graph.roots();
    EXPECT_EQ(roots.size(), 2u); // a and e
    EXPECT_TRUE(std::count(roots.begin(), roots.end(), fx.a));
    EXPECT_TRUE(std::count(roots.begin(), roots.end(), fx.e));
}

TEST(CallGraphTest, DuplicateEdgesCollapse)
{
    Program program;
    FuncId leaf = test::addLeaf(program, "leaf", 5);
    FuncId caller =
        test::addCaller(program, "caller", {leaf, leaf, leaf});
    program.layout();
    CallGraph graph(program);
    EXPECT_EQ(graph.children(caller).size(), 1u);
    EXPECT_EQ(graph.parents(leaf).size(), 1u);
}

TEST(CallGraphTest, ReachableSizeExactOnTree)
{
    DiamondFixture fx;
    CallGraph graph(fx.program);
    const auto &reach = graph.reachableSizes();

    std::uint64_t size_c = fx.program.func(fx.c).sizeBytes();
    std::uint64_t size_d = fx.program.func(fx.d).sizeBytes();
    std::uint64_t size_b = fx.program.func(fx.b).sizeBytes();
    std::uint64_t size_a = fx.program.func(fx.a).sizeBytes();

    EXPECT_EQ(reach[fx.c], size_c);
    EXPECT_EQ(reach[fx.d], size_d);
    EXPECT_EQ(reach[fx.b], size_b + size_c + size_d);
    EXPECT_EQ(reach[fx.a], size_a + size_b + size_c + size_d);
    EXPECT_EQ(reach[fx.e], fx.program.func(fx.e).sizeBytes());
}

TEST(CallGraphTest, SharedSubgraphCountedOnce)
{
    // a calls b and c; both b and c call the same big leaf.
    Program program;
    FuncId leaf = test::addLeaf(program, "leaf", 1000);
    FuncId b = test::addCaller(program, "b", {leaf});
    FuncId c = test::addCaller(program, "c", {leaf});
    FuncId a = test::addCaller(program, "a", {b, c});
    program.layout();
    CallGraph graph(program);
    const auto &reach = graph.reachableSizes();
    std::uint64_t expected = program.func(a).sizeBytes() +
                             program.func(b).sizeBytes() +
                             program.func(c).sizeBytes() +
                             program.func(leaf).sizeBytes();
    EXPECT_EQ(reach[a], expected); // leaf counted exactly once
}

TEST(CallGraphTest, RecursionFormsScc)
{
    // a <-> b mutual recursion, plus leaf called by b.
    Program program;
    FuncId leaf = test::addLeaf(program, "leaf", 20);
    // Build a and b with a placeholder, then patch cross edges.
    FuncId a = test::addCaller(program, "a", {leaf});
    FuncId b = test::addCaller(program, "b", {leaf});
    // Add a->b and b->a edges.
    for (auto [from, to] : {std::pair{a, b}, std::pair{b, a}}) {
        Function &fn = program.func(from);
        CallTarget target;
        target.candidates = {to};
        fn.targets.push_back(target);
        // Rewrite body: insert call before Ret.
        BodyOp call;
        call.kind = OpKind::CallSite;
        call.offset = fn.body.back().offset;
        call.targetIdx =
            static_cast<std::uint32_t>(fn.targets.size() - 1);
        BodyOp ret = fn.body.back();
        ret.offset = call.offset + 1;
        fn.body.back() = call;
        fn.body.push_back(ret);
    }
    program.layout();
    program.validate();

    CallGraph graph(program);
    EXPECT_EQ(graph.sccOf(a), graph.sccOf(b));
    EXPECT_NE(graph.sccOf(a), graph.sccOf(leaf));

    const auto &reach = graph.reachableSizes();
    // Both SCC members reach the same set: a + b + leaf.
    std::uint64_t expected = program.func(a).sizeBytes() +
                             program.func(b).sizeBytes() +
                             program.func(leaf).sizeBytes();
    EXPECT_EQ(reach[a], expected);
    EXPECT_EQ(reach[b], expected);
}

TEST(CallGraphTest, SelfRecursionHandled)
{
    Program program;
    FuncId a = test::addCaller(program, "a", {});
    Function &fn = program.func(a);
    CallTarget target;
    target.candidates = {a};
    fn.targets.push_back(target);
    BodyOp call;
    call.kind = OpKind::CallSite;
    call.offset = fn.body.back().offset;
    call.targetIdx = 0;
    BodyOp ret = fn.body.back();
    ret.offset = call.offset + 1;
    fn.body.back() = call;
    fn.body.push_back(ret);
    program.layout();

    CallGraph graph(program);
    EXPECT_EQ(graph.reachableSizes()[a], program.func(a).sizeBytes());
}

TEST(CallGraphTest, DeepChainDoesNotOverflow)
{
    // 20k-deep call chain: the iterative Tarjan must handle it.
    Program program;
    constexpr unsigned kDepth = 20000;
    std::vector<FuncId> chain;
    chain.push_back(test::addLeaf(program, "f0", 4));
    for (unsigned i = 1; i < kDepth; ++i) {
        chain.push_back(test::addCaller(
            program, "f" + std::to_string(i), {chain.back()}, 0, 1));
    }
    program.layout();
    CallGraph graph(program);
    const auto &reach = graph.reachableSizes();
    EXPECT_GT(reach[chain.back()], reach[chain.front()]);
    EXPECT_EQ(graph.numSccs(), kDepth);
}

} // namespace
} // namespace hp
