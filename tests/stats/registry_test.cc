#include <gtest/gtest.h>

#include <cstdint>

#include "stats/registry.hh"

namespace hp
{
namespace
{

TEST(StatsRegistryTest, RegistrationAndDottedPathLookup)
{
    std::uint64_t hits = 3;
    std::uint64_t misses = 7;
    StatsRegistry reg;
    reg.add("l1i.hits", [&hits] { return hits; });
    reg.add("l1i.misses", [&misses] { return misses; });

    EXPECT_EQ(reg.size(), 2u);
    EXPECT_TRUE(reg.has("l1i.hits"));
    EXPECT_FALSE(reg.has("l1i.evictions"));
    EXPECT_EQ(reg.value("l1i.hits"), 3u);
    EXPECT_EQ(reg.value("l1i.misses"), 7u);

    // Readers are closures over the live counters, not copies.
    hits = 10;
    EXPECT_EQ(reg.value("l1i.hits"), 10u);

    const std::vector<std::string> paths = reg.paths();
    ASSERT_EQ(paths.size(), 2u);
    EXPECT_EQ(paths[0], "l1i.hits");
    EXPECT_EQ(paths[1], "l1i.misses");
}

TEST(StatsRegistryTest, DuplicatePathIsFatal)
{
    StatsRegistry reg;
    reg.add("a.b", [] { return std::uint64_t(0); });
    EXPECT_DEATH(reg.add("a.b", [] { return std::uint64_t(0); }),
                 "duplicate");
}

TEST(StatsRegistryTest, SnapshotDeltaEqualsManualSubtraction)
{
    std::uint64_t cycles = 100;
    std::uint64_t insts = 40;
    StatsRegistry reg;
    reg.add("sim.cycles", [&cycles] { return cycles; });
    reg.add("sim.instructions", [&insts] { return insts; });

    const StatsSnapshot warmup = reg.snapshot();
    const std::uint64_t cycles_at_warmup = cycles;
    const std::uint64_t insts_at_warmup = insts;

    cycles = 1234;
    insts = 517;

    const StatsSnapshot delta =
        StatsSnapshot::delta(reg.snapshot(), warmup);
    EXPECT_EQ(delta.value("sim.cycles"), cycles - cycles_at_warmup);
    EXPECT_EQ(delta.value("sim.instructions"),
              insts - insts_at_warmup);
    // The warmup snapshot froze the registration-time values.
    EXPECT_EQ(warmup.value("sim.cycles"), 100u);
    EXPECT_EQ(warmup.value("sim.instructions"), 40u);
}

TEST(StatsRegistryTest, DeltaOfMismatchedSnapshotsIsFatal)
{
    StatsRegistry a;
    a.add("x", [] { return std::uint64_t(1); });
    StatsRegistry b;
    b.add("y", [] { return std::uint64_t(1); });
    const StatsSnapshot sa = a.snapshot();
    const StatsSnapshot sb = b.snapshot();
    EXPECT_DEATH((void)StatsSnapshot::delta(sa, sb), "mismatch");
}

TEST(StatsSnapshotTest, JsonRoundTrip)
{
    StatsSnapshot snap;
    snap.add("l1i.demand_misses", 0);
    snap.add("hier.metadata_read_bytes", 123456789);
    snap.add("sim.cycles", ~std::uint64_t(0));

    const std::string json = snap.toJson();
    const StatsSnapshot parsed = StatsSnapshot::fromJson(json);

    ASSERT_EQ(parsed.size(), snap.size());
    for (std::size_t i = 0; i < snap.size(); ++i) {
        EXPECT_EQ(parsed.entries()[i].first, snap.entries()[i].first);
        EXPECT_EQ(parsed.entries()[i].second,
                  snap.entries()[i].second);
    }
    // And the round-trip is a fixed point textually, too.
    EXPECT_EQ(parsed.toJson(), json);
}

TEST(StatsSnapshotTest, EmptyJsonRoundTrip)
{
    const StatsSnapshot empty;
    EXPECT_EQ(empty.toJson(), "{}");
    EXPECT_EQ(StatsSnapshot::fromJson("{}").size(), 0u);
    EXPECT_EQ(StatsSnapshot::fromJson(" { } ").size(), 0u);
}

} // namespace
} // namespace hp
