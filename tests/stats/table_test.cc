#include <gtest/gtest.h>

#include "stats/table.hh"

namespace hp
{
namespace
{

TEST(AsciiTableTest, RendersHeaderAndRows)
{
    AsciiTable table("Title");
    table.setHeader({"name", "value"});
    table.addRow({"alpha", "1"});
    table.addRow({"bb", "22"});
    std::string out = table.render();
    EXPECT_NE(out.find("Title"), std::string::npos);
    EXPECT_NE(out.find("| name "), std::string::npos);
    EXPECT_NE(out.find("alpha"), std::string::npos);
    EXPECT_NE(out.find("22"), std::string::npos);
    // Separator line present.
    EXPECT_NE(out.find("|---"), std::string::npos);
}

TEST(AsciiTableTest, ColumnsAligned)
{
    AsciiTable table;
    table.setHeader({"a", "b"});
    table.addRow({"longcell", "x"});
    std::string out = table.render();
    // Every line must have the same length (aligned columns).
    std::size_t pos = 0, len = std::string::npos;
    while (pos < out.size()) {
        std::size_t eol = out.find('\n', pos);
        if (eol == std::string::npos)
            break;
        if (len == std::string::npos)
            len = eol - pos;
        EXPECT_EQ(eol - pos, len);
        pos = eol + 1;
    }
}

TEST(AsciiTableTest, CsvEscapesSpecialCharacters)
{
    AsciiTable table;
    table.setHeader({"k", "v"});
    table.addRow({"a,b", "say \"hi\""});
    std::string csv = table.renderCsv();
    EXPECT_NE(csv.find("\"a,b\""), std::string::npos);
    EXPECT_NE(csv.find("\"say \"\"hi\"\"\""), std::string::npos);
}

TEST(AsciiTableTest, NumRows)
{
    AsciiTable table;
    EXPECT_EQ(table.numRows(), 0u);
    table.addRow({"x"});
    EXPECT_EQ(table.numRows(), 1u);
}

TEST(FormatTest, FmtDouble)
{
    EXPECT_EQ(fmtDouble(3.14159, 2), "3.14");
    EXPECT_EQ(fmtDouble(-1.5, 1), "-1.5");
    EXPECT_EQ(fmtDouble(2.0, 0), "2");
}

TEST(FormatTest, FmtPercent)
{
    EXPECT_EQ(fmtPercent(0.066), "6.6%");
    EXPECT_EQ(fmtPercent(1.0, 0), "100%");
    EXPECT_EQ(fmtPercent(-0.014), "-1.4%");
}

TEST(FormatTest, FmtBytes)
{
    EXPECT_EQ(fmtBytes(512.0), "512.0B");
    EXPECT_EQ(fmtBytes(2048.0), "2.0KB");
    EXPECT_EQ(fmtBytes(512.0 * 1024.0), "512.0KB");
    EXPECT_EQ(fmtBytes(3.0 * 1024.0 * 1024.0), "3.0MB");
}

} // namespace
} // namespace hp
