#include <gtest/gtest.h>

#include "stats/histogram.hh"

namespace hp
{
namespace
{

TEST(AccumulatorTest, EmptyIsZero)
{
    Accumulator acc;
    EXPECT_EQ(acc.count(), 0u);
    EXPECT_DOUBLE_EQ(acc.mean(), 0.0);
    EXPECT_DOUBLE_EQ(acc.min(), 0.0);
    EXPECT_DOUBLE_EQ(acc.max(), 0.0);
}

TEST(AccumulatorTest, TracksMeanMinMax)
{
    Accumulator acc;
    acc.sample(2.0);
    acc.sample(4.0);
    acc.sample(9.0);
    EXPECT_EQ(acc.count(), 3u);
    EXPECT_DOUBLE_EQ(acc.mean(), 5.0);
    EXPECT_DOUBLE_EQ(acc.min(), 2.0);
    EXPECT_DOUBLE_EQ(acc.max(), 9.0);
}

TEST(AccumulatorTest, NegativeValues)
{
    Accumulator acc;
    acc.sample(-5.0);
    acc.sample(5.0);
    EXPECT_DOUBLE_EQ(acc.mean(), 0.0);
    EXPECT_DOUBLE_EQ(acc.min(), -5.0);
}

TEST(AccumulatorTest, ResetClears)
{
    Accumulator acc;
    acc.sample(1.0);
    acc.reset();
    EXPECT_EQ(acc.count(), 0u);
    acc.sample(7.0);
    EXPECT_DOUBLE_EQ(acc.min(), 7.0);
}

TEST(HistogramTest, BucketsPopulateCorrectly)
{
    Histogram hist(10.0, 4); // [0,10) [10,20) [20,30) [30,40) overflow
    hist.sample(0.0);
    hist.sample(9.9);
    hist.sample(10.0);
    hist.sample(35.0);
    hist.sample(100.0); // overflow
    const auto &buckets = hist.buckets();
    ASSERT_EQ(buckets.size(), 5u);
    EXPECT_EQ(buckets[0], 2u);
    EXPECT_EQ(buckets[1], 1u);
    EXPECT_EQ(buckets[2], 0u);
    EXPECT_EQ(buckets[3], 1u);
    EXPECT_EQ(buckets[4], 1u);
    EXPECT_EQ(hist.count(), 5u);
}

TEST(HistogramTest, WeightedSamples)
{
    Histogram hist(1.0, 10);
    hist.sample(5.0, 7);
    EXPECT_EQ(hist.count(), 7u);
    EXPECT_EQ(hist.buckets()[5], 7u);
}

TEST(HistogramTest, MeanMatchesSamples)
{
    Histogram hist(1.0, 100);
    hist.sample(10.0);
    hist.sample(20.0);
    EXPECT_DOUBLE_EQ(hist.mean(), 15.0);
}

TEST(HistogramTest, NegativeSamplesLandInFirstBucket)
{
    Histogram hist(1.0, 4);
    hist.sample(-3.0);
    EXPECT_EQ(hist.buckets()[0], 1u);
}

TEST(HistogramTest, PercentileMonotonic)
{
    Histogram hist(1.0, 1000);
    for (int i = 0; i < 1000; ++i)
        hist.sample(double(i));
    double p50 = hist.percentile(0.5);
    double p90 = hist.percentile(0.9);
    double p99 = hist.percentile(0.99);
    EXPECT_LE(p50, p90);
    EXPECT_LE(p90, p99);
    EXPECT_NEAR(p50, 500.0, 10.0);
    EXPECT_NEAR(p90, 900.0, 10.0);
}

TEST(HistogramTest, PercentileEmpty)
{
    Histogram hist(1.0, 4);
    EXPECT_DOUBLE_EQ(hist.percentile(0.9), 0.0);
}

TEST(HistogramTest, ResetClears)
{
    Histogram hist(1.0, 4);
    hist.sample(2.0);
    hist.reset();
    EXPECT_EQ(hist.count(), 0u);
    EXPECT_EQ(hist.buckets()[2], 0u);
}

} // namespace
} // namespace hp
