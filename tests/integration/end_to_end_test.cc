#include <gtest/gtest.h>

#include "sim/runner.hh"

namespace hp
{
namespace
{

/**
 * End-to-end checks of the paper's headline qualitative claims on one
 * representative workload, at a reduced (but still meaningful)
 * instruction budget so the whole suite stays fast.
 */
SimConfig
e2eConfig(PrefetcherKind kind)
{
    SimConfig config = defaultConfig("tidb-tpcc", kind);
    config.warmupInsts = 1'000'000;
    config.measureInsts = 1'500'000;
    return config;
}

TEST(EndToEndTest, HierarchicalBeatsBaselineAndPeers)
{
    RunPair hier =
        ExperimentRunner::runPair(e2eConfig(
            PrefetcherKind::Hierarchical));
    RunPair mana =
        ExperimentRunner::runPair(e2eConfig(PrefetcherKind::Mana));
    RunPair efetch =
        ExperimentRunner::runPair(e2eConfig(PrefetcherKind::EFetch));

    // Headline: HP speeds the workload up and beats the fine-grained
    // record-and-replay prefetchers.
    EXPECT_GT(hier.paired.speedup, 0.01);
    EXPECT_GT(hier.paired.speedup, mana.paired.speedup);
    EXPECT_GT(hier.paired.speedup, efetch.paired.speedup);
}

TEST(EndToEndTest, PerfectL1IBoundsEveryPrefetcher)
{
    RunPair hier = ExperimentRunner::runPair(
        e2eConfig(PrefetcherKind::Hierarchical));
    RunPair perfect = ExperimentRunner::runPair(
        e2eConfig(PrefetcherKind::PerfectL1I));
    EXPECT_GT(perfect.paired.speedup, hier.paired.speedup);
}

TEST(EndToEndTest, HierarchicalOperatesAtCoarseGrain)
{
    RunPair hier = ExperimentRunner::runPair(
        e2eConfig(PrefetcherKind::Hierarchical));
    RunPair mana =
        ExperimentRunner::runPair(e2eConfig(PrefetcherKind::Mana));
    // An order-of-magnitude larger prefetch distance (Table 2's 90 vs
    // 3-6 blocks).
    EXPECT_GT(hier.paired.avgDistance, 5.0 * mana.paired.avgDistance);
}

TEST(EndToEndTest, HierarchicalExcelsAtL2Coverage)
{
    RunPair hier = ExperimentRunner::runPair(
        e2eConfig(PrefetcherKind::Hierarchical));
    RunPair mana =
        ExperimentRunner::runPair(e2eConfig(PrefetcherKind::Mana));
    EXPECT_GT(hier.paired.coverageL2, 0.2);
    EXPECT_GT(hier.paired.coverageL2, mana.paired.coverageL2);
}

TEST(EndToEndTest, HierarchicalHasFewLatePrefetches)
{
    RunPair hier = ExperimentRunner::runPair(
        e2eConfig(PrefetcherKind::Hierarchical));
    // Paper: ~3% late for HP.
    EXPECT_LT(hier.paired.lateFraction, 0.10);
}

TEST(EndToEndTest, OnChipStorageUnderTwoAndAHalfKB)
{
    SimConfig config = e2eConfig(PrefetcherKind::Hierarchical);
    NullMetadataMemory memory;
    auto pf = makePrefetcher(config, memory);
    ASSERT_NE(pf, nullptr);
    EXPECT_LT(pf->storageBits(), 2.5 * 8 * 1024);
}

TEST(EndToEndTest, BundleStatisticsInPaperRange)
{
    SimConfig config = e2eConfig(PrefetcherKind::Hierarchical);
    const SimMetrics &m = ExperimentRunner::run(config);
    // Table 4 classes: footprints 10s of KB, exec thousands to tens of
    // thousands of cycles, Jaccard approaching the 0.8+ regime.
    double footprint_kb =
        m.hier.bundleFootprintBlocks.mean() * kBlockBytes / 1024.0;
    EXPECT_GT(footprint_kb, 5.0);
    EXPECT_LT(footprint_kb, 120.0);
    EXPECT_GT(m.hier.bundleExecCycles.mean(), 2'000.0);
    EXPECT_GT(m.hier.bundleJaccard.mean(), 0.6);
}

TEST(EndToEndTest, BandwidthOverheadModest)
{
    RunPair hier = ExperimentRunner::runPair(
        e2eConfig(PrefetcherKind::Hierarchical));
    // Paper: +4% average, +10% worst case. Allow slack but catch
    // pathologies.
    EXPECT_LT(hier.paired.bandwidthRatio, 1.35);
    EXPECT_GE(hier.paired.bandwidthRatio, 0.9);
}

TEST(EndToEndTest, PrefetchingToL2StillHelps)
{
    SimConfig config = e2eConfig(PrefetcherKind::Hierarchical);
    config.extPrefetchToL2 = true;
    RunPair pair = ExperimentRunner::runPair(config);
    EXPECT_GT(pair.paired.speedup, 0.0);
}

} // namespace
} // namespace hp
