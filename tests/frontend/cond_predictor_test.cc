#include <gtest/gtest.h>

#include "frontend/cond_predictor.hh"
#include "util/hash.hh"
#include "util/rng.hh"

namespace hp
{
namespace
{

/** Runs @p trials of predict+update; returns the mispredict rate. */
double
runPattern(CondPredictor &pred, unsigned trials,
           const std::function<bool(unsigned, Addr &)> &pattern)
{
    std::uint64_t wrong = 0;
    for (unsigned i = 0; i < trials; ++i) {
        Addr pc = 0;
        bool taken = pattern(i, pc);
        bool predicted = pred.predict(pc);
        pred.update(pc, taken);
        wrong += (predicted != taken);
    }
    return double(wrong) / trials;
}

TEST(CondPredictorTest, LearnsAlwaysTaken)
{
    CondPredictor pred;
    double rate = runPattern(pred, 2000, [](unsigned, Addr &pc) {
        pc = 0x1000;
        return true;
    });
    EXPECT_LT(rate, 0.01);
}

TEST(CondPredictorTest, LearnsAlwaysNotTaken)
{
    CondPredictor pred;
    double rate = runPattern(pred, 2000, [](unsigned, Addr &pc) {
        pc = 0x2000;
        return false;
    });
    EXPECT_LT(rate, 0.01);
}

TEST(CondPredictorTest, LearnsShortPeriodicPattern)
{
    // T T N repeating: needs history, impossible for pure bimodal.
    CondPredictor pred;
    double rate = runPattern(pred, 6000, [](unsigned i, Addr &pc) {
        pc = 0x3000;
        return (i % 3) != 2;
    });
    EXPECT_LT(rate, 0.10);
}

TEST(CondPredictorTest, ManyBiasedBranches)
{
    CondPredictor pred;
    // 256 branches, each with a fixed direction from its address.
    double rate = runPattern(pred, 40000, [](unsigned i, Addr &pc) {
        unsigned branch = i % 256;
        pc = 0x10000 + Addr(branch) * 4;
        return (mix64(pc) & 1) != 0;
    });
    EXPECT_LT(rate, 0.03);
}

TEST(CondPredictorTest, RandomBranchNearChance)
{
    CondPredictor pred;
    Rng rng(5);
    double rate = runPattern(pred, 20000, [&rng](unsigned, Addr &pc) {
        pc = 0x5000;
        return rng.nextBool(0.5);
    });
    EXPECT_GT(rate, 0.35);
    EXPECT_LT(rate, 0.65);
}

TEST(CondPredictorTest, StatsAreConsistent)
{
    CondPredictor pred;
    runPattern(pred, 100, [](unsigned i, Addr &pc) {
        pc = 0x1000;
        return i & 1;
    });
    EXPECT_EQ(pred.predictions(), 100u);
    EXPECT_LE(pred.mispredicts(), pred.predictions());
    EXPECT_NEAR(pred.mispredictRate(),
                double(pred.mispredicts()) / 100.0, 1e-12);
}

} // namespace
} // namespace hp
