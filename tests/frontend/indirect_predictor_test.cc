#include <gtest/gtest.h>

#include "frontend/indirect_predictor.hh"

namespace hp
{
namespace
{

TEST(IndirectPredictorTest, UnknownBranchPredictsZero)
{
    IndirectPredictor pred;
    EXPECT_EQ(pred.predict(0x1000), 0u);
    pred.update(0x1000, 0x2000);
}

TEST(IndirectPredictorTest, LearnsMonomorphicTarget)
{
    IndirectPredictor pred;
    std::uint64_t wrong = 0;
    for (int i = 0; i < 1000; ++i) {
        Addr predicted = pred.predict(0x1000);
        wrong += (predicted != 0x9000);
        pred.update(0x1000, 0x9000);
    }
    EXPECT_LT(wrong, 5u);
}

TEST(IndirectPredictorTest, LearnsPathCorrelatedTargets)
{
    // The branch alternates between two targets in a fixed pattern; a
    // path-history predictor must beat the 50% of a last-target table.
    IndirectPredictor pred;
    std::uint64_t wrong = 0;
    constexpr int kTrials = 8000;
    for (int i = 0; i < kTrials; ++i) {
        Addr actual = (i % 2) ? 0x9000 : 0x7000;
        Addr predicted = pred.predict(0x1000);
        wrong += (predicted != actual);
        pred.update(0x1000, actual);
    }
    EXPECT_LT(double(wrong) / kTrials, 0.25);
}

TEST(IndirectPredictorTest, ManyCallSites)
{
    IndirectPredictor pred;
    std::uint64_t wrong = 0;
    constexpr int kTrials = 20000;
    for (int i = 0; i < kTrials; ++i) {
        Addr pc = 0x10000 + Addr(i % 64) * 4;
        Addr actual = 0x100000 + Addr(i % 64) * 0x100;
        Addr predicted = pred.predict(pc);
        wrong += (predicted != actual);
        pred.update(pc, actual);
    }
    EXPECT_LT(double(wrong) / kTrials, 0.05);
}

TEST(IndirectPredictorTest, StatsTrackMispredicts)
{
    IndirectPredictor pred;
    pred.predict(0x1000);
    pred.update(0x1000, 0x42);
    EXPECT_EQ(pred.predictions(), 1u);
    EXPECT_EQ(pred.mispredicts(), 1u); // cold prediction was 0
}

} // namespace
} // namespace hp
