#include <gtest/gtest.h>

#include "frontend/btb.hh"

namespace hp
{
namespace
{

TEST(BtbTest, MissThenHit)
{
    Btb btb(1024, 8);
    EXPECT_FALSE(btb.lookup(0x1000).has_value());
    btb.update(0x1000, 0x2000);
    auto target = btb.lookup(0x1000);
    ASSERT_TRUE(target.has_value());
    EXPECT_EQ(*target, 0x2000u);
    EXPECT_EQ(btb.lookups(), 2u);
    EXPECT_EQ(btb.misses(), 1u);
}

TEST(BtbTest, UpdateOverwritesTarget)
{
    Btb btb(1024, 8);
    btb.update(0x1000, 0x2000);
    btb.update(0x1000, 0x3000);
    EXPECT_EQ(*btb.lookup(0x1000), 0x3000u);
}

TEST(BtbTest, CapacityEviction)
{
    Btb btb(64, 4); // 16 sets
    // Insert far more branches than capacity.
    for (Addr pc = 0; pc < 1024; ++pc)
        btb.update(0x10000 + pc * 4, pc);
    unsigned hits = 0;
    for (Addr pc = 0; pc < 1024; ++pc)
        hits += btb.lookup(0x10000 + pc * 4).has_value();
    EXPECT_LE(hits, 64u);
    EXPECT_GT(hits, 0u);
}

TEST(BtbTest, LruKeepsHotEntries)
{
    Btb btb(8, 8); // one set
    for (unsigned i = 0; i < 8; ++i)
        btb.update(Addr(i) * 4096, i);
    btb.lookup(0); // refresh
    btb.update(9 * 4096, 9);
    EXPECT_TRUE(btb.lookup(0).has_value());
}

TEST(BtbTest, InfiniteModeNeverEvicts)
{
    Btb btb(0); // infinite (Figure 14)
    ASSERT_TRUE(btb.infinite());
    for (Addr pc = 0; pc < 100000; ++pc)
        btb.update(pc * 4, pc);
    for (Addr pc = 0; pc < 100000; pc += 997)
        EXPECT_EQ(*btb.lookup(pc * 4), pc);
}

} // namespace
} // namespace hp
