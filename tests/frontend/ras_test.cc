#include <gtest/gtest.h>

#include "frontend/ras.hh"

namespace hp
{
namespace
{

TEST(RasTest, PushPopLifo)
{
    Ras ras(8);
    ras.push(0x100);
    ras.push(0x200);
    ras.push(0x300);
    EXPECT_EQ(ras.pop(), 0x300u);
    EXPECT_EQ(ras.pop(), 0x200u);
    EXPECT_EQ(ras.pop(), 0x100u);
}

TEST(RasTest, UnderflowReturnsZero)
{
    Ras ras(4);
    EXPECT_EQ(ras.pop(), 0u);
    EXPECT_EQ(ras.underflows(), 1u);
}

TEST(RasTest, OverflowWrapsAndCorruptsDeepEntries)
{
    Ras ras(4);
    for (Addr i = 1; i <= 6; ++i)
        ras.push(i * 0x10);
    EXPECT_EQ(ras.overflows(), 2u);
    // The top 4 entries survive.
    EXPECT_EQ(ras.pop(), 0x60u);
    EXPECT_EQ(ras.pop(), 0x50u);
    EXPECT_EQ(ras.pop(), 0x40u);
    EXPECT_EQ(ras.pop(), 0x30u);
    // The two oldest were overwritten; stack is now empty.
    EXPECT_EQ(ras.pop(), 0u);
}

TEST(RasTest, TopPeeksWithoutPopping)
{
    Ras ras(8);
    ras.push(0x100);
    ras.push(0x200);
    ras.push(0x300);
    auto top = ras.top(2);
    ASSERT_EQ(top.size(), 2u);
    EXPECT_EQ(top[0], 0x300u);
    EXPECT_EQ(top[1], 0x200u);
    EXPECT_EQ(ras.size(), 3u);
}

TEST(RasTest, TopClampsToSize)
{
    Ras ras(8);
    ras.push(0x100);
    EXPECT_EQ(ras.top(5).size(), 1u);
    EXPECT_EQ(Ras(4).top(3).size(), 0u);
}

} // namespace
} // namespace hp
